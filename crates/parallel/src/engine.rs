//! The coordinator and the public engine API.
//!
//! `ParallelGridFile::build` declusters a grid file onto `P` worker threads
//! (one or more simulated disks each — the paper's simulation study assumes
//! one disk per processor, its SP-2 hardware had seven), then the query API
//! drives the SPMD protocol:
//!
//! 1. the coordinator translates the range query into block requests using
//!    the grid directory (which the paper stores on the coordinator's disk),
//! 2. involved workers read their blocks (virtual disk time, LRU cache),
//!    decode the real pages and filter records,
//! 3. replies stream back; the coordinator merges them.
//!
//! The engine is a **shared service**: every query method takes `&self`, so
//! any number of threads can hold the same engine and open independent
//! [`QuerySession`]s against it. Each session owns a private reply channel;
//! workers answer to whichever session asked, and queries from concurrent
//! sessions that land in a worker's queue together are serviced as one
//! elevator batch (see [`crate::worker`]) while their virtual completion
//! times stay independently accounted.
//!
//! The engine is also **fault-tolerant** when built over a
//! [`ReplicatedAssignment`] ([`ParallelGridFile::build_replicated`]): every
//! bucket has a chained-declustered secondary copy on a different worker.
//! The coordinator plans queries against live workers only (dead primaries
//! are skipped in favor of their replicas), and replies are collected under
//! a per-request timeout: a worker that fail-stops mid-query is detected via
//! its published dead flag (or, for a silently crashed thread, a strike
//! limit), and its stranded buckets are retried — once — against their other
//! copy, with the extra round trip charged to the query's communication
//! time. Without replicas a failure marks the affected queries
//! [`QueryOutcome::incomplete`] instead of panicking.
//!
//! Beyond fail-stop, the engine is hardened against a **hostile
//! environment** (see [`crate::fault`]): every dispatch carries a sequence
//! number so duplicated, delayed, or reordered replies are matched exactly
//! (never positionally) and redeliveries are deduped at the worker; lost
//! messages are retransmitted under bounded exponential backoff; block
//! corruption is caught by store checksums, answered from the replica, and
//! scrubbed back to health; straggler workers can be hedged against their
//! replicas ([`LatencyConfig::hedge_threshold`]); and a per-query real-time
//! deadline ([`LatencyConfig::deadline_us`]) bounds how long any of this is
//! allowed to take before the query is answered explicitly incomplete.
//!
//! Coordinator → worker dispatch defaults to one lock-free
//! [`RequestRing`](crate::ring::RequestRing) per worker; the original
//! channel transport remains selectable via
//! [`EngineConfig::with_dispatch`]`(`[`DispatchMode::Channel`]`)` so the two
//! paths stay A/B-benchmarkable (`benches/hotpath.rs`).
//!
//! Virtual elapsed time of a query = slowest worker's (disk + CPU) time plus
//! communication time; communication = one broadcast latency plus each
//! reply's (latency + bytes / bandwidth), serialized at the coordinator's
//! adapter — which is why the paper's communication column grows with the
//! query ratio `r` (§ 3.5: "the size of answer sets tends to grow").

use crate::disk::DiskParams;
use crate::error::EngineError;
use crate::fault::FaultPlan;
use crate::message::{FromWorker, QueryPriority, ReadRequest, ToWorker};
use crate::ring::{DispatchError, DispatchMode, RequestRing, WorkerOutbox};
use crate::stats::{EngineStats, SharedStats};
use crate::worker::WorkerState;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use pargrid_core::{
    place_fresh_bucket, place_fresh_replica, Assignment, DeclusterInput, ReplicatedAssignment,
};
use pargrid_geom::{Point, Rect};
use pargrid_gridfile::durable::CHECKPOINT_FILE;
use pargrid_gridfile::page::encode_page;
use pargrid_gridfile::wal::{Wal, WalOp};
use pargrid_gridfile::{GridFile, MutationEffect, Record};
#[cfg(feature = "obs")]
use pargrid_obs::{Event, Recorder, SpanKind, NO_ID};
use pargrid_rebalance::{plan_rebalance, CopyKind, RepairConfig};
use pargrid_sim::{QueryWorkload, ThroughputStats};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default for [`ResilienceConfig::max_timeout_strikes`]: with the default
/// 200 ms poll timeout, ten seconds of total silence.
const DEFAULT_MAX_TIMEOUT_STRIKES: u32 = 50;

/// Service-time samples required before hedging decisions trust the p95.
#[cfg(feature = "obs")]
const HEDGE_MIN_SAMPLES: u64 = 16;

/// Interconnect cost model (SP-2-class switch).
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Per-message latency in virtual microseconds.
    pub latency_us: u64,
    /// Bandwidth in bytes per virtual microsecond (35 ≈ 35 MB/s).
    pub bytes_per_us: u64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            latency_us: 40,
            bytes_per_us: 35,
        }
    }
}

/// Fault-survival policy: injected faults, the reply-timeout poll, strike
/// limits, retransmit bounds, and the worker dedup window. Grouped out of
/// [`EngineConfig`] so the seven knobs that only matter under failure share
/// one sub-config (`config.resilience`).
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Injected worker faults (none by default); see [`FaultPlan`].
    pub faults: FaultPlan,
    /// Real-time reply timeout per collection poll, milliseconds. Each
    /// expiry triggers a sweep for workers that died mid-query; it does not
    /// by itself declare anyone dead (see
    /// [`ResilienceConfig::max_timeout_strikes`]), so slow machines are safe
    /// with small values.
    pub fail_timeout_ms: u64,
    /// Consecutive empty reply timeouts after which every still-awaited
    /// worker is declared dead even if it never published a dead flag (a
    /// thread that panicked, not an injected fail-stop). Default 50.
    pub max_timeout_strikes: u32,
    /// Bound on retransmits per outstanding request — the lost-message
    /// defense. A request whose reply is still missing after a backed-off
    /// number of timeout polls (1, then 2, then 4, ...) is redelivered with
    /// the same sequence number (the worker dedups), up to this many times.
    pub max_retransmits: u32,
    /// How many serviced dispatch seqs each worker remembers for
    /// retransmit dedup. Size it to at least the engine's in-flight request
    /// depth (a server fronting many connections may want more); a seq
    /// evicted from the window could in principle be re-serviced if its
    /// retransmit arrived extremely late. Default
    /// [`crate::worker::DEFAULT_SEEN_SEQ_WINDOW`] (4096).
    pub seen_seq_window: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            faults: FaultPlan::default(),
            fail_timeout_ms: 200,
            max_timeout_strikes: DEFAULT_MAX_TIMEOUT_STRIKES,
            max_retransmits: 3,
            seen_seq_window: crate::worker::DEFAULT_SEEN_SEQ_WINDOW,
        }
    }
}

impl ResilienceConfig {
    /// Installs an injected fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the per-poll reply timeout, milliseconds.
    pub fn with_fail_timeout_ms(mut self, ms: u64) -> Self {
        self.fail_timeout_ms = ms;
        self
    }

    /// Sets the silent-worker force-declare strike limit (clamped to >= 1).
    pub fn with_max_timeout_strikes(mut self, strikes: u32) -> Self {
        self.max_timeout_strikes = strikes.max(1);
        self
    }

    /// Sets the per-request retransmit bound.
    pub fn with_max_retransmits(mut self, max: u32) -> Self {
        self.max_retransmits = max;
        self
    }

    /// Sets the per-worker retransmit-dedup window size (clamped to >= 1).
    pub fn with_seen_seq_window(mut self, window: usize) -> Self {
        self.seen_seq_window = window.max(1);
        self
    }
}

/// Tail-latency policy: the per-query deadline and the hedged-read trigger
/// (`config.latency`).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyConfig {
    /// Per-query real-time deadline budget, microseconds. When it expires,
    /// still-missing replies are abandoned: hedged requests fall back to
    /// their primary's held answer, anything else marks the query
    /// [`QueryOutcome::incomplete`]. `None` (default) waits indefinitely.
    pub deadline_us: Option<u64>,
    /// Hedged-read trigger — the straggler defense. When a reply's virtual
    /// service time exceeds `threshold x p95` of the engine's recent
    /// service times and the request's buckets share one live replica
    /// worker, the replica is speculatively dispatched and the query is
    /// charged the faster of the two answers. `None` (default) disables
    /// hedging; requires the `obs` feature (the p95 baseline comes from its
    /// histograms) and a replicated build.
    pub hedge_threshold: Option<f64>,
}

impl LatencyConfig {
    /// Sets the per-query real-time deadline budget, microseconds.
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Enables hedged reads at `threshold x p95` (see
    /// [`LatencyConfig::hedge_threshold`]).
    pub fn with_hedging(mut self, threshold: f64) -> Self {
        self.hedge_threshold = Some(threshold);
        self
    }
}

/// Observability wiring (`config.obs`). Without the `obs` cargo feature the
/// group is empty and every hook compiles away.
#[derive(Clone, Debug, Default)]
pub struct ObsConfig {
    /// Trace recorder capturing per-query spans and latency histograms
    /// (see [`pargrid_obs::Recorder`]). `None` keeps each hook at a single
    /// `Option` check; building the crate without the `obs` feature removes
    /// the hooks entirely.
    #[cfg(feature = "obs")]
    pub recorder: Option<Arc<Recorder>>,
}

impl ObsConfig {
    /// Installs a trace recorder. Size it with
    /// [`Recorder::new`]`(n_workers)` so every worker gets its own event
    /// track.
    #[cfg(feature = "obs")]
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

/// Engine configuration: the hardware model (disk, net, store layout), the
/// dispatch transport, and three grouped policy sub-configs.
///
/// The pre-redesign flat `with_*` knobs survive as `#[deprecated]` shims
/// that delegate into the groups; migrate with the mapping in the README
/// ("Configuration migration").
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Disk model parameters (per worker).
    pub disk: DiskParams,
    /// Network parameters.
    pub net: NetParams,
    /// When set, each worker's blocks are written to a real file
    /// `<spill_dir>/worker-<i>.blocks` and served with positioned reads —
    /// the paper's "separate files corresponding to every disk" layout.
    /// `None` keeps blocks in memory.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Disks per worker (0 is treated as 1). The paper's SP-2 had seven
    /// disks per processor; its simulation study assumes one.
    pub disks_per_worker: usize,
    /// Coordinator → worker transport: lock-free request rings (default)
    /// or the legacy channel path, kept A/B-benchmarkable (see
    /// [`DispatchMode`] and `BENCH_hotpath.json`).
    pub dispatch: DispatchMode,
    /// Extra worker slots spawned idle at build time, holding no data until
    /// a [`ParallelGridFile::rebalance`] with [`RebalanceOp::AddWorkers`]
    /// activates them. Slot indices never renumber: data workers occupy
    /// slots `0..M`, standbys `M..M+standby_workers`.
    pub standby_workers: usize,
    /// How worker service loops are launched: `None` spawns the in-process
    /// worker threads ([`crate::backend::InProcessBackend`], the single-node
    /// fast path); a remote backend (see the `pargrid-cluster` crate)
    /// instead proxies each slot's messages to a worker *process* over TCP.
    /// Everything above the transport — sequencing, dedup, retransmits,
    /// failure detection, replica failover — is shared between the two.
    pub backend: Option<Arc<dyn crate::backend::WorkerBackend>>,
    /// Fault-survival policy (timeouts, strikes, retransmits, injection).
    pub resilience: ResilienceConfig,
    /// Tail-latency policy (deadline, hedging).
    pub latency: LatencyConfig,
    /// Observability wiring (trace recorder).
    pub obs: ObsConfig,
}

impl EngineConfig {
    /// In-memory configuration with default disk and network models.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// File-backed configuration (see [`EngineConfig::spill_dir`]).
    pub fn file_backed<P: Into<std::path::PathBuf>>(dir: P) -> Self {
        EngineConfig {
            spill_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// The paper's SP-2 hardware configuration: seven disks per processor.
    pub fn sp2_seven_disks() -> Self {
        EngineConfig {
            disks_per_worker: 7,
            ..Self::default()
        }
    }

    /// Selects the coordinator → worker dispatch transport.
    pub fn with_dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Spawns `k` idle standby worker slots for later elastic grows (see
    /// [`EngineConfig::standby_workers`]).
    pub fn with_standby_workers(mut self, k: usize) -> Self {
        self.standby_workers = k;
        self
    }

    /// Installs a worker backend (see [`EngineConfig::backend`]).
    pub fn with_backend(mut self, backend: Arc<dyn crate::backend::WorkerBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Replaces the whole fault-survival group.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Replaces the whole tail-latency group.
    pub fn with_latency(mut self, latency: LatencyConfig) -> Self {
        self.latency = latency;
        self
    }

    /// Replaces the whole observability group.
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Updates the fault-survival group in place, fluently:
    /// `cfg.resilience(|r| r.with_fail_timeout_ms(25))`.
    pub fn resilience(mut self, f: impl FnOnce(ResilienceConfig) -> ResilienceConfig) -> Self {
        self.resilience = f(self.resilience);
        self
    }

    /// Updates the tail-latency group in place, fluently.
    pub fn latency(mut self, f: impl FnOnce(LatencyConfig) -> LatencyConfig) -> Self {
        self.latency = f(self.latency);
        self
    }

    /// Updates the observability group in place, fluently.
    pub fn obs(mut self, f: impl FnOnce(ObsConfig) -> ObsConfig) -> Self {
        self.obs = f(self.obs);
        self
    }

    /// Installs an injected fault plan.
    #[deprecated(since = "0.2.0", note = "use `.resilience(|r| r.with_faults(..))`")]
    pub fn with_faults(self, faults: FaultPlan) -> Self {
        self.resilience(|r| r.with_faults(faults))
    }

    /// Sets the per-query real-time deadline budget, microseconds.
    #[deprecated(since = "0.2.0", note = "use `.latency(|l| l.with_deadline_us(..))`")]
    pub fn with_deadline_us(self, deadline_us: u64) -> Self {
        self.latency(|l| l.with_deadline_us(deadline_us))
    }

    /// Enables hedged reads at `threshold x p95` (see
    /// [`LatencyConfig::hedge_threshold`]).
    #[deprecated(since = "0.2.0", note = "use `.latency(|l| l.with_hedging(..))`")]
    pub fn with_hedging(self, threshold: f64) -> Self {
        self.latency(|l| l.with_hedging(threshold))
    }

    /// Sets the per-request retransmit bound.
    #[deprecated(
        since = "0.2.0",
        note = "use `.resilience(|r| r.with_max_retransmits(..))`"
    )]
    pub fn with_max_retransmits(self, max: u32) -> Self {
        self.resilience(|r| r.with_max_retransmits(max))
    }

    /// Sets the silent-worker force-declare strike limit (clamped to >= 1).
    #[deprecated(
        since = "0.2.0",
        note = "use `.resilience(|r| r.with_max_timeout_strikes(..))`"
    )]
    pub fn with_max_timeout_strikes(self, strikes: u32) -> Self {
        self.resilience(|r| r.with_max_timeout_strikes(strikes))
    }

    /// Sets the per-worker retransmit-dedup window size (clamped to >= 1).
    #[deprecated(
        since = "0.2.0",
        note = "use `.resilience(|r| r.with_seen_seq_window(..))`"
    )]
    pub fn with_seen_seq_window(self, window: usize) -> Self {
        self.resilience(|r| r.with_seen_seq_window(window))
    }

    /// Installs a trace recorder. Size it with
    /// [`Recorder::new`]`(n_workers)` so every worker gets its own event
    /// track.
    #[cfg(feature = "obs")]
    #[deprecated(since = "0.2.0", note = "use `.obs(|o| o.with_recorder(..))`")]
    pub fn with_recorder(self, recorder: Arc<Recorder>) -> Self {
        self.obs(|o| o.with_recorder(recorder))
    }
}

/// Result of a single query.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Qualifying records, merged from all workers (sorted by id).
    pub records: Vec<Record>,
    /// Grid-directory buckets the query touched (sorted by id).
    pub buckets: Vec<u32>,
    /// The §2.2 response time in blocks: `max_i N_i(q)`.
    pub response_blocks: u64,
    /// Total blocks requested across workers.
    pub total_blocks: u64,
    /// Buffer-cache hits among them.
    pub cache_hits: u64,
    /// Virtual elapsed time of the query (microseconds), accounted
    /// independently of any concurrently-serviced queries: the slowest
    /// involved worker's own disk + CPU charges plus this query's
    /// communication time.
    pub elapsed_us: u64,
    /// Virtual communication time of the query (microseconds).
    pub comm_us: u64,
    /// Requests retried against another copy after a worker failure or
    /// error reply (0 on a healthy run).
    pub retries: u64,
    /// Hedge requests dispatched against slow primaries for this query.
    pub hedges: u64,
    /// True when some buckets could not be served by any live copy; the
    /// records are then a subset of the true answer.
    pub incomplete: bool,
}

/// Accumulated results of a workload run — the columns of Tables 4 and 5.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Number of queries processed.
    pub queries: u64,
    /// Sum of per-query response times in blocks fetched
    /// ("response time by definition").
    pub response_blocks: u64,
    /// Total blocks requested.
    pub total_blocks: u64,
    /// Total cache hits.
    pub cache_hits: u64,
    /// Total records returned.
    pub records: u64,
    /// Total virtual communication time (microseconds).
    pub comm_us: u64,
    /// Total virtual elapsed time (microseconds).
    pub elapsed_us: u64,
    /// Total failover retries across queries.
    pub retries: u64,
    /// Queries whose answers were incomplete (some copy unreachable).
    pub incomplete_queries: u64,
}

impl RunStats {
    /// Communication time in seconds (the paper's unit).
    pub fn comm_seconds(&self) -> f64 {
        self.comm_us as f64 / 1e6
    }

    /// Elapsed time in seconds (the paper's unit).
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_us as f64 / 1e6
    }

    fn absorb(&mut self, out: &QueryOutcome) {
        self.queries += 1;
        self.response_blocks += out.response_blocks;
        self.total_blocks += out.total_blocks;
        self.cache_hits += out.cache_hits;
        self.records += out.records.len() as u64;
        self.comm_us += out.comm_us;
        self.elapsed_us += out.elapsed_us;
        self.retries += out.retries;
        self.incomplete_queries += out.incomplete as u64;
    }
}

/// Where one bucket's blocks live: a primary copy and, when the engine was
/// built replicated, a secondary copy on a different worker.
#[derive(Clone, Debug)]
struct BucketPlacement {
    /// (worker, block ids) of the primary copy.
    primary: (usize, Vec<u32>),
    /// (worker, block ids) of the chained replica, if any.
    replica: Option<(usize, Vec<u32>)>,
}

impl BucketPlacement {
    /// The copy *other* than the one on `worker` (used for failover).
    fn other_copy(&self, worker: usize) -> Option<&(usize, Vec<u32>)> {
        if self.primary.0 == worker {
            self.replica.as_ref()
        } else {
            Some(&self.primary)
        }
    }
}

/// The coordinator's mutable view of the data: the grid directory plus the
/// bucket → block placement map and each worker's next free block id. All
/// three change together under one write lock when a mutation splits or
/// merges buckets; queries plan under the read lock, so a query planned
/// after [`ParallelGridFile::insert`] returns sees the post-mutation
/// directory (and, because workers apply `WriteRaw` in FIFO order before
/// later read batches, the post-mutation bytes).
struct Catalog {
    gf: GridFile,
    /// bucket id -> where its copies live.
    placement: HashMap<u32, BucketPlacement>,
    /// Per-worker count of blocks ever written — the next append id. File
    /// stores require appends to be sequential, so freed blocks are left
    /// orphaned rather than reused.
    next_block: Vec<u32>,
    /// Which worker slots currently own data. Data workers start active,
    /// standby slots inactive; [`ParallelGridFile::rebalance`] flips entries
    /// as the cluster grows and shrinks. Incremental placement of freshly
    /// split buckets only considers active slots.
    active: Vec<bool>,
}

/// What a successful [`ParallelGridFile::insert`] / `delete` did, in bucket
/// terms — the engine-level echo of [`MutationEffect`].
#[derive(Clone, Debug, Default)]
pub struct MutationOutcome {
    /// Whether the operation changed anything (a delete of an absent record
    /// applies cleanly but reports `false`).
    pub applied: bool,
    /// Buckets whose blocks were rewritten in place (the target bucket, and
    /// both halves of any split).
    pub rewritten_buckets: Vec<u32>,
    /// Buckets created by splits, now placed and written on their workers.
    pub created_buckets: Vec<u32>,
    /// Buckets freed by merges; their blocks are orphaned on disk.
    pub freed_buckets: Vec<u32>,
}

/// An elastic resize request for [`ParallelGridFile::rebalance`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RebalanceOp {
    /// Activate `k` standby worker slots and spread data onto them.
    AddWorkers(usize),
    /// Drain worker slot `i` and return it to standby. The slot's thread
    /// keeps running and can be re-activated by a later
    /// [`RebalanceOp::AddWorkers`]. Works even when the worker is dead:
    /// pages are re-materialized from the coordinator's directory, not
    /// copied from the source.
    RemoveWorker(usize),
}

/// What a [`ParallelGridFile::rebalance`] did (or, for a dry run, would do).
#[derive(Clone, Debug)]
pub struct RebalanceReport {
    /// Whether the plan was executed (`false` for a dry run).
    pub applied: bool,
    /// Total bucket-copy relocations in the plan.
    pub moves: usize,
    /// Primary-copy relocations.
    pub primary_moves: usize,
    /// Secondary-copy relocations.
    pub replica_moves: usize,
    /// Predicted payload bytes across all moves.
    pub moved_bytes: u64,
    /// Primary buckets a full re-decluster would have moved instead — the
    /// baseline the incremental plan's movement bound is scored against.
    pub full_moves: usize,
    /// Active (data-owning) worker slots after the rebalance.
    pub active_workers: usize,
    /// Proximity objective before the rebalance (lower is better).
    pub current_objective: f64,
    /// Predicted objective after the rebalance.
    pub predicted_objective: f64,
    /// Objective a full re-decluster would have achieved.
    pub baseline_objective: f64,
}

/// One worker's share of a planned query.
#[derive(Debug, Default)]
struct PlannedRead {
    /// Block ids to read on this worker.
    blocks: Vec<u32>,
    /// Bucket ids those blocks belong to (for failover bookkeeping).
    buckets: Vec<u32>,
}

/// A primary's answer held back while its hedge is in flight: merged
/// verbatim if the hedge fails or stalls, superseded by the (faster) hedge
/// reply otherwise.
struct HedgeFallback {
    records: Vec<Record>,
    service_us: u64,
}

/// One outstanding dispatch of a pending query.
struct Outstanding {
    /// Worker the request went to.
    worker: usize,
    /// Dispatch sequence number — what reply matching keys on. A retransmit
    /// reuses it (the worker dedups); failovers and hedges get fresh ones.
    seq: u64,
    /// Bucket ids served by this request (failover bookkeeping).
    buckets: Vec<u32>,
    /// Block ids of the request (needed to retransmit it verbatim).
    blocks: Vec<u32>,
    /// Timeout polls seen since the last (re)delivery.
    strikes: u32,
    /// Strikes before the next retransmit; doubles per retransmit.
    backoff: u32,
    /// Retransmits already spent (bounded by
    /// [`EngineConfig::max_retransmits`]).
    retransmits: u32,
    /// Present when this dispatch is a hedge: the primary's held-back
    /// answer to fall back on.
    hedge_fallback: Option<HedgeFallback>,
}

impl Outstanding {
    fn new(worker: usize, seq: u64, buckets: Vec<u32>, blocks: Vec<u32>) -> Self {
        Outstanding {
            worker,
            seq,
            buckets,
            blocks,
            strikes: 0,
            backoff: 1,
            retransmits: 0,
            hedge_fallback: None,
        }
    }
}

/// Coordinator-side state of one in-flight query.
struct PendingQuery {
    /// Position within the admission round (for ordered emission).
    round_pos: usize,
    /// The query rectangle (needed to re-issue failed-over requests).
    rect: Rect,
    /// Touched buckets, sorted.
    buckets: Vec<u32>,
    /// When the query was admitted — the deadline budget's clock.
    started: std::time::Instant,
    /// Outstanding requests, matched to replies by dispatch seq.
    awaiting: Vec<Outstanding>,
    /// Buckets already failed over once (one-retry policy).
    retried: HashSet<u32>,
    response_blocks: u64,
    total_blocks: u64,
    cache_hits: u64,
    comm_us: u64,
    max_worker_us: u64,
    records: Vec<Record>,
    retries: u64,
    hedges: u64,
    incomplete: bool,
}

impl PendingQuery {
    fn new(round_pos: usize, rect: Rect, buckets: Vec<u32>) -> Self {
        PendingQuery {
            round_pos,
            rect,
            buckets,
            started: std::time::Instant::now(),
            awaiting: Vec::new(),
            retried: HashSet::new(),
            response_blocks: 0,
            total_blocks: 0,
            cache_hits: 0,
            comm_us: 0,
            max_worker_us: 0,
            records: Vec::new(),
            retries: 0,
            hedges: 0,
            incomplete: false,
        }
    }

    /// Merges a hedge's held-back primary answer (the hedge lost, stalled
    /// past the deadline, or died).
    fn absorb_fallback(&mut self, fb: HedgeFallback) {
        self.max_worker_us = self.max_worker_us.max(fb.service_us);
        self.records.extend(fb.records);
    }

    fn into_outcome(mut self) -> QueryOutcome {
        self.records.sort_unstable_by_key(|r| r.id);
        QueryOutcome {
            records: self.records,
            buckets: self.buckets,
            response_blocks: self.response_blocks,
            total_blocks: self.total_blocks,
            cache_hits: self.cache_hits,
            elapsed_us: self.max_worker_us + self.comm_us,
            comm_us: self.comm_us,
            retries: self.retries,
            hedges: self.hedges,
            incomplete: self.incomplete,
        }
    }
}

/// A parallel grid file: coordinator-side handle plus worker threads.
///
/// The handle is `Sync`: share it behind an `Arc` (or plain `&`) and open a
/// [`QuerySession`] per client thread. The legacy one-shot methods
/// ([`ParallelGridFile::query`], [`ParallelGridFile::run_workload`], ...)
/// take `&self` and open a session internally, so pre-redesign call sites —
/// including those holding `&mut` — compile unchanged.
pub struct ParallelGridFile {
    /// Directory + placement + block allocator, mutated together under the
    /// write lock by [`ParallelGridFile::insert`] / `delete`.
    catalog: RwLock<Catalog>,
    /// Write-ahead log for mutations, attached by
    /// [`ParallelGridFile::attach_wal`]. The mutex doubles as the mutation
    /// serialization lock: at most one insert/delete is in flight at a time,
    /// and its WAL record is durable before the catalog changes.
    wal: Mutex<Option<Wal>>,
    /// The grid file's domain, cached so the hot read path never takes the
    /// catalog lock for it (linear scales only refine; the domain is fixed).
    domain: Rect,
    net: NetParams,
    record_bytes: usize,
    to_workers: Vec<WorkerOutbox>,
    /// Worker thread handles, drained by [`ParallelGridFile::shutdown`]
    /// (behind a mutex so shutdown works through a shared `&self` — a
    /// long-lived server holds the engine in an `Arc`).
    handles: std::sync::Mutex<Vec<JoinHandle<()>>>,
    next_query_id: AtomicU64,
    /// Engine-global dispatch sequence numbers (see
    /// [`crate::message::ReadRequest::seq`]).
    next_seq: AtomicU64,
    shared: Arc<SharedStats>,
    fail_timeout_ms: u64,
    max_timeout_strikes: u32,
    max_retransmits: u32,
    deadline_us: Option<u64>,
    replicated: bool,
    #[cfg(feature = "obs")]
    hedge_threshold: Option<f64>,
    /// Per-request virtual service times (disk + CPU) across all queries —
    /// the recent-latency baseline hedging compares against.
    #[cfg(feature = "obs")]
    service_hist: pargrid_obs::AtomicHistogram,
    #[cfg(feature = "obs")]
    recorder: Option<Arc<Recorder>>,
}

impl ParallelGridFile {
    /// Distributes the grid file's buckets over `assignment.n_disks()`
    /// workers and spawns the worker threads.
    ///
    /// Each bucket becomes one 8 KB-class block on its worker; oversize
    /// buckets (inseparable duplicates) spill into additional consecutive
    /// blocks. Block ids are consecutive per worker in bucket order, so
    /// spatially-clustered buckets benefit from the sequential-read rate.
    pub fn build(gf: Arc<GridFile>, assignment: &Assignment, config: EngineConfig) -> Self {
        Self::build_inner(gf, assignment, None, config)
    }

    /// Like [`ParallelGridFile::build`], but with a chained-declustered
    /// replica of every bucket on a second worker (see
    /// [`ReplicatedAssignment`]). Replica blocks are appended after all
    /// primary blocks of a worker, so a healthy run's primary reads keep
    /// their sequential layout.
    pub fn build_replicated(
        gf: Arc<GridFile>,
        assignment: &ReplicatedAssignment,
        config: EngineConfig,
    ) -> Self {
        Self::build_inner(gf, assignment.primary(), Some(assignment), config)
    }

    fn build_inner(
        gf: Arc<GridFile>,
        assignment: &Assignment,
        replica: Option<&ReplicatedAssignment>,
        config: EngineConfig,
    ) -> Self {
        let n_data = assignment.n_disks();
        assert!(n_data >= 1, "need at least one worker");
        // Standby slots are full workers (thread, store, cache, counters)
        // that simply own no buckets until a rebalance activates them.
        let n_workers = n_data + config.standby_workers;
        let dim = gf.dim();
        let payload = gf.config().payload_bytes;
        let page_bytes = gf.config().page_bytes;
        let capacity = gf.bucket_capacity();

        let block_bytes = pargrid_gridfile::page::HEADER_BYTES + page_bytes;
        let mut workers: Vec<WorkerState> = (0..n_workers)
            .map(|w| {
                let store = match &config.spill_dir {
                    None => crate::store::BlockStore::memory(),
                    Some(dir) => crate::store::BlockStore::file(
                        dir.join(format!("worker-{w}.blocks")),
                        block_bytes,
                    )
                    .expect("cannot create worker block file"),
                };
                WorkerState::with_disks(
                    w,
                    payload,
                    config.disk,
                    store,
                    config.disks_per_worker.max(1),
                )
                .with_seen_seq_window(config.resilience.seen_seq_window)
                .with_faults(config.resilience.faults.for_worker(w))
            })
            .collect();
        let mut next_block = vec![0u32; n_workers];
        let mut placement: HashMap<u32, BucketPlacement> = HashMap::new();

        let write_bucket = |workers: &mut Vec<WorkerState>,
                            next_block: &mut Vec<u32>,
                            w: usize,
                            records: &[Record]|
         -> Vec<u32> {
            let cap = capacity.max(1);
            let mut blocks = Vec::with_capacity(records.len().div_ceil(cap).max(1));
            let mut chunks = records.chunks(cap);
            loop {
                // An empty bucket still occupies one (empty) block on disk.
                let chunk = chunks.next().unwrap_or(&[]);
                let block = next_block[w];
                next_block[w] += 1;
                workers[w]
                    .store
                    .put(block, encode_page(chunk, dim, payload, page_bytes))
                    .expect("cannot write block");
                blocks.push(block);
                if chunks.len() == 0 {
                    return blocks;
                }
            }
        };

        for (id, _region, _len) in gf.live_buckets() {
            let w = assignment.disk_of_id(id) as usize;
            let records = gf.bucket_records(id);
            let blocks = write_bucket(&mut workers, &mut next_block, w, records);
            placement.insert(
                id,
                BucketPlacement {
                    primary: (w, blocks),
                    replica: None,
                },
            );
        }
        // Second pass for the replicas so they land *after* every primary
        // block of their worker.
        if let Some(ra) = replica {
            for (id, _region, _len) in gf.live_buckets() {
                let w = ra.secondary_of_id(id) as usize;
                let records = gf.bucket_records(id);
                let blocks = write_bucket(&mut workers, &mut next_block, w, records);
                placement
                    .get_mut(&id)
                    .expect("replica of unknown bucket")
                    .replica = Some((w, blocks));
            }
        }

        #[cfg(feature = "obs")]
        if let Some(rec) = &config.obs.recorder {
            for state in &mut workers {
                state.recorder = Some(Arc::clone(rec));
            }
        }

        let shared = Arc::new(SharedStats::new(n_workers));
        let backend: Arc<dyn crate::backend::WorkerBackend> = config
            .backend
            .clone()
            .unwrap_or_else(|| Arc::new(crate::backend::InProcessBackend));
        let mut to_workers = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for (w, state) in workers.into_iter().enumerate() {
            let counters = Some(Arc::clone(&shared.workers[w]));
            match config.dispatch {
                DispatchMode::Channel => {
                    let (to_tx, to_rx) = unbounded();
                    handles.push(backend.spawn_worker(w, state, to_rx.into(), counters));
                    to_workers.push(WorkerOutbox::Channel(to_tx));
                }
                _ => {
                    let ring = Arc::new(RequestRing::new());
                    handles.push(backend.spawn_worker(
                        w,
                        state,
                        crate::ring::WorkerInbox::from(Arc::clone(&ring)),
                        counters,
                    ));
                    to_workers.push(WorkerOutbox::Ring(ring));
                }
            }
        }

        let record_bytes = gf.config().record_bytes();
        let domain = gf.config().domain;
        // Mutations need the grid file by value; peel the `Arc` (cloning
        // only if the caller kept another handle).
        let gf = Arc::try_unwrap(gf).unwrap_or_else(|shared| (*shared).clone());
        ParallelGridFile {
            record_bytes,
            catalog: RwLock::new(Catalog {
                gf,
                placement,
                next_block,
                active: (0..n_workers).map(|w| w < n_data).collect(),
            }),
            wal: Mutex::new(None),
            domain,
            net: config.net,
            to_workers,
            handles: std::sync::Mutex::new(handles),
            next_query_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            shared,
            fail_timeout_ms: config.resilience.fail_timeout_ms,
            max_timeout_strikes: config.resilience.max_timeout_strikes.max(1),
            max_retransmits: config.resilience.max_retransmits,
            deadline_us: config.latency.deadline_us,
            replicated: replica.is_some(),
            #[cfg(feature = "obs")]
            hedge_threshold: config.latency.hedge_threshold,
            #[cfg(feature = "obs")]
            service_hist: pargrid_obs::AtomicHistogram::new(),
            #[cfg(feature = "obs")]
            recorder: config.obs.recorder,
        }
    }

    /// Number of worker slots (active data workers plus standbys).
    pub fn n_workers(&self) -> usize {
        self.to_workers.len()
    }

    /// Number of worker slots currently owning data. Starts at the build
    /// assignment's disk count and changes only through
    /// [`ParallelGridFile::rebalance`].
    pub fn active_workers(&self) -> usize {
        self.catalog
            .read()
            .expect("engine catalog lock")
            .active
            .iter()
            .filter(|&&a| a)
            .count()
    }

    /// Per-slot primary bucket counts (length [`ParallelGridFile::n_workers`];
    /// standby and drained slots report 0) — the ownership map rebalance
    /// progress is observed through.
    pub fn worker_buckets(&self) -> Vec<usize> {
        let cat = self.catalog.read().expect("engine catalog lock");
        let mut counts = vec![0usize; self.to_workers.len()];
        for pl in cat.placement.values() {
            counts[pl.primary.0] += 1;
        }
        counts
    }

    /// The data domain the engine's grid file covers. Fixed for the
    /// engine's lifetime — a network front end uses it to translate
    /// partial-match keys into query rectangles without taking the
    /// catalog lock.
    pub fn domain(&self) -> &Rect {
        &self.domain
    }

    /// A point-in-time clone of the coordinator's grid directory (for
    /// checkpointing and inspection). Mutations running after the snapshot
    /// is taken are not reflected in it.
    pub fn snapshot_grid(&self) -> GridFile {
        self.catalog.read().expect("engine catalog lock").gf.clone()
    }

    /// Total live records in the directory.
    pub fn len(&self) -> u64 {
        self.catalog.read().expect("engine catalog lock").gf.len()
    }

    /// Whether the directory holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Explicit SIGTERM-style shutdown: sends every worker its poison pill
    /// and joins the worker threads, returning how many were joined. After
    /// it returns, **no worker thread outlives the engine handle** — a
    /// long-lived server calls this from its own shutdown path instead of
    /// relying on `Drop` (which an `Arc`-held engine may reach only at
    /// process exit). Idempotent: later calls (and the eventual `Drop`)
    /// find nothing left to join and return 0. In-flight queries on other
    /// sessions see their workers disappear and resolve incomplete rather
    /// than hanging.
    pub fn shutdown(&self) -> usize {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.handles.lock().expect("engine handle mutex");
            guard.drain(..).collect()
        };
        let n = handles.len();
        for h in handles {
            let _ = h.join();
        }
        n
    }

    /// Whether [`ParallelGridFile::shutdown`] has already run to completion.
    pub fn is_shut_down(&self) -> bool {
        self.handles.lock().expect("engine handle mutex").is_empty()
    }

    /// Whether every bucket has a replica ([`ParallelGridFile::build_replicated`]).
    pub fn is_replicated(&self) -> bool {
        self.replicated
    }

    /// Snapshot of the engine's lifetime counters (queries issued, per-worker
    /// blocks/cache/busy-time/liveness, failover retries). Exact once no
    /// query is in flight.
    pub fn stats(&self) -> EngineStats {
        self.shared.snapshot()
    }

    /// The installed trace recorder, if any.
    #[cfg(feature = "obs")]
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// Records a coordinator-track instant stamped with the current virtual
    /// clock. A no-op when no recorder is installed.
    #[cfg(feature = "obs")]
    fn trace_instant(&self, kind: SpanKind, query_id: u64, worker: u32, detail: u64) {
        if let Some(rec) = &self.recorder {
            rec.record(Event {
                ts_us: rec.now(),
                dur_us: 0,
                query_id,
                kind,
                worker,
                disk: NO_ID,
                detail,
            });
        }
    }

    /// Records a finished query: its Reply span on the coordinator track
    /// plus the latency/communication/response-size histograms.
    #[cfg(feature = "obs")]
    fn trace_reply(&self, query_id: u64, start_us: u64, out: &QueryOutcome) {
        if let Some(rec) = &self.recorder {
            rec.record(Event {
                ts_us: start_us,
                dur_us: out.elapsed_us,
                query_id,
                kind: SpanKind::Reply,
                worker: NO_ID,
                disk: NO_ID,
                detail: out.response_blocks,
            });
            rec.query_us.record(out.elapsed_us);
            rec.comm_us.record(out.comm_us);
            rec.response_blocks.record(out.response_blocks);
        }
    }

    /// Opens a client session: an independent stream of queries against the
    /// shared engine. Sessions are cheap (one channel); open one per thread.
    pub fn session(&self) -> QuerySession<'_> {
        let (reply_tx, reply_rx) = unbounded();
        QuerySession {
            engine: self,
            reply_tx,
            reply_rx,
            priority: QueryPriority::Interactive,
            stats: RunStats::default(),
        }
    }

    /// Translates a query into its touched buckets (sorted), per-worker
    /// reads against **live** workers (dead primaries fall over to their
    /// replicas at planning time), and whether some bucket has no live copy
    /// at all.
    fn plan(&self, rect: &Rect) -> (Vec<u32>, HashMap<usize, PlannedRead>, bool) {
        let cat = self.catalog.read().expect("engine catalog lock");
        let mut buckets = cat.gf.range_query_buckets(rect);
        buckets.sort_unstable();
        let mut per_worker: HashMap<usize, PlannedRead> = HashMap::new();
        let mut incomplete = false;
        for &b in &buckets {
            let pl = &cat.placement[&b];
            let copy = if self.shared.is_alive(pl.primary.0) {
                Some(&pl.primary)
            } else {
                match &pl.replica {
                    Some(rep) if self.shared.is_alive(rep.0) => {
                        self.shared
                            .failed_over_blocks
                            .fetch_add(rep.1.len() as u64, Ordering::Relaxed);
                        Some(rep)
                    }
                    _ => None,
                }
            };
            match copy {
                Some((w, blocks)) => {
                    let entry = per_worker.entry(*w).or_default();
                    entry.blocks.extend_from_slice(blocks);
                    entry.buckets.push(b);
                }
                None => incomplete = true,
            }
        }
        (buckets, per_worker, incomplete)
    }

    /// Retries `buckets` (stranded on or erroring from `from_worker`)
    /// against their other copy, once each. Buckets already retried, or
    /// whose other copy is missing or dead, mark the query incomplete.
    fn fail_over(
        &self,
        query_id: u64,
        p: &mut PendingQuery,
        from_worker: usize,
        buckets: &[u32],
        reply_tx: &Sender<FromWorker>,
        priority: QueryPriority,
    ) {
        #[cfg(feature = "obs")]
        self.trace_instant(
            SpanKind::Failover,
            query_id,
            from_worker as u32,
            buckets.len() as u64,
        );
        // worker -> (blocks, buckets) of the retry request. Collected under
        // the catalog read lock, which is dropped before any channel I/O
        // (the dead-transport branch below recurses back into this method).
        let mut regroup: HashMap<usize, (Vec<u32>, Vec<u32>)> = HashMap::new();
        {
            let cat = self.catalog.read().expect("engine catalog lock");
            for &b in buckets {
                if !p.retried.insert(b) {
                    p.incomplete = true;
                    continue;
                }
                match cat.placement[&b].other_copy(from_worker) {
                    Some((w, blocks)) if self.shared.is_alive(*w) => {
                        let entry = regroup.entry(*w).or_default();
                        entry.0.extend_from_slice(blocks);
                        entry.1.push(b);
                        self.shared
                            .failed_over_blocks
                            .fetch_add(blocks.len() as u64, Ordering::Relaxed);
                    }
                    _ => p.incomplete = true,
                }
            }
        }
        for (w, (blocks, bkts)) in regroup {
            // The retry costs another dispatch message; its reply's cost is
            // charged on arrival like any other.
            p.comm_us += self.net.latency_us;
            p.retries += 1;
            self.shared.retries.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "obs")]
            self.trace_instant(SpanKind::Retry, query_id, w as u32, bkts.len() as u64);
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let request = ReadRequest {
                query_id,
                seq,
                blocks: blocks.clone(),
                query: p.rect,
                reply: reply_tx.clone(),
                priority,
            };
            match self.to_workers[w].send(ToWorker::Process(vec![request])) {
                Ok(()) => p.awaiting.push(Outstanding::new(w, seq, bkts, blocks)),
                Err(DispatchError(_)) => {
                    // The replica died too (transport gone). Its buckets are
                    // in `retried` now, so this recursion terminates by
                    // marking them incomplete.
                    self.shared.workers[w].dead.store(true, Ordering::Relaxed);
                    self.fail_over(query_id, p, w, &bkts, reply_tx, priority);
                }
            }
        }
    }

    /// The single live worker holding the other copy of *every* given
    /// bucket, with the concatenated block list — the hedge target. Chained
    /// declustering's least-loaded fallback means a request's buckets need
    /// not all share one replica worker; hedging fires only when they do,
    /// so a hedge is always one message to one machine.
    #[cfg(feature = "obs")]
    fn hedge_target(&self, buckets: &[u32], from_worker: usize) -> Option<(usize, Vec<u32>)> {
        let cat = self.catalog.read().expect("engine catalog lock");
        let mut target: Option<(usize, Vec<u32>)> = None;
        for &b in buckets {
            let (w, blocks) = cat.placement.get(&b)?.other_copy(from_worker)?;
            if !self.shared.is_alive(*w) {
                return None;
            }
            match target.as_mut() {
                None => target = Some((*w, blocks.clone())),
                Some((tw, tb)) => {
                    if tw != w {
                        return None;
                    }
                    tb.extend_from_slice(blocks);
                }
            }
        }
        target
    }

    /// Scrubs checksum-failed blocks on `worker` back to health: fetches
    /// the affected buckets' bytes from their other copy (both copies chunk
    /// a bucket's records identically, so their block lists align
    /// positionally) and overwrites the corrupt blocks in place. Repair I/O
    /// is background scrub traffic — uncharged on the virtual clock.
    /// Skipped silently when no live other copy exists; the corruption then
    /// simply resurfaces on the next read of the block.
    fn repair_blocks(&self, query_id: u64, worker: usize, corrupt: &[u32], buckets: &[u32]) {
        let _ = query_id;
        let corrupt_set: HashSet<u32> = corrupt.iter().copied().collect();
        // source worker -> (source blocks to fetch, corrupt blocks to fix).
        // Collected under the catalog read lock, dropped before the blocking
        // fetch round-trips below.
        let mut per_source: HashMap<usize, (Vec<u32>, Vec<u32>)> = HashMap::new();
        let cat = self.catalog.read().expect("engine catalog lock");
        for &b in buckets {
            let Some(pl) = cat.placement.get(&b) else {
                continue;
            };
            let (dest_blocks, source) = if pl.primary.0 == worker {
                match &pl.replica {
                    Some(rep) => (&pl.primary.1, rep),
                    None => continue,
                }
            } else {
                match &pl.replica {
                    Some(rep) if rep.0 == worker => (&rep.1, &pl.primary),
                    _ => continue,
                }
            };
            if !self.shared.is_alive(source.0) {
                continue;
            }
            for (i, &db) in dest_blocks.iter().enumerate() {
                if corrupt_set.contains(&db) {
                    if let Some(&sb) = source.1.get(i) {
                        let entry = per_source.entry(source.0).or_default();
                        entry.0.push(sb);
                        entry.1.push(db);
                    }
                }
            }
        }
        drop(cat);
        let mut repaired = 0u64;
        for (src, (fetch, fix)) in per_source {
            let (raw_tx, raw_rx) = unbounded();
            if self.to_workers[src]
                .send(ToWorker::FetchRaw {
                    blocks: fetch,
                    reply: raw_tx,
                })
                .is_err()
            {
                continue;
            }
            let timeout = Duration::from_millis(self.fail_timeout_ms.max(1).saturating_mul(8));
            let Ok(raw) = raw_rx.recv_timeout(timeout) else {
                continue;
            };
            let writes: Vec<(u32, Vec<u8>)> = raw
                .blocks
                .into_iter()
                .zip(fix)
                .filter_map(|((_src_block, bytes), dest)| bytes.map(|by| (dest, by)))
                .collect();
            if writes.is_empty() {
                continue;
            }
            let n = writes.len() as u64;
            if self.to_workers[worker]
                .send(ToWorker::WriteRaw { blocks: writes })
                .is_ok()
            {
                repaired += n;
            }
        }
        if repaired > 0 {
            self.shared.scrubbed.fetch_add(repaired, Ordering::Relaxed);
            #[cfg(feature = "obs")]
            self.trace_instant(SpanKind::Scrub, query_id, worker as u32, repaired);
        }
    }

    /// Attaches a write-ahead log: every later [`ParallelGridFile::insert`]
    /// / [`ParallelGridFile::delete`] is durable in it *before* the
    /// directory or any block changes, and
    /// [`ParallelGridFile::checkpoint`] folds it into a checkpoint image.
    /// Without one, mutations are in-memory only (tests, benchmarks).
    pub fn attach_wal(&self, wal: Wal) {
        *self.wal.lock().expect("engine wal lock") = Some(wal);
    }

    /// Bytes currently in the attached WAL (0 when none is attached).
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal
            .lock()
            .expect("engine wal lock")
            .as_ref()
            .map_or(0, |w| w.len_bytes())
    }

    /// Inserts a record, logging it to the attached WAL first, then
    /// applying any bucket splits (with incremental declustered placement
    /// of fresh buckets) and rewriting the affected blocks on the workers.
    ///
    /// Consistency: a query *planned after this returns* sees the insert —
    /// workers apply block writes in FIFO order before any later read
    /// batch. Queries already in flight may see either side, per block.
    pub fn insert(&self, record: Record) -> Result<MutationOutcome, EngineError> {
        self.mutate(WalOp::Insert(record))
    }

    /// Deletes the record with `id` at `point` (both must match), logging
    /// to the WAL first and applying any buddy merges. Deleting an absent
    /// record succeeds with `applied == false`.
    pub fn delete(&self, id: u64, point: &Point) -> Result<MutationOutcome, EngineError> {
        self.mutate(WalOp::Delete { id, point: *point })
    }

    fn mutate(&self, op: WalOp) -> Result<MutationOutcome, EngineError> {
        // The WAL mutex serializes mutations (held across log + apply) even
        // when no WAL is attached.
        let mut wal = self.wal.lock().expect("engine wal lock");
        if self.is_shut_down() {
            return Err(EngineError::SessionClosed);
        }
        if let Some(w) = wal.as_mut() {
            w.append(&op)
                .and_then(|()| w.sync())
                .map_err(EngineError::Wal)?;
        }
        let mut cat = self.catalog.write().expect("engine catalog lock");
        let (applied, effect) = match &op {
            WalOp::Insert(rec) => (true, cat.gf.insert_tracked(*rec)),
            WalOp::Delete { id, point } => cat.gf.delete_tracked(*id, point),
        };
        let outcome = self.apply_effect(&mut cat, &effect);
        Ok(MutationOutcome { applied, ..outcome })
    }

    /// Pushes a mutation's bucket-level effect out to the workers: freed
    /// buckets drop their placement, rewritten buckets have every copy's
    /// blocks rewritten in place (growing or shrinking the block list as
    /// the record count demands), and created buckets are declustered
    /// incrementally and written fresh.
    fn apply_effect(&self, cat: &mut Catalog, effect: &MutationEffect) -> MutationOutcome {
        let n_workers = self.to_workers.len();
        // Per-worker batched writes, flushed as one WriteRaw per worker.
        let mut writes: Vec<Vec<(u32, Vec<u8>)>> = vec![Vec::new(); n_workers];

        for &b in &effect.freed {
            // Orphan the blocks: file stores are append-only, so freed
            // block ids are simply never read again.
            cat.placement.remove(&b);
        }

        for &b in &effect.rewritten {
            let pages = self.encode_bucket(&cat.gf, b);
            let pl = cat.placement.get_mut(&b).expect("rewritten unknown bucket");
            Self::rewrite_copy(&mut pl.primary, &pages, &mut cat.next_block, &mut writes);
            if let Some(rep) = pl.replica.as_mut() {
                Self::rewrite_copy(rep, &pages, &mut cat.next_block, &mut writes);
            }
        }

        // Incremental placement speaks *dense* disk indices over the active
        // slots only — standby and drained slots must not receive fresh
        // buckets, and `place_fresh_bucket`'s balance cap is over the active
        // count, not the spawned slot count.
        let active_slots: Vec<usize> = (0..n_workers).filter(|&w| cat.active[w]).collect();
        let mut dense_of = vec![usize::MAX; n_workers];
        for (k, &w) in active_slots.iter().enumerate() {
            dense_of[w] = k;
        }
        for &b in &effect.created {
            let pages = self.encode_bucket(&cat.gf, b);
            // Residents: every already-placed bucket's rect and primary
            // disk — the incremental counterpart of a full declustering run.
            let residents: Vec<(Rect, u32)> = cat
                .placement
                .iter()
                .map(|(&id, pl)| (cat.gf.bucket_rect(id), dense_of[pl.primary.0] as u32))
                .collect();
            let fresh = cat.gf.bucket_rect(b);
            let pw = active_slots
                [place_fresh_bucket(&self.domain, &residents, &fresh, active_slots.len()) as usize];
            let mut blocks = Vec::with_capacity(pages.len());
            for page in &pages {
                blocks.push(Self::append_block(
                    pw,
                    page.clone(),
                    &mut cat.next_block,
                    &mut writes,
                ));
            }
            let replica = if self.replicated && active_slots.len() >= 2 {
                // Chained-replica load: copies of every kind already on
                // each disk, plus the fresh primary just decided.
                let mut load = vec![0usize; active_slots.len()];
                for pl in cat.placement.values() {
                    load[dense_of[pl.primary.0]] += 1;
                    if let Some((rw, _)) = &pl.replica {
                        load[dense_of[*rw]] += 1;
                    }
                }
                load[dense_of[pw]] += 1;
                let rw = active_slots[place_fresh_replica(dense_of[pw] as u32, &load) as usize];
                let mut rblocks = Vec::with_capacity(pages.len());
                for page in pages {
                    rblocks.push(Self::append_block(
                        rw,
                        page,
                        &mut cat.next_block,
                        &mut writes,
                    ));
                }
                Some((rw, rblocks))
            } else {
                None
            };
            cat.placement.insert(
                b,
                BucketPlacement {
                    primary: (pw, blocks),
                    replica,
                },
            );
        }

        for (w, blocks) in writes.into_iter().enumerate() {
            if blocks.is_empty() {
                continue;
            }
            if self.to_workers[w]
                .send(ToWorker::WriteRaw { blocks })
                .is_err()
            {
                // Transport gone: the worker is dead. Reads fail over to
                // the other copy (which did get its write).
                self.shared.workers[w].dead.store(true, Ordering::Relaxed);
            }
        }

        MutationOutcome {
            applied: true,
            rewritten_buckets: effect.rewritten.clone(),
            created_buckets: effect.created.clone(),
            freed_buckets: effect.freed.clone(),
        }
    }

    /// Encodes bucket `b`'s records into page images, one per block. An
    /// empty bucket still occupies one (empty) block, mirroring
    /// `build_inner`'s layout so both copies stay positionally aligned.
    fn encode_bucket(&self, gf: &GridFile, b: u32) -> Vec<Vec<u8>> {
        let cap = gf.bucket_capacity().max(1);
        let dim = gf.dim();
        let payload = gf.config().payload_bytes;
        let page_bytes = gf.config().page_bytes;
        let records = gf.bucket_records(b);
        let mut pages = Vec::with_capacity(records.len().div_ceil(cap).max(1));
        let mut chunks = records.chunks(cap);
        loop {
            let chunk = chunks.next().unwrap_or(&[]);
            pages.push(encode_page(chunk, dim, payload, page_bytes));
            if chunks.len() == 0 {
                return pages;
            }
        }
    }

    /// Rewrites one copy's block list to hold `pages`: overwrites the
    /// shared prefix in place, appends fresh blocks for growth, and
    /// truncates the list on shrink (orphaning the tail blocks). Both
    /// copies of a bucket shrink and grow identically, preserving the
    /// positional block alignment scrub repair relies on.
    fn rewrite_copy(
        copy: &mut (usize, Vec<u32>),
        pages: &[Vec<u8>],
        next_block: &mut [u32],
        writes: &mut [Vec<(u32, Vec<u8>)>],
    ) {
        let (w, blocks) = (copy.0, &mut copy.1);
        for (i, page) in pages.iter().enumerate() {
            if i < blocks.len() {
                writes[w].push((blocks[i], page.clone()));
            } else {
                let b = next_block[w];
                next_block[w] += 1;
                writes[w].push((b, page.clone()));
                blocks.push(b);
            }
        }
        blocks.truncate(pages.len());
    }

    /// Allocates the next block id on worker `w` and queues its write.
    fn append_block(
        w: usize,
        page: Vec<u8>,
        next_block: &mut [u32],
        writes: &mut [Vec<(u32, Vec<u8>)>],
    ) -> u32 {
        let b = next_block[w];
        next_block[w] += 1;
        writes[w].push((b, page));
        b
    }

    /// Folds the attached WAL into a fresh checkpoint image: saves the
    /// current directory next to the WAL (atomically, via a temp file and
    /// rename), then resets the WAL. Recovery after this point loads the
    /// image and replays an empty log. Returns `Ok(false)` when no WAL is
    /// attached (nothing to checkpoint). Mutations are blocked for the
    /// duration; queries keep flowing.
    pub fn checkpoint(&self) -> Result<bool, EngineError> {
        let mut wal = self.wal.lock().expect("engine wal lock");
        let Some(w) = wal.as_mut() else {
            return Ok(false);
        };
        let dir = w
            .path()
            .parent()
            .map(std::path::Path::to_path_buf)
            .unwrap_or_default();
        let image = self.catalog.read().expect("engine catalog lock").gf.clone();
        let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
        image.save(&tmp).map_err(EngineError::Checkpoint)?;
        std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))
            .map_err(|e| EngineError::Checkpoint(e.into()))?;
        w.reset().map_err(EngineError::Wal)?;
        Ok(true)
    }

    /// Elastically resizes the cluster: computes an incremental minimax
    /// repair plan ([`pargrid_rebalance::plan_rebalance`]) for the requested
    /// [`RebalanceOp`] and — unless `dry_run` — migrates bucket copies to
    /// their new slots.
    ///
    /// Runs under the mutation serializer (the WAL mutex), so inserts and
    /// deletes wait while a rebalance is in flight; **queries keep flowing
    /// throughout**. Each move re-encodes the bucket's pages from the
    /// coordinator's directory, appends them as fresh blocks on the target
    /// worker, and flips catalog ownership under one short write-lock
    /// section, with the `WriteRaw` sent *inside* that section — the same
    /// ordering [`ParallelGridFile::insert`] relies on, so a query planned
    /// after the flip finds the target's bytes already applied (workers
    /// drain writes in FIFO order before later reads) while in-flight
    /// queries planned before it keep reading the source's orphaned blocks.
    /// No reply is ever incorrect or incomplete during migration.
    ///
    /// # Errors
    /// [`EngineError::Rebalance`] when the request is invalid (no standby
    /// capacity left, unknown or inactive worker, or removal would leave a
    /// replicated engine with fewer than two active workers); the layout is
    /// untouched. [`EngineError::SessionClosed`] after shutdown.
    pub fn rebalance(
        &self,
        op: RebalanceOp,
        dry_run: bool,
    ) -> Result<RebalanceReport, EngineError> {
        let _serializer = self.wal.lock().expect("engine wal lock");
        if self.is_shut_down() {
            return Err(EngineError::SessionClosed);
        }
        let n_slots = self.to_workers.len();
        // Snapshot the declustering problem under the read lock; the WAL
        // mutex guarantees no mutation changes it until we are done.
        let (input, primary, secondary, mut target) = {
            let cat = self.catalog.read().expect("engine catalog lock");
            let input = DeclusterInput::from_grid_file(&cat.gf);
            let mut primary = Vec::with_capacity(input.n_buckets());
            let mut secondary = self
                .replicated
                .then(|| Vec::with_capacity(input.n_buckets()));
            for b in &input.buckets {
                let pl = &cat.placement[&b.id];
                primary.push(pl.primary.0 as u32);
                if let Some(sec) = secondary.as_mut() {
                    sec.push(pl.replica.as_ref().expect("replicated engine").0 as u32);
                }
            }
            (input, primary, secondary, cat.active.clone())
        };
        match op {
            RebalanceOp::AddWorkers(k) => {
                if k == 0 {
                    return Err(EngineError::Rebalance(
                        "must add at least one worker".into(),
                    ));
                }
                let mut added = 0;
                for (d, slot) in target.iter_mut().enumerate() {
                    if added < k && !*slot && self.shared.is_alive(d) {
                        *slot = true;
                        added += 1;
                    }
                }
                if added < k {
                    return Err(EngineError::Rebalance(format!(
                        "only {added} live standby workers available, need {k} \
                         (build with EngineConfig::with_standby_workers)"
                    )));
                }
            }
            RebalanceOp::RemoveWorker(i) => {
                if i >= n_slots || !target[i] {
                    return Err(EngineError::Rebalance(format!(
                        "worker {i} is not an active data worker"
                    )));
                }
                target[i] = false;
                let left = target.iter().filter(|&&a| a).count();
                if left == 0 || (self.replicated && left < 2) {
                    return Err(EngineError::Rebalance(format!(
                        "removing worker {i} would leave {left} active workers"
                    )));
                }
            }
        }
        let plan = plan_rebalance(
            &input,
            &primary,
            secondary.as_deref(),
            &target,
            &RepairConfig {
                record_bytes: self.record_bytes,
                ..RepairConfig::default()
            },
        );
        let report = RebalanceReport {
            applied: !dry_run,
            moves: plan.moves.len(),
            primary_moves: plan.primary_moves,
            replica_moves: plan.replica_moves,
            moved_bytes: plan.moved_bytes,
            full_moves: plan.full_moves,
            active_workers: target.iter().filter(|&&a| a).count(),
            current_objective: plan.current_objective,
            predicted_objective: plan.predicted_objective,
            baseline_objective: plan.baseline_objective,
        };
        if dry_run {
            return Ok(report);
        }
        for mv in &plan.moves {
            let mut cat = self.catalog.write().expect("engine catalog lock");
            // The WAL mutex means nothing else relocated this bucket, but a
            // stale or vanished copy is skipped, never clobbered.
            let on_from = cat
                .placement
                .get(&mv.bucket)
                .is_some_and(|pl| match mv.copy {
                    CopyKind::Primary => pl.primary.0 == mv.from as usize,
                    CopyKind::Replica => {
                        pl.replica.as_ref().is_some_and(|r| r.0 == mv.from as usize)
                    }
                });
            if !on_from {
                continue;
            }
            let pages = self.encode_bucket(&cat.gf, mv.bucket);
            let to = mv.to as usize;
            let mut blocks = Vec::with_capacity(pages.len());
            let mut writes = Vec::with_capacity(pages.len());
            let mut page_bytes = 0u64;
            for page in pages {
                let block = cat.next_block[to];
                cat.next_block[to] += 1;
                page_bytes += page.len() as u64;
                writes.push((block, page));
                blocks.push(block);
            }
            let pl = cat.placement.get_mut(&mv.bucket).expect("checked above");
            match mv.copy {
                CopyKind::Primary => pl.primary = (to, blocks),
                CopyKind::Replica => pl.replica = Some((to, blocks)),
            }
            // Send while still holding the write lock: any query planned
            // after the flip is dispatched after this write and the worker
            // drains writes first. The source copy's blocks stay orphaned
            // on disk for queries planned before the flip.
            if self.to_workers[to]
                .send(ToWorker::WriteRaw { blocks: writes })
                .is_err()
            {
                self.shared.workers[to].dead.store(true, Ordering::Relaxed);
            }
            drop(cat);
            self.shared.rebalance_moves.fetch_add(1, Ordering::Relaxed);
            self.shared
                .rebalance_bytes
                .fetch_add(page_bytes, Ordering::Relaxed);
        }
        let mut cat = self.catalog.write().expect("engine catalog lock");
        debug_assert!(
            cat.placement.values().all(|pl| {
                target[pl.primary.0] && pl.replica.as_ref().is_none_or(|r| target[r.0])
            }),
            "rebalance left a copy on an inactive slot"
        );
        cat.active = target;
        Ok(report)
    }

    /// Folds one worker reply into its pending query, matched to its
    /// outstanding dispatch by sequence number — never positionally — so
    /// duplicated, delayed, or reordered replies cannot be mis-attributed.
    /// Stale replies (a finished query, an already-failed-over or
    /// already-answered seq) find no outstanding entry and are dropped, so
    /// records are never merged twice.
    fn process_reply(
        &self,
        reply: FromWorker,
        pending: &mut HashMap<u64, PendingQuery>,
        reply_tx: &Sender<FromWorker>,
        priority: QueryPriority,
    ) {
        let Some(p) = pending.get_mut(&reply.query_id) else {
            return;
        };
        let Some(pos) = p.awaiting.iter().position(|o| o.seq == reply.seq) else {
            return;
        };
        let o = p.awaiting.remove(pos);
        p.total_blocks += reply.blocks_requested;
        p.cache_hits += reply.cache_hits;
        let reply_bytes = 32 + reply.records.len() * self.record_bytes;
        p.comm_us +=
            self.net.latency_us + (reply_bytes as u64).div_ceil(self.net.bytes_per_us.max(1));
        // Checksum failures are scrubbed from the replica regardless of how
        // the query itself gets answered.
        if !reply.corrupt_blocks.is_empty() {
            self.repair_blocks(
                reply.query_id,
                reply.worker_id,
                &reply.corrupt_blocks,
                &o.buckets,
            );
        }
        let service_us = reply.disk_us + reply.cpu_us;
        if let Some(fb) = o.hedge_fallback {
            // A hedge resolved: take its answer at the faster of the two
            // service times, or the primary's held answer if the hedge
            // itself failed.
            if reply.error.is_none() {
                p.max_worker_us = p.max_worker_us.max(service_us.min(fb.service_us));
                p.records.extend(reply.records);
            } else {
                p.absorb_fallback(fb);
            }
            return;
        }
        if reply.error.is_some() {
            p.max_worker_us = p.max_worker_us.max(service_us);
            self.fail_over(
                reply.query_id,
                p,
                reply.worker_id,
                &o.buckets,
                reply_tx,
                priority,
            );
            return;
        }
        #[cfg(feature = "obs")]
        if let Some(threshold) = self.hedge_threshold {
            self.service_hist.record(service_us);
            if self.replicated && self.service_hist.count() >= HEDGE_MIN_SAMPLES {
                let p95 = self.service_hist.snapshot().quantile(0.95);
                if service_us as f64 > threshold * p95 as f64 {
                    if let Some((w, blocks)) = self.hedge_target(&o.buckets, reply.worker_id) {
                        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                        let request = ReadRequest {
                            query_id: reply.query_id,
                            seq,
                            blocks: blocks.clone(),
                            query: p.rect,
                            reply: reply_tx.clone(),
                            priority,
                        };
                        if self.to_workers[w]
                            .send(ToWorker::Process(vec![request]))
                            .is_ok()
                        {
                            // The hedge costs one more dispatch message.
                            // The slow primary's answer is held back as the
                            // fallback; the query is charged the faster of
                            // the two when the hedge resolves.
                            p.comm_us += self.net.latency_us;
                            p.hedges += 1;
                            self.shared.hedges.fetch_add(1, Ordering::Relaxed);
                            self.trace_instant(
                                SpanKind::Hedge,
                                reply.query_id,
                                w as u32,
                                service_us,
                            );
                            let mut hedge = Outstanding::new(w, seq, o.buckets, blocks);
                            hedge.hedge_fallback = Some(HedgeFallback {
                                records: reply.records,
                                service_us,
                            });
                            p.awaiting.push(hedge);
                            return;
                        }
                    }
                }
            }
        }
        p.max_worker_us = p.max_worker_us.max(service_us);
        p.records.extend(reply.records);
    }

    /// Collects replies until no pending query awaits a worker. On each
    /// empty-timeout poll, in order: queries past their deadline budget
    /// abandon whatever is still missing; outstanding requests on live
    /// workers are redelivered under backed-off, bounded retransmission
    /// (the lost-message defense); and requests stranded on dead — or, at
    /// the strike limit, merely silent — workers are failed over to their
    /// replicas.
    fn collect(
        &self,
        reply_rx: &Receiver<FromWorker>,
        reply_tx: &Sender<FromWorker>,
        priority: QueryPriority,
        pending: &mut HashMap<u64, PendingQuery>,
    ) {
        let timeout = Duration::from_millis(self.fail_timeout_ms.max(1));
        let mut strikes = 0u32;
        while pending.values().any(|p| !p.awaiting.is_empty()) {
            match reply_rx.recv_timeout(timeout) {
                Ok(reply) => {
                    strikes = 0;
                    self.process_reply(reply, pending, reply_tx, priority);
                }
                Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {
                    strikes += 1;
                    let force = strikes >= self.max_timeout_strikes;
                    let ids: Vec<u64> = pending.keys().copied().collect();
                    for qid in ids {
                        let Some(p) = pending.get_mut(&qid) else {
                            continue;
                        };
                        if p.awaiting.is_empty() {
                            continue;
                        }
                        // 1. Deadline budget: abandon whatever is missing.
                        // A hedge never loses the answer — the primary's
                        // reply is already in hand.
                        if let Some(d) = self.deadline_us {
                            if p.started.elapsed().as_micros() as u64 > d {
                                self.shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
                                for o in std::mem::take(&mut p.awaiting) {
                                    match o.hedge_fallback {
                                        Some(fb) => p.absorb_fallback(fb),
                                        None => p.incomplete = true,
                                    }
                                }
                                continue;
                            }
                        }
                        // 2. Bounded, backed-off retransmits to live
                        // workers: the request or its reply may have been
                        // lost; the worker dedups redeliveries by seq, so
                        // redelivering serviced work is harmless. Hedges
                        // are not retransmitted — their fallback answer
                        // makes the dead sweep below lossless.
                        for o in p.awaiting.iter_mut() {
                            if o.hedge_fallback.is_some() || !self.shared.is_alive(o.worker) {
                                continue;
                            }
                            o.strikes += 1;
                            if o.strikes < o.backoff || o.retransmits >= self.max_retransmits {
                                continue;
                            }
                            o.strikes = 0;
                            o.backoff = o.backoff.saturating_mul(2).min(16);
                            o.retransmits += 1;
                            p.comm_us += self.net.latency_us;
                            self.shared.retransmits.fetch_add(1, Ordering::Relaxed);
                            #[cfg(feature = "obs")]
                            self.trace_instant(
                                SpanKind::Retry,
                                qid,
                                o.worker as u32,
                                o.retransmits as u64,
                            );
                            let request = ReadRequest {
                                query_id: qid,
                                seq: o.seq,
                                blocks: o.blocks.clone(),
                                query: p.rect,
                                reply: reply_tx.clone(),
                                priority,
                            };
                            if self.to_workers[o.worker]
                                .send(ToWorker::Process(vec![request]))
                                .is_err()
                            {
                                // Channel gone: the dead sweep below picks
                                // this entry up in the same poll.
                                self.shared.workers[o.worker]
                                    .dead
                                    .store(true, Ordering::Relaxed);
                            }
                        }
                        // 3. Pull out entries on dead workers (all awaited
                        // workers, under `force`) *before* failing any
                        // over, so retries issued below are not swept in
                        // the same pass.
                        let mut doomed = Vec::new();
                        let mut i = 0;
                        while i < p.awaiting.len() {
                            if force || !self.shared.is_alive(p.awaiting[i].worker) {
                                doomed.push(p.awaiting.remove(i));
                            } else {
                                i += 1;
                            }
                        }
                        for o in &doomed {
                            self.shared.workers[o.worker]
                                .dead
                                .store(true, Ordering::Relaxed);
                        }
                        for o in doomed {
                            match o.hedge_fallback {
                                Some(fb) => p.absorb_fallback(fb),
                                None => {
                                    self.fail_over(qid, p, o.worker, &o.buckets, reply_tx, priority)
                                }
                            }
                        }
                    }
                    if force {
                        strikes = 0;
                    }
                }
            }
        }
    }

    /// Executes one range query through the SPMD protocol.
    ///
    /// Convenience for one-shot callers; opens a throwaway session. Clients
    /// issuing several queries should hold a [`QuerySession`] instead.
    pub fn query(&self, rect: &Rect) -> QueryOutcome {
        self.session().query(rect)
    }

    /// Runs a whole workload sequentially, accumulating the Tables 4–5
    /// columns.
    pub fn run_workload(&self, workload: &QueryWorkload) -> RunStats {
        let mut session = self.session();
        for q in &workload.queries {
            session.query(q);
        }
        session.stats
    }

    /// Runs a workload with up to `in_flight` queries admitted at once,
    /// returning per-query outcomes plus aggregate throughput metrics.
    ///
    /// The coordinator admits the workload in rounds of `in_flight` queries:
    /// each round's block requests are grouped per worker and dispatched as
    /// one batch, which the worker's disks service in elevator (sorted)
    /// order. Admission rounds are the unit of determinism — batch
    /// composition depends only on the workload and the window, never on
    /// thread timing — so repeated runs produce identical block counts,
    /// cache behavior, and virtual times.
    ///
    /// Per-query `elapsed_us` stays independently accounted (each query is
    /// charged only its own blocks' costs), while
    /// [`ThroughputStats::makespan_us`] reflects the shared schedule: the
    /// busiest worker's total *wall* busy time — a multi-disk worker's disks
    /// seek in parallel, so per-batch wall time is the maximum over its
    /// disks, not their sum — plus all communication.
    pub fn run_workload_concurrent(
        &self,
        workload: &QueryWorkload,
        in_flight: usize,
    ) -> (Vec<QueryOutcome>, ThroughputStats) {
        assert!(in_flight >= 1, "in_flight must be at least 1");
        let n_workers = self.n_workers();
        let (reply_tx, reply_rx) = unbounded();
        let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(workload.len());
        let busy0: Vec<u64> = self
            .shared
            .workers
            .iter()
            .map(|w| w.busy_wall_us.load(Ordering::Relaxed))
            .collect();
        let retries0 = self.shared.retries.load(Ordering::Relaxed);
        let failed0 = self.shared.failed_over_blocks.load(Ordering::Relaxed);
        let retransmits0 = self.shared.retransmits.load(Ordering::Relaxed);
        let hedges0 = self.shared.hedges.load(Ordering::Relaxed);
        let scrubbed0 = self.shared.scrubbed.load(Ordering::Relaxed);
        let mut tp = ThroughputStats {
            in_flight,
            worker_busy_us: vec![0; n_workers],
            ..ThroughputStats::default()
        };

        for round in workload.queries.chunks(in_flight) {
            #[cfg(feature = "obs")]
            let round_start = self.recorder.as_ref().map_or(0, |r| r.now());
            let mut per_worker: Vec<Vec<ReadRequest>> =
                (0..n_workers).map(|_| Vec::new()).collect();
            let mut pending: HashMap<u64, PendingQuery> = HashMap::new();
            for (round_pos, rect) in round.iter().enumerate() {
                let query_id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
                self.shared.queries.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "obs")]
                self.trace_instant(SpanKind::Admit, query_id, NO_ID, round_pos as u64);
                let (buckets, plan, incomplete) = self.plan(rect);
                #[cfg(feature = "obs")]
                self.trace_instant(SpanKind::Plan, query_id, NO_ID, buckets.len() as u64);
                let mut p = PendingQuery::new(round_pos, *rect, buckets);
                p.incomplete = incomplete;
                for (w, read) in plan {
                    p.response_blocks = p.response_blocks.max(read.blocks.len() as u64);
                    let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                    per_worker[w].push(ReadRequest {
                        query_id,
                        seq,
                        blocks: read.blocks.clone(),
                        query: *rect,
                        reply: reply_tx.clone(),
                        priority: QueryPriority::Batch,
                    });
                    p.awaiting
                        .push(Outstanding::new(w, seq, read.buckets, read.blocks));
                }
                if !p.awaiting.is_empty() {
                    p.comm_us += self.net.latency_us;
                }
                pending.insert(query_id, p);
            }

            for (w, requests) in per_worker.into_iter().enumerate() {
                if requests.is_empty() {
                    continue;
                }
                tp.batches += 1;
                tp.batched_requests += requests.len() as u64;
                tp.max_batch = tp.max_batch.max(requests.len() as u64);
                #[cfg(feature = "obs")]
                self.trace_instant(
                    SpanKind::Dispatch,
                    pargrid_obs::NO_QUERY,
                    w as u32,
                    requests.len() as u64,
                );
                if let Err(DispatchError(msg)) =
                    self.to_workers[w].send(ToWorker::Process(requests))
                {
                    // The worker's transport is gone (it died earlier this
                    // round, or its thread panicked): recover the requests
                    // from the bounced message and fail them over.
                    self.shared.workers[w].dead.store(true, Ordering::Relaxed);
                    if let ToWorker::Process(reqs) = msg {
                        for req in reqs {
                            let Some(p) = pending.get_mut(&req.query_id) else {
                                continue;
                            };
                            let Some(pos) = p.awaiting.iter().position(|o| o.seq == req.seq) else {
                                continue;
                            };
                            let o = p.awaiting.remove(pos);
                            self.fail_over(
                                req.query_id,
                                p,
                                w,
                                &o.buckets,
                                &reply_tx,
                                QueryPriority::Batch,
                            );
                        }
                    }
                }
            }

            self.collect(&reply_rx, &reply_tx, QueryPriority::Batch, &mut pending);

            // Emit this round's outcomes in submission order.
            let mut finished: Vec<(u64, PendingQuery)> = pending.into_iter().collect();
            finished.sort_unstable_by_key(|(_, p)| p.round_pos);
            for (_query_id, p) in finished {
                debug_assert!(p.awaiting.is_empty());
                tp.queries += 1;
                tp.comm_us += p.comm_us;
                tp.total_blocks += p.total_blocks;
                tp.cache_hits += p.cache_hits;
                let out = p.into_outcome();
                #[cfg(feature = "obs")]
                self.trace_reply(_query_id, round_start, &out);
                outcomes.push(out);
            }
        }

        // Per-worker busy time is the workers' own wall accounting (max over
        // a batch's disks + CPU), taken as a delta over this run. Summing
        // per-reply disk+CPU here would double-count a multi-disk worker's
        // parallel seeks and overstate utilization.
        for (w, b0) in busy0.iter().enumerate() {
            tp.worker_busy_us[w] = self.shared.workers[w].busy_wall_us.load(Ordering::Relaxed) - b0;
        }
        tp.retries = self.shared.retries.load(Ordering::Relaxed) - retries0;
        tp.failed_over_blocks = self.shared.failed_over_blocks.load(Ordering::Relaxed) - failed0;
        tp.retransmits = self.shared.retransmits.load(Ordering::Relaxed) - retransmits0;
        tp.hedges = self.shared.hedges.load(Ordering::Relaxed) - hedges0;
        tp.scrubbed = self.shared.scrubbed.load(Ordering::Relaxed) - scrubbed0;
        tp.worker_alive = (0..n_workers).map(|w| self.shared.is_alive(w)).collect();
        tp.makespan_us = tp.worker_busy_us.iter().copied().max().unwrap_or(0) + tp.comm_us;
        (outcomes, tp)
    }

    /// Runs a workload with up to `window` queries in flight at once.
    ///
    /// Compatibility wrapper over
    /// [`ParallelGridFile::run_workload_concurrent`]: returns the per-query
    /// outcomes plus [`RunStats`] whose `elapsed_us` is the run's makespan
    /// (busiest worker plus communication) rather than the sum of per-query
    /// elapsed times.
    pub fn run_workload_pipelined(
        &self,
        workload: &QueryWorkload,
        window: usize,
    ) -> (Vec<QueryOutcome>, RunStats) {
        let (outcomes, tp) = self.run_workload_concurrent(workload, window);
        let mut stats = RunStats::default();
        for o in &outcomes {
            stats.absorb(o);
        }
        stats.elapsed_us = tp.makespan_us;
        (outcomes, stats)
    }
}

/// A client's private stream of queries against a shared engine.
///
/// Holds its own reply channel (workers answer to the session that asked)
/// and accumulates [`RunStats`] across its queries. Obtained from
/// [`ParallelGridFile::session`]; one session per client thread.
pub struct QuerySession<'e> {
    engine: &'e ParallelGridFile,
    reply_tx: Sender<FromWorker>,
    reply_rx: Receiver<FromWorker>,
    priority: QueryPriority,
    stats: RunStats,
}

impl QuerySession<'_> {
    /// Sets the scheduling class of this session's requests (default
    /// [`QueryPriority::Interactive`]).
    pub fn with_priority(mut self, priority: QueryPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Executes one range query through the SPMD protocol.
    pub fn query(&mut self, rect: &Rect) -> QueryOutcome {
        let engine = self.engine;
        let query_id = engine.next_query_id.fetch_add(1, Ordering::Relaxed);
        engine.shared.queries.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        let start_us = engine.recorder.as_ref().map_or(0, |r| r.now());
        #[cfg(feature = "obs")]
        engine.trace_instant(SpanKind::Admit, query_id, NO_ID, 0);
        let (buckets, plan, incomplete) = engine.plan(rect);
        #[cfg(feature = "obs")]
        engine.trace_instant(SpanKind::Plan, query_id, NO_ID, buckets.len() as u64);
        let mut p = PendingQuery::new(0, *rect, buckets);
        p.incomplete = incomplete;

        let mut involved = false;
        for (w, read) in plan {
            involved = true;
            p.response_blocks = p.response_blocks.max(read.blocks.len() as u64);
            let seq = engine.next_seq.fetch_add(1, Ordering::Relaxed);
            let request = ReadRequest {
                query_id,
                seq,
                blocks: read.blocks.clone(),
                query: *rect,
                reply: self.reply_tx.clone(),
                priority: self.priority,
            };
            match engine.to_workers[w].send(ToWorker::Process(vec![request])) {
                Ok(()) => p
                    .awaiting
                    .push(Outstanding::new(w, seq, read.buckets, read.blocks)),
                Err(DispatchError(_)) => {
                    engine.shared.workers[w].dead.store(true, Ordering::Relaxed);
                    engine.fail_over(
                        query_id,
                        &mut p,
                        w,
                        &read.buckets,
                        &self.reply_tx,
                        self.priority,
                    );
                }
            }
        }
        if involved {
            // One broadcast latency for the dispatch; each reply adds its
            // own latency + transfer time as it arrives.
            p.comm_us += engine.net.latency_us;
            #[cfg(feature = "obs")]
            engine.trace_instant(SpanKind::Dispatch, query_id, NO_ID, p.awaiting.len() as u64);
        }

        let mut pending = HashMap::new();
        pending.insert(query_id, p);
        engine.collect(&self.reply_rx, &self.reply_tx, self.priority, &mut pending);
        let p = pending.remove(&query_id).expect("query still pending");

        let outcome = p.into_outcome();
        #[cfg(feature = "obs")]
        engine.trace_reply(query_id, start_us, &outcome);
        self.stats.absorb(&outcome);
        outcome
    }

    /// Like [`QuerySession::query`], but reports a closed query service as
    /// a typed [`EngineError::SessionClosed`] instead of silently resolving
    /// the query incomplete.
    ///
    /// "Closed" covers both orderings: the engine was already shut down
    /// when the query arrived, and the race where a submit was queued on a
    /// worker ring as [`ParallelGridFile::shutdown`] closed it — in that
    /// case the bounced dispatch resolves the outcome incomplete and this
    /// method converts it to the typed error. Never hangs and never panics.
    pub fn try_query(&mut self, rect: &Rect) -> Result<QueryOutcome, EngineError> {
        if self.engine.is_shut_down() {
            return Err(EngineError::SessionClosed);
        }
        let outcome = self.query(rect);
        if outcome.incomplete && self.engine.is_shut_down() {
            return Err(EngineError::SessionClosed);
        }
        Ok(outcome)
    }

    /// Stats accumulated by this session so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Explicitly ends the session, returning its accumulated stats.
    ///
    /// Dropping a session is equally safe (its reply channel closes and
    /// workers discard late replies); `close` exists so a server's shutdown
    /// path can make the hand-off order explicit — close every session,
    /// then [`ParallelGridFile::shutdown`] the engine.
    pub fn close(self) -> RunStats {
        self.stats
    }
}

impl Drop for ParallelGridFile {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
    use pargrid_geom::Point;
    use pargrid_gridfile::{GridConfig, Record};
    use pargrid_sim::QueryWorkload;

    fn sample_grid() -> (Arc<GridFile>, Vec<Record>) {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 8);
        let mut recs = Vec::new();
        let mut x = 1u64;
        for i in 0..600u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            recs.push(Record::new(
                i,
                Point::new2(
                    ((x >> 16) % 10000) as f64 / 100.0,
                    ((x >> 40) % 10000) as f64 / 100.0,
                ),
            ));
        }
        let gf = Arc::new(GridFile::bulk_load(cfg, recs.iter().copied()));
        (gf, recs)
    }

    /// Short reply timeout so failure tests don't wait 200 ms per poll.
    fn fast_cfg() -> EngineConfig {
        EngineConfig::default().resilience(|r| r.with_fail_timeout_ms(25))
    }

    fn build_engine_cfg(
        n_workers: usize,
        config: EngineConfig,
    ) -> (Arc<GridFile>, ParallelGridFile, Vec<Record>) {
        let (gf, recs) = sample_grid();
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, n_workers, 7);
        let engine = ParallelGridFile::build(Arc::clone(&gf), &assignment, config);
        (gf, engine, recs)
    }

    fn build_engine(n_workers: usize) -> (Arc<GridFile>, ParallelGridFile, Vec<Record>) {
        build_engine_cfg(n_workers, EngineConfig::default())
    }

    fn build_replicated_engine(
        n_workers: usize,
        config: EngineConfig,
    ) -> (Arc<GridFile>, ParallelGridFile, Vec<Record>) {
        let (gf, recs) = sample_grid();
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment =
            DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, n_workers, 7);
        let engine = ParallelGridFile::build_replicated(Arc::clone(&gf), &assignment, config);
        (gf, engine, recs)
    }

    #[test]
    fn query_returns_exactly_the_matching_records() {
        let (_gf, engine, recs) = build_engine(4);
        let q = Rect::new2(20.0, 20.0, 60.0, 60.0);
        let out = engine.query(&q);
        let mut expected: Vec<u64> = recs
            .iter()
            .filter(|r| q.contains_closed(&r.point))
            .map(|r| r.id)
            .collect();
        expected.sort_unstable();
        let got: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        assert_eq!(got, expected);
        assert!(out.response_blocks > 0);
        assert!(out.total_blocks >= out.response_blocks);
        assert!(out.elapsed_us > out.comm_us);
        assert!(!out.buckets.is_empty());
        assert_eq!(out.retries, 0);
        assert!(!out.incomplete);
    }

    #[test]
    fn engine_shutdown_joins_all_workers() {
        let (_gf, engine, _recs) = build_engine_cfg(4, fast_cfg());
        let engine = Arc::new(engine);
        // A long-lived session like the one a server holds.
        let mut session = engine.session();
        let out = session.query(&Rect::new2(20.0, 20.0, 60.0, 60.0));
        assert!(!out.incomplete);
        let _ = session.close();

        // Explicit SIGTERM-style shutdown joins every worker thread; none
        // outlive the call.
        assert!(!engine.is_shut_down());
        assert_eq!(engine.shutdown(), 4);
        assert!(engine.is_shut_down());
        // Idempotent: nothing left to join, and the eventual Drop is a no-op.
        assert_eq!(engine.shutdown(), 0);

        // A straggler query after shutdown must resolve (incomplete — the
        // workers are gone) rather than hang.
        let start = std::time::Instant::now();
        let out = engine.session().query(&Rect::new2(20.0, 20.0, 60.0, 60.0));
        assert!(out.incomplete);
        assert!(out.records.is_empty());
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "post-shutdown query should fail fast, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn parallel_equals_sequential_results() {
        let (gf, engine, _recs) = build_engine(8);
        for (i, q) in [
            Rect::new2(0.0, 0.0, 100.0, 100.0),
            Rect::new2(90.0, 0.0, 100.0, 100.0),
            Rect::new2(33.0, 33.0, 34.0, 34.0),
        ]
        .iter()
        .enumerate()
        {
            let out = engine.query(q);
            let (_, mut expected) = gf.range_query(q);
            expected.sort_unstable_by_key(|r| r.id);
            assert_eq!(out.records, expected, "query {i}");
        }
    }

    #[test]
    fn more_workers_reduce_response_blocks() {
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.1, 40, 3);
        let (_g4, e4, _) = build_engine(4);
        let (_g16, e16, _) = build_engine(16);
        let s4 = e4.run_workload(&w);
        let s16 = e16.run_workload(&w);
        assert!(
            (s16.response_blocks as f64) < 0.6 * s4.response_blocks as f64,
            "4 workers: {}, 16 workers: {}",
            s4.response_blocks,
            s16.response_blocks
        );
        assert!(s16.elapsed_seconds() < s4.elapsed_seconds());
        // Identical answers regardless of parallelism.
        assert_eq!(s4.records, s16.records);
    }

    #[test]
    fn empty_query_is_cheap_and_empty() {
        let (_gf, engine, _recs) = build_engine(4);
        let out = engine.query(&Rect::new2(200.0, 200.0, 300.0, 300.0));
        assert!(out.records.is_empty());
        assert!(out.buckets.is_empty());
        assert_eq!(out.total_blocks, 0);
        assert_eq!(out.comm_us, 0);
        assert_eq!(out.elapsed_us, 0);
    }

    #[test]
    fn reply_transfer_time_rounds_up() {
        // One worker, one bucket, zero matching records: the 32-byte reply
        // header must cost ceil(32/35) = 1 µs, not be truncated to zero.
        // Total comm = broadcast latency + reply latency + 1.
        let (_gf, engine, recs) = build_engine(1);
        // Find a thin slice with no records but inside the domain so a
        // bucket is touched.
        let mut q = None;
        for i in 0..1000 {
            let x = i as f64 / 10.0;
            let cand = Rect::new2(x, 0.0, x, 0.0);
            if recs.iter().all(|r| !cand.contains_closed(&r.point)) {
                q = Some(cand);
                break;
            }
        }
        let out = engine.query(&q.expect("an empty point query exists"));
        assert!(out.records.is_empty());
        assert!(out.total_blocks > 0, "a bucket was still read");
        assert_eq!(out.comm_us, 40 + 40 + 1);
    }

    #[test]
    fn repeated_queries_hit_worker_caches() {
        let (_gf, engine, _recs) = build_engine(4);
        let q = Rect::new2(10.0, 10.0, 50.0, 50.0);
        let first = engine.query(&q);
        let second = engine.query(&q);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(second.cache_hits, second.total_blocks);
        assert!(second.elapsed_us < first.elapsed_us);
    }

    #[test]
    fn legacy_mut_call_sites_still_compile() {
        // The API redesign moved query methods to `&self`; holders of
        // `&mut ParallelGridFile` (the pre-redesign contract) coerce.
        let (_gf, mut engine, _recs) = build_engine(2);
        let q = Rect::new2(0.0, 0.0, 10.0, 10.0);
        let handle: &mut ParallelGridFile = &mut engine;
        let _ = handle.query(&q);
        let _ = handle.run_workload(&QueryWorkload { queries: vec![q] });
    }

    #[test]
    fn shutdown_is_clean() {
        let (_gf, engine, _recs) = build_engine(3);
        drop(engine); // must not hang or panic
    }

    #[test]
    fn session_accumulates_stats() {
        let (_gf, engine, _recs) = build_engine(4);
        let mut session = engine.session();
        let q = Rect::new2(10.0, 10.0, 50.0, 50.0);
        session.query(&q);
        session.query(&q);
        let stats = session.stats();
        assert_eq!(stats.queries, 2);
        assert!(stats.total_blocks > 0);
        assert!(stats.cache_hits > 0, "second query should hit cache");
        let engine_stats = engine.stats();
        assert_eq!(engine_stats.queries, 2);
        assert_eq!(engine_stats.total_blocks(), stats.total_blocks);
    }

    #[test]
    fn concurrent_sessions_share_one_engine() {
        // The shared-service contract: multiple client threads query one
        // engine through `&self` simultaneously and each gets exactly its
        // own query's answers.
        let (gf, engine, _recs) = build_engine(4);
        let queries = [
            Rect::new2(0.0, 0.0, 30.0, 30.0),
            Rect::new2(40.0, 40.0, 80.0, 80.0),
            Rect::new2(10.0, 60.0, 90.0, 95.0),
            Rect::new2(0.0, 0.0, 100.0, 100.0),
        ];
        let mut expected = Vec::new();
        for q in &queries {
            let (_, mut e) = gf.range_query(q);
            e.sort_unstable_by_key(|r| r.id);
            expected.push(e);
        }
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for q in &queries {
                let engine = &engine;
                joins.push(scope.spawn(move || {
                    let mut session = engine.session();
                    let mut out = Vec::new();
                    for _ in 0..3 {
                        out.push(session.query(q).records);
                    }
                    out
                }));
            }
            for (join, expect) in joins.into_iter().zip(&expected) {
                for got in join.join().expect("client thread") {
                    assert_eq!(&got, expect);
                }
            }
        });
        assert_eq!(engine.stats().queries, 12);
    }

    #[test]
    fn pipelined_matches_sequential_results() {
        let (_gf, seq, _recs) = build_engine(6);
        let (_gf2, pip, _recs2) = build_engine(6);
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 40, 21);
        let (outcomes, pstats) = pip.run_workload_pipelined(&w, 8);
        assert_eq!(outcomes.len(), 40);
        let mut sstats = RunStats::default();
        for (q, out) in w.queries.iter().zip(&outcomes) {
            let s = seq.query(q);
            assert_eq!(s.records, out.records);
            assert_eq!(s.total_blocks, out.total_blocks);
            sstats.elapsed_us += s.elapsed_us;
        }
        // Batched servicing never exceeds sequential elapsed time (shared
        // elevator passes only remove seeks; cache contents match because
        // both engines saw the same query order).
        assert!(
            pstats.elapsed_us <= sstats.elapsed_us,
            "pipelined {} > sequential {}",
            pstats.elapsed_us,
            sstats.elapsed_us
        );
        assert!(pstats.elapsed_us > 0);
    }

    #[test]
    fn pipelined_window_one_equals_sequential_totals() {
        let (_gf, a, _r) = build_engine(4);
        let (_gf2, b, _r2) = build_engine(4);
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 15, 5);
        let sa = a.run_workload(&w);
        let (_, sb) = b.run_workload_pipelined(&w, 1);
        assert_eq!(sa.total_blocks, sb.total_blocks);
        assert_eq!(sa.records, sb.records);
        assert_eq!(sa.response_blocks, sb.response_blocks);
    }

    #[test]
    fn concurrent_run_is_deterministic_and_matches_serial() {
        // A seeded workload run serially and with in_flight > 1 fetches the
        // identical total number of blocks from each worker and touches
        // identical per-query bucket sets — under both the default
        // single-disk configuration and the SP-2 seven-disk one.
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.06, 30, 17);
        for config in [EngineConfig::default(), EngineConfig::sp2_seven_disks()] {
            let (_g1, serial, _r1) = build_engine_cfg(6, config.clone());
            let mut serial_session = serial.session();
            let serial_outcomes: Vec<QueryOutcome> =
                w.queries.iter().map(|q| serial_session.query(q)).collect();
            let serial_stats = serial.stats();

            let (_g2, concurrent, _r2) = build_engine_cfg(6, config.clone());
            let (conc_outcomes, tp) = concurrent.run_workload_concurrent(&w, 8);
            let conc_stats = concurrent.stats();

            assert_eq!(conc_outcomes.len(), serial_outcomes.len());
            for (s, c) in serial_outcomes.iter().zip(&conc_outcomes) {
                assert_eq!(s.buckets, c.buckets, "per-query bucket sets differ");
                assert_eq!(s.records, c.records);
                assert_eq!(s.total_blocks, c.total_blocks);
            }
            // Identical per-worker block totals, worker by worker.
            for (ws, wc) in serial_stats.workers.iter().zip(&conc_stats.workers) {
                assert_eq!(ws.blocks_fetched, wc.blocks_fetched);
            }
            assert_eq!(tp.total_blocks, serial_session.stats().total_blocks);

            // And the concurrent run itself is reproducible.
            let (_g3, again, _r3) = build_engine_cfg(6, config.clone());
            let (again_outcomes, tp2) = again.run_workload_concurrent(&w, 8);
            assert_eq!(tp2.makespan_us, tp.makespan_us);
            assert_eq!(tp2.cache_hits, tp.cache_hits);
            for (a, b) in conc_outcomes.iter().zip(&again_outcomes) {
                assert_eq!(a.elapsed_us, b.elapsed_us);
            }
        }
    }

    #[test]
    fn wider_window_raises_throughput() {
        let (_g, engine, _r) = build_engine(4);
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.05, 48, 9);
        let (_g2, engine2, _r2) = build_engine(4);
        let (_, tp1) = engine.run_workload_concurrent(&w, 1);
        let (_, tp8) = engine2.run_workload_concurrent(&w, 8);
        assert_eq!(tp1.queries, 48);
        assert_eq!(tp8.queries, 48);
        assert!(
            tp8.queries_per_second() > tp1.queries_per_second(),
            "window 8 ({:.1} q/s) not faster than window 1 ({:.1} q/s)",
            tp8.queries_per_second(),
            tp1.queries_per_second()
        );
        assert!(tp8.mean_batch() > tp1.mean_batch());
        assert!(tp8.max_batch >= tp8.in_flight as u64 / 2);
    }

    #[test]
    fn multi_disk_busy_time_is_wall_not_sum() {
        // The busy-time regression: with seven disks per worker the old
        // accounting summed per-disk maxima per query and could report
        // utilization far above 1.0. Wall accounting keeps every worker's
        // busy time within the makespan, and strictly below the per-disk
        // sum whenever the disks actually overlapped.
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.08, 30, 11);
        let (_g, engine, _r) = build_engine_cfg(6, EngineConfig::sp2_seven_disks());
        let (_outcomes, tp) = engine.run_workload_concurrent(&w, 8);
        for (wi, u) in tp.utilization().iter().enumerate() {
            assert!(*u <= 1.0 + 1e-9, "worker {wi} utilization {u} exceeds 1.0");
        }
        let stats = engine.stats();
        let wall: u64 = stats.workers.iter().map(|ws| ws.busy_wall_us).sum();
        let disk_sum: u64 = stats.workers.iter().map(|ws| ws.disk_busy_us).sum();
        assert!(
            wall < disk_sum,
            "seven parallel disks must make wall time {wall} \
             strictly less than the per-disk sum {disk_sum}"
        );
    }

    #[test]
    fn single_disk_wall_time_covers_disk_busy() {
        // With one disk per worker there is no overlap to discount: wall
        // busy time is at least the disk busy time (it adds CPU).
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.08, 20, 11);
        let (_g, engine, _r) = build_engine(4);
        let (_outcomes, _tp) = engine.run_workload_concurrent(&w, 4);
        for ws in &engine.stats().workers {
            assert!(
                ws.busy_wall_us >= ws.disk_busy_us,
                "wall {} below disk busy {}",
                ws.busy_wall_us,
                ws.disk_busy_us
            );
        }
    }

    #[test]
    fn file_backed_store_matches_memory() {
        let dir = std::env::temp_dir().join("pargrid_engine_spill_test");
        let _ = std::fs::remove_dir_all(&dir);
        let (gf, mem_engine, _recs) = build_engine(4);
        let input = DeclusterInput::from_grid_file(&gf);
        let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, 4, 7);
        let file_engine = ParallelGridFile::build(
            Arc::clone(&gf),
            &assignment,
            EngineConfig::file_backed(&dir),
        );
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.08, 25, 13);
        for q in &w.queries {
            let a = mem_engine.query(q);
            let b = file_engine.query(q);
            assert_eq!(a.records, b.records);
            assert_eq!(a.total_blocks, b.total_blocks);
        }
        // Real block files exist with the expected geometry.
        let f = std::fs::metadata(dir.join("worker-0.blocks")).expect("file exists");
        assert!(f.len() > 0);
        assert_eq!(
            f.len() % (gf.config().page_bytes as u64 + 4),
            0,
            "file is whole blocks"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replicated_healthy_run_matches_unreplicated() {
        let (_g1, plain, _r1) = build_engine(6);
        let (_g2, repl, _r2) = build_replicated_engine(6, EngineConfig::default());
        assert!(repl.is_replicated());
        assert!(!plain.is_replicated());
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.07, 20, 5);
        for q in &w.queries {
            let a = plain.query(q);
            let b = repl.query(q);
            assert_eq!(a.records, b.records);
            assert_eq!(a.total_blocks, b.total_blocks, "replicas must not be read");
            assert_eq!(b.retries, 0);
            assert!(!b.incomplete);
        }
    }

    #[test]
    fn replicated_engine_survives_worker_failure() {
        // A worker fail-stops on its first request; every query still
        // returns the exact answer set of a healthy unreplicated engine —
        // the tentpole acceptance criterion.
        let (gf, engine, _r) = build_replicated_engine(
            6,
            fast_cfg().resilience(|r| r.with_faults(FaultPlan::kill_first(1))),
        );
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.08, 12, 29);
        let mut saw_retry = false;
        for q in &w.queries {
            let out = engine.query(q);
            let (_, mut expected) = gf.range_query(q);
            expected.sort_unstable_by_key(|r| r.id);
            assert_eq!(out.records, expected, "degraded answers must be exact");
            assert!(!out.incomplete);
            saw_retry |= out.retries > 0;
        }
        assert!(
            saw_retry,
            "the dead worker's buckets were never failed over"
        );
        let stats = engine.stats();
        assert!(!stats.workers[0].alive, "worker 0 should be marked dead");
        assert_eq!(stats.live_workers(), 5);
        assert!(stats.retries > 0);
        assert!(stats.failed_over_blocks > 0);
    }

    #[test]
    fn replicated_concurrent_run_survives_worker_failure() {
        let (gf, engine, _r) = build_replicated_engine(
            6,
            fast_cfg().resilience(|r| r.with_faults(FaultPlan::kill_first(1))),
        );
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.08, 12, 29);
        let (outcomes, tp) = engine.run_workload_concurrent(&w, 6);
        assert_eq!(outcomes.len(), 12);
        for (q, out) in w.queries.iter().zip(&outcomes) {
            let (_, mut expected) = gf.range_query(q);
            expected.sort_unstable_by_key(|r| r.id);
            assert_eq!(out.records, expected);
            assert!(!out.incomplete);
        }
        assert!(tp.retries > 0 || tp.failed_over_blocks > 0);
        // The dead worker contributes no busy time after its death round.
        assert!(engine.stats().live_workers() == 5);
    }

    #[test]
    fn unreplicated_failure_degrades_without_panic() {
        let (_g, engine, _r) = build_engine_cfg(
            4,
            fast_cfg().resilience(|r| r.with_faults(FaultPlan::kill_first(1))),
        );
        let w = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.2, 8, 3);
        let mut incomplete_seen = false;
        for q in &w.queries {
            let out = engine.query(q); // must not panic
            incomplete_seen |= out.incomplete;
        }
        assert!(
            incomplete_seen,
            "losing a worker without replicas must surface incomplete answers"
        );
        assert_eq!(engine.stats().live_workers(), 3);
    }

    #[test]
    fn poisoned_request_fails_over_to_replica() {
        // Worker errors (not death): the reply carries an error, the
        // coordinator retries the buckets on their replicas, the answer
        // stays exact and the worker stays alive.
        let (gf, engine, _r) = build_replicated_engine(
            4,
            fast_cfg().resilience(|r| r.with_faults(FaultPlan::none().with_poison(1, 0))),
        );
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let out = engine.query(&q);
        let (_, mut expected) = gf.range_query(&q);
        expected.sort_unstable_by_key(|r| r.id);
        assert_eq!(out.records, expected);
        assert!(out.retries >= 1);
        assert!(!out.incomplete);
        let stats = engine.stats();
        assert_eq!(stats.live_workers(), 4, "poison must not kill the worker");
        assert!(stats.workers[1].error_replies >= 1);
        // Subsequent queries are healthy again (poison was query 0 only).
        let again = engine.query(&q);
        assert_eq!(again.records, expected);
        assert_eq!(again.retries, 0);
    }

    #[test]
    fn dropped_session_mid_flight_does_not_wedge_engine() {
        // A client vanishing between dispatch and collection: the worker's
        // reply send fails silently and the engine keeps serving others.
        let (gf, engine, _r) = build_engine(4);
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        {
            // Hand-roll a dispatch whose reply channel dies immediately.
            let (reply_tx, reply_rx) = unbounded();
            let (_buckets, plan, _inc) = engine.plan(&q);
            for (w, read) in plan {
                engine.to_workers[w]
                    .send(ToWorker::Process(vec![ReadRequest {
                        query_id: u64::MAX, // never a real pending id
                        seq: u64::MAX,
                        blocks: read.blocks,
                        query: q,
                        reply: reply_tx.clone(),
                        priority: QueryPriority::Interactive,
                    }]))
                    .expect("send");
            }
            drop(reply_tx);
            drop(reply_rx); // session gone before any reply lands
        }
        // The engine (same workers) still answers exactly.
        let out = engine.query(&q);
        let (_, mut expected) = gf.range_query(&q);
        expected.sort_unstable_by_key(|r| r.id);
        assert_eq!(out.records, expected);
        assert_eq!(engine.stats().live_workers(), 4);
    }

    /// Records matching `q`, sorted by id — the fault-free oracle.
    fn oracle(gf: &GridFile, q: &Rect) -> Vec<Record> {
        let (_, mut expected) = gf.range_query(q);
        expected.sort_unstable_by_key(|r| r.id);
        expected
    }

    #[test]
    fn dropped_request_is_retransmitted_and_answers_exactly() {
        // The first delivery to worker 0 vanishes; the coordinator's
        // timeout-driven retransmit (same seq) gets through.
        let cfg = fast_cfg().resilience(|r| r.with_faults(FaultPlan::none().with_drop(0, 0, 1)));
        let (gf, engine, _r) = build_engine_cfg(4, cfg);
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let out = engine.query(&q);
        assert_eq!(out.records, oracle(&gf, &q));
        assert!(!out.incomplete);
        assert_eq!(out.retries, 0, "retransmit is not a failover");
        let stats = engine.stats();
        assert!(stats.retransmits >= 1, "stats: {stats:?}");
        assert_eq!(stats.live_workers(), 4, "drop must not declare deaths");
    }

    #[test]
    fn persistently_dropped_request_exhausts_retransmits_then_fails_over() {
        // Every delivery to worker 0 vanishes. Retransmits are bounded, so
        // the engine must eventually declare the worker and (unreplicated)
        // answer incomplete rather than hang. A tight strike limit keeps
        // the test fast and exercises the max_timeout_strikes knob.
        let cfg = fast_cfg().resilience(|r| {
            r.with_max_timeout_strikes(8)
                .with_faults(FaultPlan::none().with_drop(0, 0, u32::MAX))
        });
        let (_gf, engine, _r) = build_engine_cfg(4, cfg);
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let out = engine.query(&q);
        assert!(out.incomplete, "no replica to recover the dropped blocks");
        let stats = engine.stats();
        assert!(stats.retransmits >= 1);
        // Query 1 is not in the drop plan: the engine still serves what the
        // remaining workers hold.
        let out2 = engine.query(&q);
        assert!(!out2.records.is_empty());
    }

    #[test]
    fn duplicated_replies_never_duplicate_records() {
        // Every worker answers query 0 twice; seq matching merges each
        // logical reply exactly once.
        let mut faults = FaultPlan::none();
        for w in 0..4 {
            faults = faults.with_duplicate(w, 0);
        }
        let (gf, engine, _r) =
            build_engine_cfg(4, fast_cfg().resilience(|r| r.with_faults(faults)));
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let out = engine.query(&q);
        let ids: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        let unique: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(ids.len(), unique.len(), "duplicate records merged");
        assert_eq!(out.records, oracle(&gf, &q));
        assert!(!out.incomplete);
    }

    #[test]
    fn delayed_reply_is_deduped_against_its_own_retransmits() {
        // Worker 0 sleeps 120 ms before answering while the coordinator
        // polls every 25 ms: retransmits fire, the worker dedups the
        // redeliveries, and the one real reply merges exactly once.
        let cfg = fast_cfg().resilience(|r| r.with_faults(FaultPlan::none().with_delay(0, 0, 120)));
        let (gf, engine, _r) = build_engine_cfg(4, cfg);
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let out = engine.query(&q);
        assert_eq!(out.records, oracle(&gf, &q));
        assert!(!out.incomplete);
        let stats = engine.stats();
        assert_eq!(stats.live_workers(), 4, "slow is not dead");
        let deduped: u64 = stats.workers.iter().map(|w| w.dup_requests_dropped).sum();
        assert_eq!(
            stats.retransmits, deduped,
            "every retransmit of the delayed request must be deduped"
        );
    }

    #[test]
    fn reordered_replies_are_matched_by_seq_not_position() {
        // Workers reverse the reply order of every batch; a concurrent
        // window makes batches multi-reply so the reordering is real.
        let mut faults = FaultPlan::none();
        for w in 0..4 {
            faults = faults.with_reorder(w, 0);
        }
        let (gf, engine, _r) =
            build_engine_cfg(4, fast_cfg().resilience(|r| r.with_faults(faults)));
        let workload = QueryWorkload::square(&Rect::new2(0.0, 0.0, 100.0, 100.0), 0.4, 12, 99);
        let (outcomes, tp) = engine.run_workload_concurrent(&workload, 4);
        assert_eq!(tp.queries, 12);
        for (q, out) in workload.queries.iter().zip(&outcomes) {
            assert_eq!(out.records, oracle(&gf, q), "query {q:?}");
            assert!(!out.incomplete);
        }
    }

    #[test]
    fn corrupt_block_is_answered_by_replica_and_scrubbed() {
        // Worker 0 flips a byte in its block 0. The checksum catches it,
        // the replica answers the query, and the scrubber rewrites the
        // block from the replica copy so the next read is clean.
        let cfg =
            fast_cfg().resilience(|r| r.with_faults(FaultPlan::none().with_corrupt_block(0, 0)));
        let (gf, engine, _r) = build_replicated_engine(4, cfg);
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let out = engine.query(&q);
        assert_eq!(out.records, oracle(&gf, &q));
        assert!(!out.incomplete);
        assert!(out.retries >= 1, "replica must have answered");
        let stats = engine.stats();
        assert!(stats.scrubbed >= 1, "stats: {stats:?}");
        // Give the worker a beat to apply the queued WriteRaw, then verify
        // the block reads clean: no retries, still exact.
        std::thread::sleep(Duration::from_millis(50));
        let out2 = engine.query(&q);
        assert_eq!(out2.records, oracle(&gf, &q));
        assert_eq!(out2.retries, 0, "corruption must be repaired in place");
        assert_eq!(engine.stats().scrubbed, stats.scrubbed);
    }

    #[test]
    fn corrupt_block_without_replica_is_incomplete_not_fatal() {
        let cfg =
            fast_cfg().resilience(|r| r.with_faults(FaultPlan::none().with_corrupt_block(0, 0)));
        let (gf, engine, _r) = build_engine_cfg(4, cfg);
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let out = engine.query(&q);
        assert!(out.incomplete, "no replica to answer or repair from");
        assert_eq!(engine.stats().scrubbed, 0);
        // Untouched buckets still answer.
        let expected = oracle(&gf, &q);
        assert!(!out.records.is_empty());
        assert!(out.records.len() < expected.len());
        assert!(out.records.iter().all(|r| expected.contains(r)));
    }

    #[test]
    fn poisoned_query_without_replica_is_incomplete_then_recovers() {
        // Satellite: PoisonQuery on the unreplicated path. The poisoned
        // request surfaces as an explicit incomplete answer (no replica to
        // retry against), the worker stays alive, and the next query is
        // whole again.
        let cfg = fast_cfg().resilience(|r| r.with_faults(FaultPlan::none().with_poison(0, 0)));
        let (gf, engine, _r) = build_engine_cfg(4, cfg);
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let out = engine.query(&q);
        assert!(out.incomplete);
        assert_eq!(out.hedges, 0);
        let expected = oracle(&gf, &q);
        assert!(out.records.iter().all(|r| expected.contains(r)));
        assert!(out.records.len() < expected.len());
        let stats = engine.stats();
        assert_eq!(stats.live_workers(), 4, "poison is per-query, not fatal");
        let out2 = engine.query(&q);
        assert_eq!(out2.records, expected);
        assert!(!out2.incomplete);
    }

    #[test]
    fn deadline_bounds_a_stalled_query_and_marks_it_incomplete() {
        // Worker 0 swallows every delivery of query 0 and there is no
        // replica: without a deadline the query would only resolve at the
        // (slow) strike limit. The deadline budget cuts it off and answers
        // explicitly incomplete; the engine survives.
        let cfg = fast_cfg()
            .latency(|l| l.with_deadline_us(150_000))
            .resilience(|r| r.with_faults(FaultPlan::none().with_drop(0, 0, u32::MAX)));
        let (gf, engine, _r) = build_engine_cfg(4, cfg);
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let started = std::time::Instant::now();
        let out = engine.query(&q);
        assert!(out.incomplete);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline must cut the wait far below the strike limit"
        );
        let stats = engine.stats();
        assert!(stats.deadline_expired >= 1, "stats: {stats:?}");
        // Query 1 is unfaulted and fast: well inside the deadline.
        let out2 = engine.query(&q);
        assert_eq!(out2.records, oracle(&gf, &q));
        assert!(!out2.incomplete);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn slow_primary_is_hedged_against_its_replica() {
        // Worker 0's disk runs 60x slow. After a healthy warmup fills the
        // service-time baseline, a query landing on worker 0 exceeds
        // 2 x p95 and is hedged to the replica; the answer stays exact and
        // the query is charged the faster of the two copies.
        let cfg = fast_cfg()
            .latency(|l| l.with_hedging(2.0))
            .resilience(|r| r.with_faults(FaultPlan::none().with_slow_disk(0, 60)));
        let (gf, engine, recs) = build_replicated_engine(4, cfg);

        let tiny = |r: &Record| {
            Rect::new2(
                r.point.coords()[0] - 0.01,
                r.point.coords()[1] - 0.01,
                r.point.coords()[0] + 0.01,
                r.point.coords()[1] + 0.01,
            )
        };
        // Warmup: queries that avoid the slow worker keep the p95 healthy.
        let mut warmed = 0;
        for r in &recs {
            let q = tiny(r);
            let (_b, plan, _inc) = engine.plan(&q);
            if !plan.is_empty() && !plan.contains_key(&0) {
                engine.query(&q);
                warmed += 1;
                if warmed >= 24 {
                    break;
                }
            }
        }
        assert!(
            engine.service_hist.count() >= HEDGE_MIN_SAMPLES,
            "warmup too small: {} samples",
            engine.service_hist.count()
        );
        // A request served by worker 0 alone, whose buckets share one live
        // replica worker — the hedgeable shape.
        let target = recs
            .iter()
            .map(tiny)
            .find(|q| {
                let (_b, plan, _inc) = engine.plan(q);
                plan.len() == 1
                    && plan.contains_key(&0)
                    && engine.hedge_target(&plan[&0].buckets, 0).is_some()
            })
            .expect("some record resolves to a hedgeable worker-0 request");
        let out = engine.query(&target);
        assert_eq!(out.records, oracle(&gf, &target));
        assert!(!out.incomplete);
        assert!(out.hedges >= 1, "outcome: {out:?}");
        assert_eq!(out.retries, 0, "a hedge is speculation, not failover");
        assert!(engine.stats().hedges >= 1);
    }

    #[test]
    fn submit_after_close_returns_session_closed_error() {
        // Regression: a submit hitting closed worker rings must come back
        // as a typed error, not hang on a reply that will never arrive and
        // not panic on the closed transport. Covers both orderings — a
        // query issued after shutdown, and one whose dispatch raced the
        // rings closing.
        let (_gf, engine, _recs) = build_engine_cfg(4, fast_cfg());
        let mut session = engine.session();
        let q = Rect::new2(20.0, 20.0, 60.0, 60.0);
        let out = session.try_query(&q).expect("engine is live");
        assert!(!out.incomplete);

        engine.shutdown();
        let start = std::time::Instant::now();
        match session.try_query(&q) {
            Err(EngineError::SessionClosed) => {}
            other => panic!("expected SessionClosed, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "closed-session submit must fail fast, took {:?}",
            start.elapsed()
        );
        // A fresh session on the dead engine reports the same typed error.
        let mut late = engine.session();
        assert!(matches!(
            late.try_query(&q),
            Err(EngineError::SessionClosed)
        ));
    }

    #[test]
    fn channel_dispatch_mode_answers_exactly() {
        // The legacy transport stays selectable (A/B benchmarking) and
        // produces the same answers as the default ring path.
        let (gf, engine, _recs) =
            build_engine_cfg(4, fast_cfg().with_dispatch(DispatchMode::Channel));
        let q = Rect::new2(10.0, 10.0, 70.0, 70.0);
        let out = engine.query(&q);
        assert_eq!(out.records, oracle(&gf, &q));
        assert!(!out.incomplete);
        assert_eq!(engine.shutdown(), 4);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_config_shims_delegate_to_groups() {
        // The seven pre-redesign flat knobs keep compiling and must land in
        // the grouped sub-configs they migrated into.
        let cfg = EngineConfig::default()
            .with_faults(FaultPlan::kill_first(1))
            .with_deadline_us(5_000)
            .with_hedging(2.5)
            .with_max_retransmits(7)
            .with_max_timeout_strikes(0) // clamps to 1
            .with_seen_seq_window(0); // clamps to 1
        assert!(!cfg.resilience.faults.is_empty());
        assert_eq!(cfg.latency.deadline_us, Some(5_000));
        assert_eq!(cfg.latency.hedge_threshold, Some(2.5));
        assert_eq!(cfg.resilience.max_retransmits, 7);
        assert_eq!(cfg.resilience.max_timeout_strikes, 1);
        assert_eq!(cfg.resilience.seen_seq_window, 1);
    }

    /// Everything the whole domain holds, via the engine.
    fn all_ids(engine: &ParallelGridFile) -> Vec<u64> {
        engine
            .query(&Rect::new2(0.0, 0.0, 100.0, 100.0))
            .records
            .iter()
            .map(|r| r.id)
            .collect()
    }

    #[test]
    fn insert_then_query_reads_your_write() {
        let (_gf, engine, recs) = build_engine(4);
        let fresh = Record::new(10_000, Point::new2(42.5, 42.5));
        let out = engine.insert(fresh).unwrap();
        assert!(out.applied);
        assert!(!out.rewritten_buckets.is_empty() || !out.created_buckets.is_empty());
        let q = Rect::new2(40.0, 40.0, 45.0, 45.0);
        let got: Vec<u64> = engine.query(&q).records.iter().map(|r| r.id).collect();
        assert!(got.contains(&10_000), "insert must be query-visible");

        let out = engine.delete(10_000, &Point::new2(42.5, 42.5)).unwrap();
        assert!(out.applied);
        let got: Vec<u64> = engine.query(&q).records.iter().map(|r| r.id).collect();
        assert!(!got.contains(&10_000), "delete must be query-visible");

        // Deleting an absent record applies cleanly but changes nothing.
        let out = engine.delete(99_999, &Point::new2(1.0, 1.0)).unwrap();
        assert!(!out.applied);
        assert_eq!(engine.len(), recs.len() as u64);
        assert_eq!(engine.shutdown(), 4);
    }

    #[test]
    fn mutations_split_and_merge_buckets_through_the_engine() {
        let (_gf, engine, recs) = build_engine(4);
        // Hammer one spot: capacity-8 buckets must split repeatedly.
        let mut created = 0usize;
        for i in 0..120u64 {
            let p = Point::new2(30.0 + (i % 40) as f64 * 0.01, 70.0 + (i / 40) as f64 * 0.01);
            let out = engine.insert(Record::new(20_000 + i, p)).unwrap();
            created += out.created_buckets.len();
        }
        assert!(created > 0, "120 clustered inserts must split buckets");
        assert_eq!(engine.len(), recs.len() as u64 + 120);

        let expected: Vec<u64> = {
            let mut ids: Vec<u64> = recs.iter().map(|r| r.id).collect();
            ids.extend(20_000..20_120);
            ids.sort_unstable();
            ids
        };
        assert_eq!(all_ids(&engine), expected, "no records lost or duplicated");

        // Drain the hot spot again: merges must free buckets.
        let mut freed = 0usize;
        for i in 0..120u64 {
            let p = Point::new2(30.0 + (i % 40) as f64 * 0.01, 70.0 + (i / 40) as f64 * 0.01);
            let out = engine.delete(20_000 + i, &p).unwrap();
            assert!(out.applied);
            freed += out.freed_buckets.len();
        }
        assert!(freed > 0, "draining the hot spot must merge buckets");
        let expected: Vec<u64> = {
            let mut ids: Vec<u64> = recs.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(all_ids(&engine), expected, "back to the original set");
        engine.snapshot_grid().check_invariants();
        assert_eq!(engine.shutdown(), 4);
    }

    #[test]
    fn replicated_mutations_place_both_copies_and_survive_a_dead_worker() {
        let (_gf, engine, recs) = build_replicated_engine(
            4,
            fast_cfg().resilience(|r| r.with_faults(FaultPlan::kill_first(1))),
        );
        for i in 0..90u64 {
            let p = Point::new2(60.0 + (i % 30) as f64 * 0.01, 20.0 + (i / 30) as f64 * 0.01);
            engine.insert(Record::new(30_000 + i, p)).unwrap();
        }
        // Every bucket — including split-created ones — has two copies on
        // distinct workers.
        {
            let cat = engine.catalog.read().unwrap();
            for (id, pl) in &cat.placement {
                let (rw, rblocks) = pl
                    .replica
                    .as_ref()
                    .unwrap_or_else(|| panic!("bucket {id} lost its replica after mutations"));
                assert_ne!(pl.primary.0, *rw, "bucket {id} replica on its own worker");
                assert_eq!(
                    pl.primary.1.len(),
                    rblocks.len(),
                    "bucket {id} copies must stay positionally aligned"
                );
            }
        }
        // Worker 0 dies after its first reply; chained replicas must still
        // answer with the full record set (including every fresh insert).
        let mut expected: Vec<u64> = recs.iter().map(|r| r.id).collect();
        expected.extend(30_000..30_090);
        expected.sort_unstable();
        // First query trips the kill fault; the second plans around the
        // corpse entirely.
        let _ = engine.query(&Rect::new2(0.0, 0.0, 100.0, 100.0));
        let out = engine.query(&Rect::new2(0.0, 0.0, 100.0, 100.0));
        assert!(!out.incomplete, "replicas must cover the dead worker");
        let got: Vec<u64> = out.records.iter().map(|r| r.id).collect();
        assert_eq!(got, expected, "failover reads lose or duplicate nothing");
        assert_eq!(engine.shutdown(), 4);
    }

    #[test]
    fn wal_and_checkpoint_round_trip_through_recovery() {
        use pargrid_gridfile::DurableGridFile;
        let dir = std::env::temp_dir().join(format!(
            "pargrid_engine_wal_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let (_gf, engine, _recs) = build_engine(3);
        let cfg = engine.snapshot_grid().config().clone();
        engine.attach_wal(
            Wal::open_append(dir.join(pargrid_gridfile::durable::WAL_FILE), 0).unwrap(),
        );
        for i in 0..25u64 {
            engine
                .insert(Record::new(40_000 + i, Point::new2(i as f64 + 0.5, 50.0)))
                .unwrap();
        }
        engine.delete(40_003, &Point::new2(3.5, 50.0)).unwrap();
        assert!(engine.wal_len_bytes() > 0);

        // Mid-stream checkpoint folds the log into the image...
        assert!(engine.checkpoint().unwrap());
        assert_eq!(engine.wal_len_bytes(), 0);
        // ...and later mutations land in the fresh WAL.
        engine
            .insert(Record::new(50_000, Point::new2(99.0, 99.0)))
            .unwrap();
        assert!(engine.wal_len_bytes() > 0);

        // Recovery = checkpoint image + WAL replay: byte-for-byte the same
        // record set the live engine holds.
        let live = engine.snapshot_grid();
        let recovered = DurableGridFile::open(&dir, cfg).unwrap();
        assert_eq!(recovered.recovered_ops(), 1);
        assert_eq!(recovered.grid().len(), live.len());
        let whole = Rect::new2(0.0, 0.0, 100.0, 100.0);
        assert_eq!(
            recovered.grid().range_query(&whole).1,
            live.range_query(&whole).1,
            "recovered grid must answer identically to the live engine"
        );
        assert_eq!(engine.shutdown(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
