//! A fixed-capacity LRU set with O(1) touch/insert/evict, plus the pooled
//! block-buffer arena backing the zero-allocation read path.
//!
//! [`LruCache`] models each worker's buffer cache of disk pages. Only page
//! *identity* is cached (hit/miss drives the disk time model); page bytes
//! stay in the worker's store.
//!
//! [`BufferPool`] and [`BlockBuf`] remove the other allocation from the
//! read path: file-backed stores used to allocate a fresh `Vec` per block
//! read (and in-memory stores *cloned* every page). With the pool, a
//! file-backed read recycles a buffer from a free list and hands it back on
//! drop, and an in-memory read borrows the stored bytes outright
//! (`benches/hotpath.rs` pins the before/after pair in
//! `BENCH_hotpath.json`).
//!
//! Implementation: an intrusive doubly-linked list over a slab of nodes plus
//! a key -> slot map. No unsafe code; links are slab indices, and the pool
//! uses `RefCell` (stores are owned by one worker thread).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::ops::Deref;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    key: u32,
    prev: u32,
    next: u32,
}

/// Fixed-capacity LRU set of `u32` keys.
#[derive(Debug)]
pub struct LruCache {
    map: HashMap<u32, u32>, // key -> slot
    slab: Vec<Node>,
    /// Slots vacated by [`LruCache::remove`], reused before the slab grows.
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` keys. A capacity of zero
    /// is allowed and caches nothing (the paper's "raw disk I/O" mode).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently-used on a hit. On a miss the
    /// key is inserted (evicting the least-recently-used key if full).
    /// Returns whether it was a hit.
    pub fn touch(&mut self, key: u32) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.unlink(slot);
            self.push_front(slot);
            return true;
        }
        // Miss: insert, evicting if needed.
        let slot = if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old_key = self.slab[lru as usize].key;
            self.map.remove(&old_key);
            self.slab[lru as usize].key = key;
            lru
        } else if let Some(slot) = self.free.pop() {
            self.slab[slot as usize].key = key;
            slot
        } else {
            self.slab.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            (self.slab.len() - 1) as u32
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        false
    }

    /// Whether `key` is cached, without changing recency.
    pub fn contains(&self, key: u32) -> bool {
        self.map.contains_key(&key)
    }

    /// Drops `key` from the cache — the write-invalidation hook: a block
    /// whose bytes were just rewritten must not be served as a (stale) cache
    /// hit. Returns whether the key was cached.
    pub fn remove(&mut self, key: u32) -> bool {
        let Some(slot) = self.map.remove(&key) else {
            return false;
        };
        self.unlink(slot);
        self.free.push(slot);
        true
    }

    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.slab[slot as usize];
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot as usize].prev = NIL;
        self.slab[slot as usize].next = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        self.slab[slot as usize].prev = NIL;
        self.slab[slot as usize].next = self.head;
        if self.head != NIL {
            self.slab[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

/// How many spare buffers a [`BufferPool`] retains. Reads are serviced one
/// block at a time, so steady state needs one buffer; a small cushion
/// absorbs callers that hold a [`BlockBuf`] across further reads.
const MAX_POOLED_BUFFERS: usize = 64;

/// A free list of reusable byte buffers for block reads.
///
/// Single-threaded by design (each worker owns its store, and the store
/// owns its pool), hence plain `RefCell`/`Cell` interior mutability behind
/// `&self` — the read path stays `&self` so one store can serve overlapping
/// borrows of in-memory blocks.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: RefCell<Vec<Vec<u8>>>,
    /// Buffers created because the free list was empty.
    allocations: Cell<u64>,
    /// Reads served by recycling a pooled buffer.
    reuses: Cell<u64>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zeroed buffer of exactly `len` bytes, recycling a pooled
    /// buffer when one is available.
    pub fn take(&self, len: usize) -> Vec<u8> {
        match self.free.borrow_mut().pop() {
            Some(mut buf) => {
                self.reuses.set(self.reuses.get() + 1);
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.allocations.set(self.allocations.get() + 1);
                vec![0u8; len]
            }
        }
    }

    /// Returns a buffer to the free list (dropped if the pool is full).
    pub fn put(&self, buf: Vec<u8>) {
        let mut free = self.free.borrow_mut();
        if free.len() < MAX_POOLED_BUFFERS {
            free.push(buf);
        }
    }

    /// Buffers created because no pooled buffer was free.
    pub fn allocations(&self) -> u64 {
        self.allocations.get()
    }

    /// Reads served by a recycled buffer instead of a fresh allocation.
    pub fn reuses(&self) -> u64 {
        self.reuses.get()
    }
}

/// A block's bytes on the read path: either borrowed straight out of an
/// in-memory store (zero copy) or held in a pooled buffer that returns to
/// its [`BufferPool`] on drop. Dereferences to `&[u8]`.
#[derive(Debug)]
pub enum BlockBuf<'a> {
    /// Bytes borrowed from the store itself (in-memory backend).
    Borrowed(&'a [u8]),
    /// Bytes in a buffer on loan from the store's pool (file backend).
    Pooled {
        /// The pool the buffer returns to on drop.
        pool: &'a BufferPool,
        /// The buffer itself (`Some` until drop takes it).
        buf: Option<Vec<u8>>,
    },
}

impl BlockBuf<'_> {
    /// Copies the bytes into an owned `Vec` (the compatibility path for
    /// callers that outlive the store borrow).
    pub fn to_vec(&self) -> Vec<u8> {
        self.deref().to_vec()
    }
}

impl Deref for BlockBuf<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            BlockBuf::Borrowed(bytes) => bytes,
            BlockBuf::Pooled { buf, .. } => buf.as_deref().expect("buffer present until drop"),
        }
    }
}

impl AsRef<[u8]> for BlockBuf<'_> {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for BlockBuf<'_> {
    fn drop(&mut self) {
        if let BlockBuf::Pooled { pool, buf } = self {
            if let Some(buf) = buf.take() {
                pool.put(buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_buffers() {
        let pool = BufferPool::new();
        let a = pool.take(16);
        assert_eq!(a.len(), 16);
        assert_eq!(pool.allocations(), 1);
        pool.put(a);
        let b = pool.take(32);
        assert_eq!(b.len(), 32);
        assert_eq!(b, vec![0u8; 32], "recycled buffers come back zeroed");
        assert_eq!(pool.allocations(), 1, "second take reused the buffer");
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn block_buf_returns_to_pool_on_drop() {
        let pool = BufferPool::new();
        {
            let buf = BlockBuf::Pooled {
                pool: &pool,
                buf: Some(pool.take(8)),
            };
            assert_eq!(buf.len(), 8);
        }
        let _again = pool.take(8);
        assert_eq!(pool.reuses(), 1, "dropped BlockBuf fed the free list");
        assert_eq!(pool.allocations(), 1);
    }

    #[test]
    fn borrowed_block_buf_derefs() {
        let bytes = [1u8, 2, 3];
        let buf = BlockBuf::Borrowed(&bytes);
        assert_eq!(&*buf, &[1, 2, 3]);
        assert_eq!(buf.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = LruCache::new(2);
        assert!(!c.touch(1));
        assert!(c.touch(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.touch(1);
        c.touch(2);
        c.touch(1); // 2 is now LRU
        c.touch(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = LruCache::new(0);
        for _ in 0..3 {
            assert!(!c.touch(7));
        }
        assert!(c.is_empty());
    }

    #[test]
    fn single_slot() {
        let mut c = LruCache::new(1);
        assert!(!c.touch(1));
        assert!(c.touch(1));
        assert!(!c.touch(2));
        assert!(!c.touch(1));
    }

    #[test]
    fn sequential_scan_larger_than_cache_never_hits() {
        let mut c = LruCache::new(4);
        for round in 0..3 {
            for k in 0..8u32 {
                assert!(!c.touch(k), "round {round}, key {k}");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = LruCache::new(8);
        for k in 0..8u32 {
            c.touch(k);
        }
        for round in 0..4 {
            for k in 0..8u32 {
                assert!(c.touch(k), "round {round}, key {k}");
            }
        }
    }

    #[test]
    fn remove_invalidates_and_recycles_slots() {
        let mut c = LruCache::new(2);
        c.touch(1);
        c.touch(2);
        assert!(c.remove(1));
        assert!(!c.contains(1));
        assert!(!c.remove(1), "double remove is a no-op");
        assert_eq!(c.len(), 1);
        // Re-touching a removed key is a miss again (slot recycled, not grown).
        assert!(!c.touch(1));
        assert_eq!(c.len(), 2);
        // Capacity still enforced: inserting a third key evicts the LRU (2).
        assert!(!c.touch(3));
        assert!(!c.contains(2));
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn remove_matches_reference_model() {
        // Same cross-check as below, with removes sprinkled in.
        let cap = 8;
        let mut fast = LruCache::new(cap);
        let mut slow: Vec<u32> = Vec::new(); // front = MRU
        let mut x = 777u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((x >> 33) % 24) as u32;
            if x.is_multiple_of(5) {
                let expect = slow.contains(&key);
                slow.retain(|&k| k != key);
                assert_eq!(fast.remove(key), expect, "remove {key}");
            } else {
                let expect_hit = slow.contains(&key);
                if expect_hit {
                    slow.retain(|&k| k != key);
                } else if slow.len() == cap {
                    slow.pop();
                }
                slow.insert(0, key);
                assert_eq!(fast.touch(key), expect_hit, "key {key}");
            }
            assert_eq!(fast.len(), slow.len());
        }
    }

    #[test]
    fn matches_reference_model() {
        // Cross-check against a naive Vec-based LRU on a pseudo-random trace.
        let cap = 16;
        let mut fast = LruCache::new(cap);
        let mut slow: Vec<u32> = Vec::new(); // front = MRU
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((x >> 33) % 48) as u32;
            let expect_hit = slow.contains(&key);
            if expect_hit {
                slow.retain(|&k| k != key);
            } else if slow.len() == cap {
                slow.pop();
            }
            slow.insert(0, key);
            assert_eq!(fast.touch(key), expect_hit, "key {key}");
        }
    }
}
