//! A fixed-capacity LRU set with O(1) touch/insert/evict.
//!
//! Models each worker's buffer cache of disk pages. Only page *identity* is
//! cached (hit/miss drives the disk time model); page bytes stay in the
//! worker's store.
//!
//! Implementation: an intrusive doubly-linked list over a slab of nodes plus
//! a key -> slot map. No unsafe code; links are slab indices.

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    key: u32,
    prev: u32,
    next: u32,
}

/// Fixed-capacity LRU set of `u32` keys.
#[derive(Debug)]
pub struct LruCache {
    map: HashMap<u32, u32>, // key -> slot
    slab: Vec<Node>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` keys. A capacity of zero
    /// is allowed and caches nothing (the paper's "raw disk I/O" mode).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most-recently-used on a hit. On a miss the
    /// key is inserted (evicting the least-recently-used key if full).
    /// Returns whether it was a hit.
    pub fn touch(&mut self, key: u32) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.unlink(slot);
            self.push_front(slot);
            return true;
        }
        // Miss: insert, evicting if needed.
        let slot = if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old_key = self.slab[lru as usize].key;
            self.map.remove(&old_key);
            self.slab[lru as usize].key = key;
            lru
        } else {
            self.slab.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            (self.slab.len() - 1) as u32
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        false
    }

    /// Whether `key` is cached, without changing recency.
    pub fn contains(&self, key: u32) -> bool {
        self.map.contains_key(&key)
    }

    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.slab[slot as usize];
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot as usize].prev = NIL;
        self.slab[slot as usize].next = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        self.slab[slot as usize].prev = NIL;
        self.slab[slot as usize].next = self.head;
        if self.head != NIL {
            self.slab[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = LruCache::new(2);
        assert!(!c.touch(1));
        assert!(c.touch(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.touch(1);
        c.touch(2);
        c.touch(1); // 2 is now LRU
        c.touch(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = LruCache::new(0);
        for _ in 0..3 {
            assert!(!c.touch(7));
        }
        assert!(c.is_empty());
    }

    #[test]
    fn single_slot() {
        let mut c = LruCache::new(1);
        assert!(!c.touch(1));
        assert!(c.touch(1));
        assert!(!c.touch(2));
        assert!(!c.touch(1));
    }

    #[test]
    fn sequential_scan_larger_than_cache_never_hits() {
        let mut c = LruCache::new(4);
        for round in 0..3 {
            for k in 0..8u32 {
                assert!(!c.touch(k), "round {round}, key {k}");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = LruCache::new(8);
        for k in 0..8u32 {
            c.touch(k);
        }
        for round in 0..4 {
            for k in 0..8u32 {
                assert!(c.touch(k), "round {round}, key {k}");
            }
        }
    }

    #[test]
    fn matches_reference_model() {
        // Cross-check against a naive Vec-based LRU on a pseudo-random trace.
        let cap = 16;
        let mut fast = LruCache::new(cap);
        let mut slow: Vec<u32> = Vec::new(); // front = MRU
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((x >> 33) % 48) as u32;
            let expect_hit = slow.contains(&key);
            if expect_hit {
                slow.retain(|&k| k != key);
            } else if slow.len() == cap {
                slow.pop();
            }
            slow.insert(0, key);
            assert_eq!(fast.touch(key), expect_hit, "key {key}");
        }
    }
}
