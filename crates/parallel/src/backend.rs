//! The worker-launch seam: how the engine turns a loaded [`WorkerState`]
//! into a running service loop.
//!
//! The engine builds one `WorkerState` per slot (store loaded, disks
//! modeled, faults armed) and one transport pair per slot (ring or
//! channel), then asks a [`WorkerBackend`] to put a service loop behind
//! the inbox. The default [`InProcessBackend`] spawns the PR 1 worker
//! thread — the single-node fast path, unchanged. A remote backend (see
//! the `pargrid-cluster` crate) instead spawns a *proxy* thread that
//! forwards each [`crate::message::ToWorker`] over a TCP connection to a
//! worker process and feeds the wire replies back into the engine's reply
//! channels.
//!
//! Everything above the inbox — sequence numbers, retransmit/backoff,
//! reply matching, dead-flag failure detection, replica failover, hedged
//! reads — is transport-agnostic and works identically over both
//! backends, which is the point: the coordinator's fault machinery was
//! built for lost messages and dead workers, and a TCP worker is just a
//! worker whose messages can actually be lost.

use crate::ring::WorkerInbox;
use crate::stats::WorkerCounters;
use crate::worker::{run_worker, WorkerState};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Launches the service loop for one worker slot.
///
/// Implementations receive the slot's fully-loaded [`WorkerState`] (the
/// in-process backend runs it directly; a remote backend uses its store as
/// the upload source for the worker process) and must consume `inbox`
/// until it closes or a [`crate::message::ToWorker::Shutdown`] arrives.
/// A backend that detects its worker is gone must set `counters.dead` so
/// the engine's failure detection and replica failover engage — the same
/// contract the in-process fail-stop path honors.
pub trait WorkerBackend: Send + Sync + std::fmt::Debug {
    /// Spawns the service loop for `slot`, returning its join handle.
    fn spawn_worker(
        &self,
        slot: usize,
        state: WorkerState,
        inbox: WorkerInbox,
        counters: Option<Arc<WorkerCounters>>,
    ) -> JoinHandle<()>;
}

/// The default backend: one OS thread per worker running
/// [`WorkerState::run`] in this process. This is the PR 1–8 engine,
/// byte-for-byte — the A/B baseline every remote deployment is measured
/// against.
#[derive(Clone, Copy, Debug, Default)]
pub struct InProcessBackend;

impl WorkerBackend for InProcessBackend {
    fn spawn_worker(
        &self,
        _slot: usize,
        state: WorkerState,
        inbox: WorkerInbox,
        counters: Option<Arc<WorkerCounters>>,
    ) -> JoinHandle<()> {
        run_worker(state, inbox, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use crate::message::ToWorker;
    use crate::ring::RequestRing;

    #[test]
    fn in_process_backend_spawns_a_joinable_worker() {
        let state = WorkerState::new(0, 0, DiskParams::default());
        let ring = Arc::new(RequestRing::new());
        let handle = InProcessBackend.spawn_worker(0, state, WorkerInbox::from(ring.clone()), None);
        ring.push(ToWorker::Shutdown).expect("push shutdown");
        handle.join().expect("worker joins");
    }
}
