//! Sharded lock-free request rings — the engine's fast dispatch path.
//!
//! PR 5's serving experiment showed the single-node throughput knee is set
//! by software overhead, not the simulated disks: every dispatch paid a
//! mutex + condvar round trip inside the channel stand-in. This module
//! replaces that hop with a bounded **MPSC ring** per worker (one shard per
//! worker, so shards never contend with each other), modeled on
//! [`pargrid_obs::EventRing`]'s claim-a-slot-with-`fetch_add` design but
//! extended with per-slot sequence numbers (a Vyukov-style bounded queue)
//! so slots are reusable and consumption is in dispatch order.
//!
//! Producers (coordinator-side sessions and runners) claim a slot with one
//! CAS and publish with one release store. The consumer (the worker thread)
//! spins briefly — covering the common case where the next request arrives
//! while the worker is still draining — and only then parks, so a hot
//! query loop never pays a futex wake-up on the dispatch path.
//!
//! The channel transport remains available behind
//! [`DispatchMode::Channel`], keeping the two paths A/B-benchmarkable
//! (`benches/hotpath.rs`, `BENCH_hotpath.json`).

use crate::message::ToWorker;
use crossbeam::channel::{Receiver, Sender, TryRecvError};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, Thread};
use std::time::Duration;

/// Which transport carries coordinator → worker messages.
///
/// Both transports carry the same [`ToWorker`] protocol and produce
/// byte-identical query results (property-tested in
/// `tests/dispatch_equivalence.rs`); they differ only in overhead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum DispatchMode {
    /// One bounded lock-free [`RequestRing`] per worker (the default):
    /// producers publish with a CAS + release store, the consumer spins
    /// briefly before parking.
    #[default]
    Ring,
    /// The original crossbeam-channel transport (mutex + condvar per hop).
    /// Kept as the A/B baseline and for embedders that want strictly
    /// unbounded queues.
    Channel,
}

/// How many times the consumer probes the ring before parking. Sized so a
/// worker draining back-to-back batches never parks between them, while an
/// idle worker reaches the (free) parked state in well under a millisecond.
const SPIN_PROBES: u32 = 256;

/// Effective probe count for this machine. Spinning only pays when a
/// producer can make progress *while* the consumer spins; on a single
/// hardware thread the spin loop just burns the producer's time slice, so
/// the consumer goes straight to the park protocol instead (one futex
/// wait/wake per message — still cheaper than a mutex + condvar hop).
fn spin_probes() -> u32 {
    static PROBES: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *PROBES.get_or_init(|| match thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN_PROBES,
        _ => 0,
    })
}

/// Upper bound on one park. The wake-up protocol below makes a lost unpark
/// vanishingly unlikely, but a bounded park turns "unlikely" into "at worst
/// this much added latency", which keeps the engine live under any
/// interleaving the memory model permits.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// Default slot count per ring. Deeper than any in-flight window the
/// engine produces (requests per worker per round are bounded by the
/// concurrent-run window); producers spin-wait on the full ring otherwise.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// One ring slot: a sequence word plus the (possibly uninitialized) value.
///
/// `seq == index` means free for the producer that claims position
/// `index`; `seq == index + 1` means published and ready for the consumer;
/// after consumption `seq` advances by the ring capacity, marking the slot
/// free for the next lap.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer single-consumer ring with close semantics.
///
/// The single-consumer contract is structural, not enforced: the engine
/// hands each ring's consumer side to exactly one worker thread (via
/// [`WorkerInbox`]). [`RequestRing::try_pop`]/[`RequestRing::recv`] must
/// only ever be called from that thread.
pub struct RequestRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next position a producer will claim.
    tail: AtomicUsize,
    /// Next position the consumer will read.
    head: AtomicUsize,
    /// Set by [`RequestRing::close`]; pushes fail afterwards.
    closed: AtomicBool,
    /// True while the consumer is parked (or about to park).
    parked: AtomicBool,
    /// True once `consumer` holds the consumer's thread handle. Written
    /// (release) only after the handle is in place, so producers that
    /// observe it (acquire) see a fully initialized handle.
    consumer_registered: AtomicBool,
    /// The consumer thread's handle. Written exactly once, by the consumer,
    /// before its first park; read-only ever after, so producers can wake
    /// without a lock.
    consumer: UnsafeCell<Option<Thread>>,
}

// SAFETY: values are transferred across threads through the slot protocol
// above — a slot's value is written by exactly one producer (the CAS
// winner) and read by the single consumer, with the `seq` release/acquire
// pair ordering the handoff.
unsafe impl<T: Send> Send for RequestRing<T> {}
unsafe impl<T: Send> Sync for RequestRing<T> {}

impl<T> RequestRing<T> {
    /// A ring with [`DEFAULT_RING_CAPACITY`] slots.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A ring with at least `capacity` slots (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        RequestRing {
            slots: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            parked: AtomicBool::new(false),
            consumer_registered: AtomicBool::new(false),
            consumer: UnsafeCell::new(None),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Messages currently queued (racy by nature; exact only when
    /// producers and consumer are quiescent).
    pub fn len(&self) -> usize {
        self.tail
            .load(Ordering::Relaxed)
            .saturating_sub(self.head.load(Ordering::Relaxed))
    }

    /// True when no messages are queued (same caveat as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Marks the ring closed and wakes the consumer. Subsequent pushes
    /// fail, returning the message to the caller (mirroring a channel send
    /// to a dropped receiver); the consumer may still drain what was
    /// already published.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.wake_consumer();
    }

    /// Publishes `value`, spinning while the ring is full. Fails — handing
    /// `value` back — once the ring is closed, exactly like sending on a
    /// channel whose receiver is gone.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut full_spins = 0u32;
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(value);
            }
            let tail = self.tail.load(Ordering::Relaxed);
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = (seq as isize).wrapping_sub(tail as isize);
            if diff == 0 {
                if self
                    .tail
                    .compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    // SAFETY: the CAS makes this producer the slot's sole
                    // writer for this lap; the consumer will not read until
                    // the release store below.
                    unsafe { (*slot.value.get()).write(value) };
                    slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                    self.wake_consumer();
                    return Ok(());
                }
            } else if diff < 0 {
                // Full: the consumer hasn't freed this slot yet. Spin, then
                // yield — the consumer drains whole batches, so fullness is
                // short-lived.
                full_spins += 1;
                if full_spins < 64 {
                    std::hint::spin_loop();
                } else {
                    thread::yield_now();
                }
            }
            // diff > 0: another producer claimed this position; retry.
        }
    }

    /// Consumer-only: takes the next message if one is ready.
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[head & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == head.wrapping_add(1) {
            self.head.store(head.wrapping_add(1), Ordering::Relaxed);
            // SAFETY: the acquire load above saw the producer's release
            // store, so the value is initialized and the producer is done
            // with the slot.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            slot.seq
                .store(head.wrapping_add(self.slots.len()), Ordering::Release);
            Some(value)
        } else {
            None
        }
    }

    /// Consumer-only: blocks for the next message. Returns `None` once the
    /// ring is closed *and* drained.
    ///
    /// Spins [`spin_probes`] times first — a producer dispatching while the
    /// worker is between batches is caught here without any syscall (and on
    /// a single hardware thread the spin phase is skipped entirely) — then
    /// parks under the `parked` flag protocol: set the flag, re-check,
    /// park. A producer that observes the flag clears it and unparks us;
    /// the bounded [`PARK_TIMEOUT`] covers the residual race.
    pub fn recv(&self) -> Option<T> {
        loop {
            // Fast path: a message is already published.
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.closed.load(Ordering::Acquire) {
                // Closed: drain anything published before the close.
                return self.try_pop();
            }
            for _ in 0..spin_probes() {
                if let Some(v) = self.try_pop() {
                    return Some(v);
                }
                if self.closed.load(Ordering::Acquire) {
                    return self.try_pop();
                }
                std::hint::spin_loop();
            }
            if !self.consumer_registered.load(Ordering::Relaxed) {
                // SAFETY: single-consumer contract — this thread is the only
                // writer, and producers only read after the release store
                // below publishes the handle.
                unsafe { *self.consumer.get() = Some(thread::current()) };
                self.consumer_registered.store(true, Ordering::Release);
            }
            self.parked.store(true, Ordering::SeqCst);
            if let Some(v) = self.try_pop() {
                self.parked.store(false, Ordering::SeqCst);
                return Some(v);
            }
            if self.closed.load(Ordering::SeqCst) {
                self.parked.store(false, Ordering::SeqCst);
                return self.try_pop();
            }
            thread::park_timeout(PARK_TIMEOUT);
            self.parked.store(false, Ordering::SeqCst);
        }
    }

    /// Unparks the consumer if it is parked (or about to park).
    fn wake_consumer(&self) {
        if self.parked.swap(false, Ordering::SeqCst)
            && self.consumer_registered.load(Ordering::Acquire)
        {
            // SAFETY: the handle was published by the release store in
            // `recv` and is never written again, so a shared read is safe
            // from any producer.
            if let Some(t) = unsafe { &*self.consumer.get() }.as_ref() {
                t.unpark();
            }
        }
    }
}

impl<T> Default for RequestRing<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for RequestRing<T> {
    fn drop(&mut self) {
        // Sole owner now: drop any values published but never consumed.
        while self.try_pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for RequestRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

/// A failed dispatch: the worker's transport is gone (thread exited,
/// channel receiver dropped, or ring closed). The undelivered message is
/// handed back so the coordinator can fail the requests over to replicas.
#[derive(Debug)]
pub struct DispatchError(pub ToWorker);

/// The coordinator's sending end of one worker's transport.
#[derive(Clone, Debug)]
pub enum WorkerOutbox {
    /// Channel transport ([`DispatchMode::Channel`]).
    Channel(Sender<ToWorker>),
    /// Ring transport ([`DispatchMode::Ring`]).
    Ring(Arc<RequestRing<ToWorker>>),
}

impl WorkerOutbox {
    /// Sends one message, returning it on failure (dead worker).
    pub fn send(&self, msg: ToWorker) -> Result<(), DispatchError> {
        match self {
            WorkerOutbox::Channel(tx) => tx.send(msg).map_err(|e| DispatchError(e.0)),
            WorkerOutbox::Ring(ring) => ring.push(msg).map_err(DispatchError),
        }
    }
}

/// The worker's receiving end of its transport. Closes the ring when
/// dropped (on any worker exit path, including panics), so coordinator
/// pushes start failing exactly when channel sends would.
#[derive(Debug)]
pub enum WorkerInbox {
    /// Channel transport ([`DispatchMode::Channel`]).
    Channel(Receiver<ToWorker>),
    /// Ring transport ([`DispatchMode::Ring`]).
    Ring(Arc<RequestRing<ToWorker>>),
}

impl WorkerInbox {
    /// Blocks for the next message; `None` once the transport is closed
    /// and drained.
    pub fn recv(&self) -> Option<ToWorker> {
        match self {
            WorkerInbox::Channel(rx) => rx.recv().ok(),
            WorkerInbox::Ring(ring) => ring.recv(),
        }
    }

    /// Takes an already-queued message, if any.
    pub fn try_recv(&self) -> Option<ToWorker> {
        match self {
            WorkerInbox::Channel(rx) => match rx.try_recv() {
                Ok(msg) => Some(msg),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
            },
            WorkerInbox::Ring(ring) => ring.try_pop(),
        }
    }
}

impl From<Receiver<ToWorker>> for WorkerInbox {
    fn from(rx: Receiver<ToWorker>) -> Self {
        WorkerInbox::Channel(rx)
    }
}

impl From<Arc<RequestRing<ToWorker>>> for WorkerInbox {
    fn from(ring: Arc<RequestRing<ToWorker>>) -> Self {
        WorkerInbox::Ring(ring)
    }
}

impl Drop for WorkerInbox {
    fn drop(&mut self) {
        if let WorkerInbox::Ring(ring) = self {
            ring.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fifo_single_producer() {
        let ring: RequestRing<u64> = RequestRing::with_capacity(8);
        for i in 0..8 {
            ring.push(i).expect("push");
        }
        for i in 0..8 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up_and_slots_are_reusable() {
        let ring: RequestRing<u64> = RequestRing::with_capacity(3);
        assert_eq!(ring.capacity(), 4);
        // Several laps around the ring exercise the seq-advance protocol.
        for lap in 0..5u64 {
            for i in 0..4 {
                ring.push(lap * 4 + i).expect("push");
            }
            for i in 0..4 {
                assert_eq!(ring.try_pop(), Some(lap * 4 + i));
            }
        }
    }

    #[test]
    fn push_after_close_returns_the_message() {
        let ring: RequestRing<String> = RequestRing::new();
        ring.push("a".to_string()).expect("open push");
        ring.close();
        let bounced = ring.push("b".to_string()).expect_err("closed push");
        assert_eq!(bounced, "b");
        // Already-published messages still drain.
        assert_eq!(ring.recv(), Some("a".to_string()));
        assert_eq!(ring.recv(), None);
    }

    #[test]
    fn multi_producer_totals_survive() {
        let ring: Arc<RequestRing<u64>> = Arc::new(RequestRing::with_capacity(64));
        let n_producers = 4;
        let per = 2_000u64;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let r = Arc::clone(&ring);
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    r.push(p * per + i).expect("push");
                }
            }));
        }
        let consumer = {
            let r = Arc::clone(&ring);
            thread::spawn(move || {
                let mut sum = 0u64;
                let mut count = 0u64;
                while count < n_producers * per {
                    if let Some(v) = r.recv() {
                        sum += v;
                        count += 1;
                    }
                }
                sum
            })
        };
        for h in handles {
            h.join().expect("producer");
        }
        let total = n_producers * per;
        let expected: u64 = (0..total).sum();
        assert_eq!(consumer.join().expect("consumer"), expected);
    }

    #[test]
    fn blocking_recv_wakes_on_push() {
        let ring: Arc<RequestRing<u64>> = Arc::new(RequestRing::new());
        let r = Arc::clone(&ring);
        let consumer = thread::spawn(move || r.recv());
        // Give the consumer time to pass the spin phase and park.
        thread::sleep(Duration::from_millis(20));
        ring.push(7).expect("push");
        assert_eq!(consumer.join().expect("join"), Some(7));
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let ring: Arc<RequestRing<u64>> = Arc::new(RequestRing::new());
        let r = Arc::clone(&ring);
        let consumer = thread::spawn(move || r.recv());
        thread::sleep(Duration::from_millis(20));
        ring.close();
        assert_eq!(consumer.join().expect("join"), None);
    }

    #[test]
    fn drop_releases_unconsumed_values() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let ring: RequestRing<Counted> = RequestRing::with_capacity(8);
            for _ in 0..5 {
                ring.push(Counted).expect("push");
            }
            drop(ring.try_pop()); // one consumed
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }
}
