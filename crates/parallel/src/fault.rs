//! Deterministic worker fault injection.
//!
//! A [`FaultPlan`] describes failures to inject into an engine's workers,
//! wired through [`crate::EngineConfig::faults`]. Two families:
//!
//! * **fail-stop** ([`FaultKind::DieAfterBlocks`], [`FaultKind::DieAtQuery`])
//!   — the worker thread marks itself dead in the shared liveness table and
//!   exits *without replying*, stranding every in-flight request exactly the
//!   way a crashed node would. The coordinator detects the death via its
//!   per-request reply timeout (or the published dead flag) and retries the
//!   affected buckets against their replicas.
//! * **poison** ([`FaultKind::PoisonQuery`]) — the worker stays alive but
//!   answers the matching request with an error reply instead of records,
//!   exercising the same error path a corrupt/unreadable block takes.
//!
//! All triggers key off deterministic quantities (lifetime blocks read,
//! engine-assigned query sequence numbers), so injected failures reproduce
//! exactly across runs.

/// What goes wrong on one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail-stop once the worker's lifetime blocks-read count reaches `n`,
    /// checked before servicing each batch (`DieAfterBlocks(0)` dies on the
    /// first message it receives).
    DieAfterBlocks(u64),
    /// Fail-stop upon receiving any request whose engine-assigned query
    /// sequence number is `>= q`.
    DieAtQuery(u64),
    /// Reply with an error (no records) to requests of query number `q`,
    /// after disk time has been charged — the poison-message hook.
    PoisonQuery(u64),
}

/// One worker's injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerFault {
    /// Worker index the fault applies to.
    pub worker: usize,
    /// The failure mode.
    pub kind: FaultKind,
}

/// A set of injected faults for an engine (empty by default).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injected faults.
    pub faults: Vec<WorkerFault>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kills workers `0..k` on their first received request — the
    /// "K failed workers" sweep configuration.
    pub fn kill_first(k: usize) -> Self {
        let mut plan = Self::default();
        for w in 0..k {
            plan = plan.with_kill(w);
        }
        plan
    }

    /// Adds a fail-stop of `worker` on its first received request.
    pub fn with_kill(mut self, worker: usize) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::DieAtQuery(0),
        });
        self
    }

    /// Adds a fail-stop of `worker` once it has read `blocks` blocks.
    pub fn with_kill_after_blocks(mut self, worker: usize, blocks: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::DieAfterBlocks(blocks),
        });
        self
    }

    /// Adds a fail-stop of `worker` at query number `query`.
    pub fn with_kill_at_query(mut self, worker: usize, query: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::DieAtQuery(query),
        });
        self
    }

    /// Adds a poison reply from `worker` for query number `query`.
    pub fn with_poison(mut self, worker: usize, query: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::PoisonQuery(query),
        });
        self
    }

    /// Whether the plan contains any fault.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault kinds applying to one worker.
    pub fn for_worker(&self, worker: usize) -> Vec<FaultKind> {
        self.faults
            .iter()
            .filter(|f| f.worker == worker)
            .map(|f| f.kind)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::none()
            .with_kill(3)
            .with_kill_after_blocks(1, 10)
            .with_poison(2, 5);
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.for_worker(3), vec![FaultKind::DieAtQuery(0)]);
        assert_eq!(plan.for_worker(1), vec![FaultKind::DieAfterBlocks(10)]);
        assert_eq!(plan.for_worker(2), vec![FaultKind::PoisonQuery(5)]);
        assert!(plan.for_worker(0).is_empty());
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn kill_first_covers_prefix() {
        let plan = FaultPlan::kill_first(2);
        assert_eq!(plan.for_worker(0), vec![FaultKind::DieAtQuery(0)]);
        assert_eq!(plan.for_worker(1), vec![FaultKind::DieAtQuery(0)]);
        assert!(plan.for_worker(2).is_empty());
    }
}
