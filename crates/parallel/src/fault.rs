//! Deterministic worker fault injection.
//!
//! A [`FaultPlan`] describes failures to inject into an engine's workers,
//! wired through [`crate::EngineConfig::faults`]. Fault families:
//!
//! * **fail-stop** ([`FaultKind::DieAfterBlocks`], [`FaultKind::DieAtQuery`])
//!   — the worker thread marks itself dead in the shared liveness table and
//!   exits *without replying*, stranding every in-flight request exactly the
//!   way a crashed node would. The coordinator detects the death via its
//!   per-request reply timeout (or the published dead flag) and retries the
//!   affected buckets against their replicas.
//! * **poison** ([`FaultKind::PoisonQuery`]) — the worker stays alive but
//!   answers the matching request with an error reply instead of records,
//!   exercising the same error path a corrupt/unreadable block takes.
//! * **channel faults** ([`FaultKind::DropRequest`],
//!   [`FaultKind::DuplicateRequest`], [`FaultKind::DelayReply`],
//!   [`FaultKind::ReorderReplies`]) — gray message failures: requests lost,
//!   serviced twice, answered late, or answered out of order. The engine
//!   answers with per-request sequence numbers, worker-side dedup, and
//!   bounded retransmits under the per-query deadline budget.
//! * **corruption** ([`FaultKind::CorruptBlock`]) — flips a byte of one
//!   stored block *without* updating its checksum, so the next read fails
//!   verification; the coordinator serves the affected buckets from the
//!   replica and scrubs the bad block back to health.
//! * **straggler** ([`FaultKind::SlowDisk`]) — multiplies every disk service
//!   time on the worker, turning it into a tail-latency straggler; the
//!   coordinator hedges slow primaries against their replicas.
//!
//! All triggers key off deterministic quantities (lifetime blocks read,
//! engine-assigned query sequence numbers), so injected failures reproduce
//! exactly across runs. [`FaultPlan::chaos`] composes a
//! randomized-but-reproducible schedule from a seed.

/// What goes wrong on one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail-stop once the worker's lifetime blocks-read count reaches `n`,
    /// checked before servicing each batch (`DieAfterBlocks(0)` dies on the
    /// first message it receives).
    DieAfterBlocks(u64),
    /// Fail-stop upon receiving any request whose engine-assigned query
    /// sequence number is `>= q`.
    DieAtQuery(u64),
    /// Reply with an error (no records) to requests of query number `q`,
    /// after disk time has been charged — the poison-message hook.
    PoisonQuery(u64),
    /// Silently discard the first `times` deliveries of requests for query
    /// number `query`: no service, no reply — a lost message. Coordinator
    /// retransmits (fresh deliveries of the same sequence number) get
    /// through once the budget is spent.
    DropRequest {
        /// Query number whose requests are dropped.
        query: u64,
        /// How many deliveries to discard before behaving normally.
        times: u32,
    },
    /// Service requests of query number `q` normally but send the reply
    /// twice — a duplicated message. The coordinator's sequence-number
    /// matching must merge it exactly once.
    DuplicateRequest(u64),
    /// Hold every reply of the batch containing query number `query` back
    /// for `delay_ms` real milliseconds — a late message, long enough to
    /// overlap the coordinator's retransmit timer (whose retransmits the
    /// worker must then dedup).
    DelayReply {
        /// Query number that triggers the delay.
        query: u64,
        /// Real-time delay before the batch's replies are sent.
        delay_ms: u64,
    },
    /// Emit the replies of any batch containing a request with query number
    /// `>= q` in reverse order — out-of-order delivery, absorbed by the
    /// coordinator's sequence-number (not positional) reply matching.
    ReorderReplies(u64),
    /// Flip a byte of local block `b` (if present) before the first batch is
    /// serviced, without updating its checksum — silent block corruption,
    /// caught by the store's verify-on-read and repaired from the replica.
    CorruptBlock(u32),
    /// Multiply every disk service time on this worker by `factor` — a
    /// straggler disk. Answered by hedged reads when hedging is enabled.
    SlowDisk(u64),
}

/// One worker's injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerFault {
    /// Worker index the fault applies to.
    pub worker: usize,
    /// The failure mode.
    pub kind: FaultKind,
}

/// A set of injected faults for an engine (empty by default).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injected faults.
    pub faults: Vec<WorkerFault>,
}

/// SplitMix64 step: the chaos schedule's deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kills workers `0..k` on their first received request — the
    /// "K failed workers" sweep configuration.
    pub fn kill_first(k: usize) -> Self {
        let mut plan = Self::default();
        for w in 0..k {
            plan = plan.with_kill(w);
        }
        plan
    }

    /// Adds a fail-stop of `worker` on its first received request.
    pub fn with_kill(mut self, worker: usize) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::DieAtQuery(0),
        });
        self
    }

    /// Adds a fail-stop of `worker` once it has read `blocks` blocks.
    pub fn with_kill_after_blocks(mut self, worker: usize, blocks: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::DieAfterBlocks(blocks),
        });
        self
    }

    /// Adds a fail-stop of `worker` at query number `query`.
    pub fn with_kill_at_query(mut self, worker: usize, query: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::DieAtQuery(query),
        });
        self
    }

    /// Adds a poison reply from `worker` for query number `query`.
    pub fn with_poison(mut self, worker: usize, query: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::PoisonQuery(query),
        });
        self
    }

    /// Adds a lost-request fault: `worker` discards the first `times`
    /// deliveries of query `query`'s requests.
    pub fn with_drop(mut self, worker: usize, query: u64, times: u32) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::DropRequest { query, times },
        });
        self
    }

    /// Adds a duplicated-reply fault for query `query` on `worker`.
    pub fn with_duplicate(mut self, worker: usize, query: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::DuplicateRequest(query),
        });
        self
    }

    /// Adds a delayed-reply fault: `worker` holds the replies of query
    /// `query`'s batch for `delay_ms` real milliseconds.
    pub fn with_delay(mut self, worker: usize, query: u64, delay_ms: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::DelayReply { query, delay_ms },
        });
        self
    }

    /// Adds a reply-reordering fault on `worker` from query `from_query` on.
    pub fn with_reorder(mut self, worker: usize, from_query: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::ReorderReplies(from_query),
        });
        self
    }

    /// Adds silent corruption of `worker`'s local block `block`.
    pub fn with_corrupt_block(mut self, worker: usize, block: u32) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::CorruptBlock(block),
        });
        self
    }

    /// Adds a straggler fault: `worker`'s disks run `factor`× slower.
    pub fn with_slow_disk(mut self, worker: usize, factor: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::SlowDisk(factor),
        });
        self
    }

    /// Composes a randomized-but-reproducible hostile-environment schedule:
    /// `events` faults drawn from every family (drops, duplicates, delays,
    /// reorders, corruption, stragglers, poison, fail-stops), spread over
    /// `n_workers` workers and `n_queries` query numbers.
    ///
    /// Deterministic: the same `(seed, n_workers, n_queries, events)` always
    /// yields the same plan. Fail-stops are rationed to **one** per
    /// schedule: chained declustering guarantees a live copy of every
    /// bucket under any single failure, but its least-loaded fallback can
    /// scatter replicas, so no pair of kills is provably safe. The draw
    /// that would have been a second kill becomes a poison instead; the
    /// message, timing, and corruption families supply the rest of the
    /// hostility.
    pub fn chaos(seed: u64, n_workers: usize, n_queries: u64, events: usize) -> Self {
        assert!(n_workers >= 1, "chaos needs at least one worker");
        let mut state = seed ^ 0xC3A0_5C3A_05C3_A05C;
        let mut plan = Self::default();
        let mut killed: Vec<usize> = Vec::new();
        let max_kills = 1;
        for _ in 0..events {
            let worker = (splitmix64(&mut state) % n_workers as u64) as usize;
            let query = splitmix64(&mut state) % n_queries.max(1);
            plan = match splitmix64(&mut state) % 8 {
                0 => plan.with_drop(worker, query, 1 + (splitmix64(&mut state) % 2) as u32),
                1 => plan.with_duplicate(worker, query),
                2 => plan.with_delay(worker, query, 20 + splitmix64(&mut state) % 40),
                3 => plan.with_reorder(worker, query),
                4 => plan.with_corrupt_block(worker, (splitmix64(&mut state) % 8) as u32),
                5 => plan.with_slow_disk(worker, 8 + splitmix64(&mut state) % 24),
                6 => plan.with_poison(worker, query),
                _ => {
                    // Fail-stop, rationed: fall back to poison once the
                    // kill budget is spent, so the schedule never takes
                    // out both copies of a bucket.
                    if killed.len() >= max_kills {
                        plan.with_poison(worker, query)
                    } else {
                        killed.push(worker);
                        plan.with_kill_at_query(worker, query)
                    }
                }
            };
        }
        plan
    }

    /// Whether the plan contains any fault.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault kinds applying to one worker.
    pub fn for_worker(&self, worker: usize) -> Vec<FaultKind> {
        self.faults
            .iter()
            .filter(|f| f.worker == worker)
            .map(|f| f.kind)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::none()
            .with_kill(3)
            .with_kill_after_blocks(1, 10)
            .with_poison(2, 5);
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.for_worker(3), vec![FaultKind::DieAtQuery(0)]);
        assert_eq!(plan.for_worker(1), vec![FaultKind::DieAfterBlocks(10)]);
        assert_eq!(plan.for_worker(2), vec![FaultKind::PoisonQuery(5)]);
        assert!(plan.for_worker(0).is_empty());
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn kill_first_covers_prefix() {
        let plan = FaultPlan::kill_first(2);
        assert_eq!(plan.for_worker(0), vec![FaultKind::DieAtQuery(0)]);
        assert_eq!(plan.for_worker(1), vec![FaultKind::DieAtQuery(0)]);
        assert!(plan.for_worker(2).is_empty());
    }

    #[test]
    fn channel_fault_builders_compose() {
        let plan = FaultPlan::none()
            .with_drop(0, 3, 2)
            .with_duplicate(1, 4)
            .with_delay(2, 5, 60)
            .with_reorder(3, 0)
            .with_corrupt_block(4, 7)
            .with_slow_disk(5, 16);
        assert_eq!(
            plan.for_worker(0),
            vec![FaultKind::DropRequest { query: 3, times: 2 }]
        );
        assert_eq!(plan.for_worker(1), vec![FaultKind::DuplicateRequest(4)]);
        assert_eq!(
            plan.for_worker(2),
            vec![FaultKind::DelayReply {
                query: 5,
                delay_ms: 60
            }]
        );
        assert_eq!(plan.for_worker(3), vec![FaultKind::ReorderReplies(0)]);
        assert_eq!(plan.for_worker(4), vec![FaultKind::CorruptBlock(7)]);
        assert_eq!(plan.for_worker(5), vec![FaultKind::SlowDisk(16)]);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let a = FaultPlan::chaos(42, 16, 200, 12);
        let b = FaultPlan::chaos(42, 16, 200, 12);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 12);
        let c = FaultPlan::chaos(43, 16, 200, 12);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn chaos_rations_fail_stops() {
        for seed in 0..20u64 {
            let plan = FaultPlan::chaos(seed, 8, 100, 40);
            let kills: Vec<usize> = plan
                .faults
                .iter()
                .filter(|f| {
                    matches!(
                        f.kind,
                        FaultKind::DieAtQuery(_) | FaultKind::DieAfterBlocks(_)
                    )
                })
                .map(|f| f.worker)
                .collect();
            assert!(
                kills.len() <= 1,
                "seed {seed}: a chained-declustered engine only tolerates \
                 one kill with certainty, got {kills:?}"
            );
        }
    }

    #[test]
    fn chaos_covers_multiple_fault_families() {
        let plan = FaultPlan::chaos(7, 16, 300, 64);
        let families: std::collections::HashSet<u8> = plan
            .faults
            .iter()
            .map(|f| match f.kind {
                FaultKind::DieAfterBlocks(_) | FaultKind::DieAtQuery(_) => 0,
                FaultKind::PoisonQuery(_) => 1,
                FaultKind::DropRequest { .. } => 2,
                FaultKind::DuplicateRequest(_) => 3,
                FaultKind::DelayReply { .. } => 4,
                FaultKind::ReorderReplies(_) => 5,
                FaultKind::CorruptBlock(_) => 6,
                FaultKind::SlowDisk(_) => 7,
            })
            .collect();
        assert!(
            families.len() >= 6,
            "64 events should span most families, got {families:?}"
        );
    }
}
