//! Coordinator <-> worker message protocol.

use pargrid_geom::Rect;
use pargrid_gridfile::Record;

/// Messages the coordinator sends to a worker.
#[derive(Debug)]
pub enum ToWorker {
    /// Read the given blocks, filter records against the query box, reply.
    Read {
        /// Query sequence number (echoed in the reply).
        query_id: u64,
        /// Block ids on this worker's disk.
        blocks: Vec<u32>,
        /// The range query (closed box) records must satisfy.
        query: Rect,
    },
    /// Terminate the worker loop.
    Shutdown,
}

/// A worker's reply to one `Read`.
#[derive(Debug)]
pub struct FromWorker {
    /// Echo of the request's query id.
    pub query_id: u64,
    /// Which worker replied.
    pub worker_id: usize,
    /// Blocks requested of this worker for the query.
    pub blocks_requested: u64,
    /// How many of those were buffer-cache hits.
    pub cache_hits: u64,
    /// Virtual disk time consumed (microseconds).
    pub disk_us: u64,
    /// Virtual CPU time for decoding and filtering (microseconds).
    pub cpu_us: u64,
    /// The qualifying records.
    pub records: Vec<Record>,
}
