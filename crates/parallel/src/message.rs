//! Coordinator <-> worker message protocol.
//!
//! Replies are routed through a per-request `reply` channel rather than one
//! global coordinator channel, so any number of clients can have queries in
//! flight concurrently: each [`crate::engine::QuerySession`] (and each
//! concurrent-run round) owns its own reply channel and workers simply
//! answer to wherever the request came from.
//!
//! Every dispatch carries an engine-global **sequence number** (`seq`),
//! echoed in the reply. The coordinator matches replies to outstanding
//! requests by `seq` — not by arrival order — so duplicated, delayed, or
//! reordered replies cannot be mis-attributed; and a retransmit of a
//! possibly-lost request reuses the original `seq`, so the worker can dedup
//! redeliveries of work it already performed.

use crossbeam::channel::Sender;
use pargrid_geom::Rect;
use pargrid_gridfile::Record;

/// Scheduling class of a request within a worker's batch.
///
/// When a worker drains its queue into one elevator pass, interactive
/// requests are serviced in a first pass and batch requests in a second, so
/// a long analytical scan cannot delay a short interactive query that is
/// already queued.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueryPriority {
    /// Serviced first (sessions default to this).
    #[default]
    Interactive,
    /// Serviced after all interactive requests in the same batch.
    Batch,
}

/// One query's block requests for one worker.
#[derive(Clone, Debug)]
pub struct ReadRequest {
    /// Query sequence number (echoed in the reply).
    pub query_id: u64,
    /// Engine-global dispatch sequence number, echoed in the reply. Unique
    /// per logical request: a retransmit reuses the seq (the worker dedups
    /// it), while a failover or hedge of the same query gets a fresh one.
    pub seq: u64,
    /// Block ids on this worker's disk.
    pub blocks: Vec<u32>,
    /// The range query (closed box) records must satisfy.
    pub query: Rect,
    /// Where to send the [`FromWorker`] reply.
    pub reply: Sender<FromWorker>,
    /// Scheduling class (interactive requests are serviced before batch
    /// requests within one elevator pass).
    pub priority: QueryPriority,
}

/// Messages the coordinator sends to a worker.
#[derive(Debug)]
pub enum ToWorker {
    /// Service the given requests as one batch: all blocks of all requests
    /// go through the disks in one elevator (sorted) pass, but virtual time
    /// and cache hits are accounted per request. The worker additionally
    /// drains any further `Process` messages already queued before starting
    /// the pass, so concurrent sessions batch together naturally.
    Process(Vec<ReadRequest>),
    /// Read raw block bytes (no decoding, no filtering) for the repair
    /// path: the coordinator fetches a healthy replica's copy of corrupted
    /// blocks. Blocks that are missing or fail their own checksum come back
    /// as `None`.
    FetchRaw {
        /// Local block ids to read.
        blocks: Vec<u32>,
        /// Where to send the [`RawBlocks`] reply.
        reply: Sender<RawBlocks>,
    },
    /// Overwrite local blocks with the given bytes (recomputing stored
    /// checksums) — the second half of a scrub: healthy replica bytes
    /// replace a corrupted copy.
    WriteRaw {
        /// `(local block id, bytes)` pairs to overwrite.
        blocks: Vec<(u32, Vec<u8>)>,
    },
    /// Terminate the worker loop.
    Shutdown,
}

/// Raw block bytes answered to a [`ToWorker::FetchRaw`].
#[derive(Debug)]
pub struct RawBlocks {
    /// Which worker replied.
    pub worker_id: usize,
    /// `(local block id, bytes)` in request order; `None` when the block is
    /// missing or fails its own checksum (a corrupt copy is never served as
    /// repair material).
    pub blocks: Vec<(u32, Option<Vec<u8>>)>,
}

/// A worker's reply to one [`ReadRequest`].
#[derive(Clone, Debug)]
pub struct FromWorker {
    /// Echo of the request's query id.
    pub query_id: u64,
    /// Echo of the request's dispatch sequence number — what the
    /// coordinator matches on.
    pub seq: u64,
    /// Which worker replied.
    pub worker_id: usize,
    /// Blocks requested of this worker for the query.
    pub blocks_requested: u64,
    /// How many of those were buffer-cache hits.
    pub cache_hits: u64,
    /// Virtual disk time consumed by this query's blocks (microseconds).
    pub disk_us: u64,
    /// Virtual CPU time for decoding and filtering (microseconds).
    pub cpu_us: u64,
    /// The qualifying records.
    pub records: Vec<Record>,
    /// Local block ids that failed checksum verification while serving this
    /// request. The coordinator repairs them from the replica copy (scrub).
    pub corrupt_blocks: Vec<u32>,
    /// Set when the worker could not serve the request (unreadable block,
    /// injected poison). `records` is empty; disk time already spent stays
    /// charged. The coordinator retries the affected buckets against their
    /// replicas, if any.
    pub error: Option<String>,
}
