//! Coordinator <-> worker message protocol.
//!
//! Replies are routed through a per-request `reply` channel rather than one
//! global coordinator channel, so any number of clients can have queries in
//! flight concurrently: each [`crate::engine::QuerySession`] (and each
//! concurrent-run round) owns its own reply channel and workers simply
//! answer to wherever the request came from.

use crossbeam::channel::Sender;
use pargrid_geom::Rect;
use pargrid_gridfile::Record;

/// Scheduling class of a request within a worker's batch.
///
/// When a worker drains its queue into one elevator pass, interactive
/// requests are serviced in a first pass and batch requests in a second, so
/// a long analytical scan cannot delay a short interactive query that is
/// already queued.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueryPriority {
    /// Serviced first (sessions default to this).
    #[default]
    Interactive,
    /// Serviced after all interactive requests in the same batch.
    Batch,
}

/// One query's block requests for one worker.
#[derive(Debug)]
pub struct ReadRequest {
    /// Query sequence number (echoed in the reply).
    pub query_id: u64,
    /// Block ids on this worker's disk.
    pub blocks: Vec<u32>,
    /// The range query (closed box) records must satisfy.
    pub query: Rect,
    /// Where to send the [`FromWorker`] reply.
    pub reply: Sender<FromWorker>,
    /// Scheduling class (interactive requests are serviced before batch
    /// requests within one elevator pass).
    pub priority: QueryPriority,
}

/// Messages the coordinator sends to a worker.
#[derive(Debug)]
pub enum ToWorker {
    /// Service the given requests as one batch: all blocks of all requests
    /// go through the disks in one elevator (sorted) pass, but virtual time
    /// and cache hits are accounted per request. The worker additionally
    /// drains any further `Process` messages already queued before starting
    /// the pass, so concurrent sessions batch together naturally.
    Process(Vec<ReadRequest>),
    /// Terminate the worker loop.
    Shutdown,
}

/// A worker's reply to one [`ReadRequest`].
#[derive(Debug)]
pub struct FromWorker {
    /// Echo of the request's query id.
    pub query_id: u64,
    /// Which worker replied.
    pub worker_id: usize,
    /// Blocks requested of this worker for the query.
    pub blocks_requested: u64,
    /// How many of those were buffer-cache hits.
    pub cache_hits: u64,
    /// Virtual disk time consumed by this query's blocks (microseconds).
    pub disk_us: u64,
    /// Virtual CPU time for decoding and filtering (microseconds).
    pub cpu_us: u64,
    /// The qualifying records.
    pub records: Vec<Record>,
    /// Set when the worker could not serve the request (unreadable block,
    /// injected poison). `records` is empty; disk time already spent stays
    /// charged. The coordinator retries the affected buckets against their
    /// replicas, if any.
    pub error: Option<String>,
}
