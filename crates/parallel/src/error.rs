//! Typed errors for the parallel engine and its block store.
//!
//! Part of the workspace-wide error unification: every crate's failures
//! are `#[non_exhaustive]` enums implementing [`std::error::Error`] +
//! [`std::fmt::Display`], re-exported from the crate's `prelude` (here,
//! alongside `pargrid_gridfile::PersistError` and `pargrid_net`'s
//! `WireError`/`FrameError`). `#[non_exhaustive]` keeps adding variants a
//! minor change, so downstream `match`es must carry a wildcard arm.

use std::error::Error;
use std::fmt;
use std::io;

/// A block-store read or write failure.
///
/// [`crate::store::BlockStore::read_block`] reports these directly; the
/// legacy [`crate::store::BlockStore::get`] surface converts them to
/// [`io::Error`] via the [`From`] impl below (`NotFound` →
/// [`io::ErrorKind::NotFound`], `Corrupt` → [`io::ErrorKind::InvalidData`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// No block with this id exists in the store.
    NotFound {
        /// The missing block id.
        block: u32,
    },
    /// The block's bytes fail their stored checksum (silent corruption).
    Corrupt {
        /// The corrupt block id.
        block: u32,
        /// Checksum recorded when the block was written.
        stored: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
    /// An underlying file-I/O failure (file-backed stores only).
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound { block } => write!(f, "no such block {block}"),
            StoreError::Corrupt {
                block,
                stored,
                actual,
            } => write!(
                f,
                "block {block} failed checksum (stored {stored:#010x}, read {actual:#010x})"
            ),
            StoreError::Io(e) => write!(f, "block store I/O error: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<StoreError> for io::Error {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::NotFound { block } => {
                io::Error::new(io::ErrorKind::NotFound, format!("no such block {block}"))
            }
            StoreError::Corrupt { .. } => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
            StoreError::Io(inner) => inner,
        }
    }
}

/// A coordinator-side engine failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The query service is gone: the session (or the whole engine) was
    /// shut down, so a submit can no longer reach any worker.
    /// [`crate::engine::QuerySession::try_query`] reports this instead of
    /// hanging on (or panicking over) closed worker transports.
    SessionClosed,
    /// Appending to or resetting the attached write-ahead log failed. The
    /// mutation was **not** applied — the write-ahead discipline refuses to
    /// mutate state it cannot first make durable.
    Wal(io::Error),
    /// Writing or renaming the checkpoint image failed. The WAL is left
    /// untouched, so recovery still replays every logged operation.
    Checkpoint(pargrid_gridfile::PersistError),
    /// A rebalance request was rejected before any data moved (no standby
    /// capacity, removing the last replica-capable worker, or an invalid
    /// worker index). The cluster layout is unchanged.
    Rebalance(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::SessionClosed => {
                write!(f, "query session is closed (engine shut down)")
            }
            EngineError::Wal(e) => write!(f, "write-ahead log I/O error: {e}"),
            EngineError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            EngineError::Rebalance(why) => write!(f, "rebalance rejected: {why}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Wal(e) => Some(e),
            EngineError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_error_maps_to_io_kinds() {
        let nf: io::Error = StoreError::NotFound { block: 7 }.into();
        assert_eq!(nf.kind(), io::ErrorKind::NotFound);
        let bad: io::Error = StoreError::Corrupt {
            block: 3,
            stored: 1,
            actual: 2,
        }
        .into();
        assert_eq!(bad.kind(), io::ErrorKind::InvalidData);
        let io_src = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        let back: io::Error = StoreError::Io(io_src).into();
        assert_eq!(back.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn errors_display_and_source() {
        let e = StoreError::Corrupt {
            block: 9,
            stored: 0xdead,
            actual: 0xbeef,
        };
        assert!(e.to_string().contains("block 9"));
        assert!(StoreError::Io(io::Error::other("x")).source().is_some());
        assert!(EngineError::SessionClosed.to_string().contains("closed"));
    }
}
