//! Worker processes: own a local disk array, serve batched block-read
//! requests, filter records, ship qualifying records back to whichever
//! session asked.
//!
//! A worker's loop blocks on its queue, then opportunistically drains every
//! `Process` message already waiting and services the union as **one
//! elevator batch**: all requests' blocks go through the disks in sorted
//! order (interactive requests in a first pass, batch requests in a second),
//! but virtual time and cache hits are attributed to each request
//! individually, so per-query response-time metrics stay paper-faithful
//! while concurrent queries share arm movement.
//!
//! Requests are **idempotent at the worker**: each carries an engine-global
//! dispatch sequence number, and a worker remembers the seqs it has already
//! serviced (a bounded window), silently discarding redeliveries. That makes
//! coordinator retransmits safe — a retransmit of a request whose reply was
//! merely slow cannot cause the same blocks to be read and returned twice.

use crate::disk::{DiskModel, DiskParams};
use crate::error::StoreError;
use crate::fault::FaultKind;
use crate::message::{FromWorker, QueryPriority, RawBlocks, ToWorker};
use crate::ring::WorkerInbox;
use crate::stats::WorkerCounters;
use crate::store::BlockStore;
use pargrid_geom::Rect;
use pargrid_gridfile::page::decode_page;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Virtual CPU cost of decoding and filtering one record, nanoseconds.
/// (A ~60 MHz POWER2 node touching a 50-byte record: a few hundred ns.)
const CPU_NS_PER_RECORD: u64 = 300;

/// Default for how many serviced dispatch seqs a worker remembers for dedup
/// (see [`crate::engine::EngineConfig::seen_seq_window`]). Far larger than
/// any realistic in-flight window; bounded so a long-lived worker's memory
/// stays flat.
pub const DEFAULT_SEEN_SEQ_WINDOW: usize = 4096;

/// One request of a batch, borrowed from wherever it arrived.
struct RequestSpec<'a> {
    query_id: u64,
    seq: u64,
    blocks: &'a [u32],
    query: &'a Rect,
    priority: QueryPriority,
}

/// A worker's local state: its disk blocks and disk array.
///
/// The paper's SP-2 had **seven disks per processor** (§4, "16 processor
/// SP-2 with 112 disks"); a worker therefore owns `D >= 1` independent
/// disks, blocks striped across them round-robin (`disk = block mod D`). A
/// batch's service time is the *maximum* over the worker's disks — they
/// seek in parallel.
pub struct WorkerState {
    /// This worker's index.
    pub worker_id: usize,
    /// Raw pages by block id (in memory or in a per-worker file).
    pub store: BlockStore,
    /// Record payload size (needed to decode pages).
    pub payload_bytes: usize,
    /// The worker's disks (one or more).
    pub disks: Vec<DiskModel>,
    /// Injected faults applying to this worker (empty = healthy).
    pub faults: Vec<FaultKind>,
    /// Remaining silent-discard deliveries per query number (the
    /// [`FaultKind::DropRequest`] budget).
    drop_budget: Vec<(u64, u32)>,
    /// Dispatch seqs already serviced (dedup set + FIFO eviction order).
    seen_seqs: HashSet<u64>,
    seen_order: VecDeque<u64>,
    /// Capacity of the dedup window (see
    /// [`crate::engine::EngineConfig::seen_seq_window`]).
    seen_seq_window: usize,
    /// Whether the one-shot [`FaultKind::CorruptBlock`] faults have fired.
    corruption_done: bool,
    /// Trace recorder (installed by the engine when configured with one).
    #[cfg(feature = "obs")]
    pub recorder: Option<Arc<pargrid_obs::Recorder>>,
}

impl WorkerState {
    /// Creates a single-disk worker with an empty in-memory store.
    pub fn new(worker_id: usize, payload_bytes: usize, disk_params: DiskParams) -> Self {
        Self::with_store(worker_id, payload_bytes, disk_params, BlockStore::memory())
    }

    /// Creates a single-disk worker over an explicit store.
    pub fn with_store(
        worker_id: usize,
        payload_bytes: usize,
        disk_params: DiskParams,
        store: BlockStore,
    ) -> Self {
        Self::with_disks(worker_id, payload_bytes, disk_params, store, 1)
    }

    /// Creates a worker with `n_disks` local disks (the SP-2's 7-per-node
    /// configuration uses 7).
    ///
    /// # Panics
    /// Panics if `n_disks` is zero.
    pub fn with_disks(
        worker_id: usize,
        payload_bytes: usize,
        disk_params: DiskParams,
        store: BlockStore,
        n_disks: usize,
    ) -> Self {
        assert!(n_disks >= 1, "a worker needs at least one disk");
        WorkerState {
            worker_id,
            store,
            payload_bytes,
            disks: (0..n_disks).map(|_| DiskModel::new(disk_params)).collect(),
            faults: Vec::new(),
            drop_budget: Vec::new(),
            seen_seqs: HashSet::new(),
            seen_order: VecDeque::new(),
            seen_seq_window: DEFAULT_SEEN_SEQ_WINDOW,
            corruption_done: false,
            #[cfg(feature = "obs")]
            recorder: None,
        }
    }

    /// Installs injected faults (see [`crate::fault::FaultPlan`]). Straggler
    /// faults take effect immediately (the disks slow down); drop budgets
    /// are armed; everything else fires from the message loop.
    pub fn with_faults(mut self, faults: Vec<FaultKind>) -> Self {
        for f in &faults {
            match *f {
                FaultKind::SlowDisk(factor) => {
                    for d in &mut self.disks {
                        d.set_slowdown(factor);
                    }
                }
                FaultKind::DropRequest { query, times } => {
                    self.drop_budget.push((query, times));
                }
                _ => {}
            }
        }
        self.faults = faults;
        self
    }

    /// Sets the dedup-window capacity (clamped to >= 1). Server deployments
    /// size this to their in-flight request depth; the default
    /// ([`DEFAULT_SEEN_SEQ_WINDOW`]) is generous for embedded use.
    pub fn with_seen_seq_window(mut self, window: usize) -> Self {
        self.seen_seq_window = window.max(1);
        self
    }

    /// Lifetime blocks read across the worker's disks.
    fn blocks_read_total(&self) -> u64 {
        self.disks.iter().map(DiskModel::blocks_read).sum()
    }

    /// Whether an injected fail-stop triggers for this batch: either the
    /// lifetime block count has been reached, or a request at/past the kill
    /// query number arrived.
    fn should_die(&self, batch: &[crate::message::ReadRequest]) -> bool {
        self.faults.iter().any(|f| match *f {
            FaultKind::DieAfterBlocks(n) => self.blocks_read_total() >= n,
            FaultKind::DieAtQuery(q) => batch.iter().any(|r| r.query_id >= q),
            _ => false,
        })
    }

    /// Whether query `query_id` is poisoned for this worker.
    fn is_poisoned(&self, query_id: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(*f, FaultKind::PoisonQuery(q) if q == query_id))
    }

    /// Consumes one delivery of the drop budget for `query_id`, returning
    /// whether this delivery should be silently discarded.
    fn consume_drop(&mut self, query_id: u64) -> bool {
        for (q, times) in &mut self.drop_budget {
            if *q == query_id && *times > 0 {
                *times -= 1;
                return true;
            }
        }
        false
    }

    /// Records a serviced dispatch seq in the bounded dedup window.
    fn note_seen(&mut self, seq: u64) {
        if self.seen_seqs.insert(seq) {
            self.seen_order.push_back(seq);
            if self.seen_order.len() > self.seen_seq_window {
                if let Some(old) = self.seen_order.pop_front() {
                    self.seen_seqs.remove(&old);
                }
            }
        }
    }

    /// Fires any one-shot block-corruption faults (once, before the first
    /// batch is serviced — the store is loaded after construction, so this
    /// is the earliest point the target blocks exist).
    fn apply_corruption_faults(&mut self) {
        if self.corruption_done {
            return;
        }
        self.corruption_done = true;
        let targets: Vec<u32> = self
            .faults
            .iter()
            .filter_map(|f| match *f {
                FaultKind::CorruptBlock(b) => Some(b),
                _ => None,
            })
            .collect();
        for b in targets {
            self.store.corrupt(b);
        }
    }

    /// Services one dispatched request end-to-end, retransmit dedup
    /// included — the public surface a *wire* worker runtime (the
    /// `pargrid-cluster` worker process) drives instead of [`WorkerState::run`].
    ///
    /// Returns `None` when `seq` is already inside the seen-seq window: the
    /// request was serviced before and must not be re-executed. The caller
    /// answers such a redelivery from its reply cache, so a retransmitted
    /// dispatch whose original reply was lost with a dropped connection is
    /// answered once, never executed twice.
    pub fn service_dispatch(
        &mut self,
        query_id: u64,
        seq: u64,
        blocks: &[u32],
        query: &Rect,
        priority: QueryPriority,
    ) -> Option<FromWorker> {
        if self.seen_seqs.contains(&seq) {
            return None;
        }
        let reply = self
            .service_batch(&[RequestSpec {
                query_id,
                seq,
                blocks,
                query,
                priority,
            }])
            .pop()
            .expect("one request in, one reply out");
        self.note_seen(seq);
        Some(reply)
    }

    /// Raw verified block bytes (the scrub/repair read surface), public
    /// for the wire-worker runtime. See [`crate::message::ToWorker::FetchRaw`].
    pub fn fetch_raw_blocks(&self, blocks: &[u32]) -> RawBlocks {
        self.fetch_raw(blocks)
    }

    /// Writes raw blocks — bulk upload, scrub repair material, or a
    /// mutation's rewritten pages — public for the wire-worker runtime.
    /// See [`crate::message::ToWorker::WriteRaw`].
    pub fn write_raw_blocks(&mut self, blocks: Vec<(u32, Vec<u8>)>) {
        self.write_raw(blocks)
    }

    /// Handles one read request synchronously (also used directly by unit
    /// tests, without threads).
    pub fn handle_read(&mut self, query_id: u64, blocks: Vec<u32>, query: &Rect) -> FromWorker {
        self.service_batch(&[RequestSpec {
            query_id,
            seq: query_id,
            blocks: &blocks,
            query,
            priority: QueryPriority::Interactive,
        }])
        .pop()
        .expect("one request in, one reply out")
    }

    /// Services several requests as one combined elevator batch.
    ///
    /// Per disk, all requests' blocks are issued in sorted order (stripe
    /// `b % D` to disk, local index `b / D`), interactive pass before batch
    /// pass. Each block's cost is charged to the request that asked for it;
    /// a request's disk time is the maximum over disks of its own charges,
    /// since the disks seek in parallel.
    fn service_batch(&mut self, requests: &[RequestSpec<'_>]) -> Vec<FromWorker> {
        let d = self.disks.len();
        let mut disk_us = vec![0u64; requests.len() * d];
        let mut hits = vec![0u64; requests.len()];
        for pass in [QueryPriority::Interactive, QueryPriority::Batch] {
            // Per disk: (local block, request index), sorted for the
            // elevator. The request index tiebreak keeps duplicate blocks
            // deterministically ordered.
            let mut per_disk: Vec<Vec<(u32, usize)>> = vec![Vec::new(); d];
            for (idx, req) in requests.iter().enumerate() {
                if req.priority != pass {
                    continue;
                }
                for &b in req.blocks {
                    per_disk[b as usize % d].push((b / d as u32, idx));
                }
            }
            for (di, list) in per_disk.iter_mut().enumerate() {
                list.sort_unstable();
                for &(local, idx) in list.iter() {
                    let cost = self.disks[di].read_block(local);
                    disk_us[idx * d + di] += cost.us;
                    hits[idx] += cost.hit as u64;
                }
            }
        }

        requests
            .iter()
            .enumerate()
            .map(|(idx, req)| {
                let mut records = Vec::new();
                let mut scanned = 0u64;
                let mut error = None;
                let mut corrupt_blocks = Vec::new();
                for &b in req.blocks {
                    // An unreadable block fails only this request — disk
                    // time already charged in the elevator pass stays
                    // charged, the batch's other requests are unaffected,
                    // and the coordinator can retry against a replica. A
                    // checksum failure is additionally reported so the
                    // coordinator can scrub the block back to health.
                    //
                    // `read_block` is the allocation-free path: in-memory
                    // pages are borrowed, file pages land in a recycled
                    // pool buffer released when `page` drops.
                    match self.store.read_block(b) {
                        Ok(page) => {
                            for r in decode_page(page.as_ref(), self.payload_bytes) {
                                scanned += 1;
                                if req.query.contains_closed(&r.point) {
                                    records.push(r);
                                }
                            }
                        }
                        Err(e) => {
                            if matches!(e, StoreError::Corrupt { .. }) {
                                corrupt_blocks.push(b);
                            }
                            error = Some(format!(
                                "worker {} cannot read block {b}: {e}",
                                self.worker_id
                            ));
                            records.clear();
                            break;
                        }
                    }
                }
                FromWorker {
                    query_id: req.query_id,
                    seq: req.seq,
                    worker_id: self.worker_id,
                    blocks_requested: req.blocks.len() as u64,
                    cache_hits: hits[idx],
                    disk_us: disk_us[idx * d..(idx + 1) * d]
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(0),
                    cpu_us: scanned * CPU_NS_PER_RECORD / 1000,
                    records,
                    corrupt_blocks,
                    error,
                }
            })
            .collect()
    }

    /// Answers a [`ToWorker::FetchRaw`]: raw verified block bytes for the
    /// repair path. A block that is missing *or fails its own checksum*
    /// comes back `None` — a corrupt copy is never served as scrub
    /// material. Uncharged on the virtual clock: scrub traffic is
    /// background I/O, not query service.
    fn fetch_raw(&self, blocks: &[u32]) -> RawBlocks {
        RawBlocks {
            worker_id: self.worker_id,
            blocks: blocks
                .iter()
                .map(|&b| (b, self.store.get(b).ok()))
                .collect(),
        }
    }

    /// Applies a [`ToWorker::WriteRaw`]: writes local blocks with fresh
    /// bytes (scrub repair material or a mutation's rewritten/appended
    /// pages), refreshing their checksums. Every successful write
    /// invalidates the block in its disk's buffer cache — the next read
    /// must pay a miss and fetch the new bytes instead of being billed as a
    /// hit on the stale cached identity.
    fn write_raw(&mut self, blocks: Vec<(u32, Vec<u8>)>) {
        let d = self.disks.len();
        for (b, bytes) in blocks {
            // A failed write (size mismatch) leaves the block as-is; the
            // next read reports it again.
            if self.store.upsert(b, bytes).is_ok() {
                self.disks[b as usize % d].invalidate(b / d as u32);
            }
        }
    }

    /// Publishes lifetime totals and cache gauges after a batch.
    fn publish(&self, counters: &WorkerCounters, batch_len: u64, wall_us: u64, errors: u64) {
        let blocks: u64 = self.disks.iter().map(DiskModel::blocks_read).sum();
        let hits: u64 = self.disks.iter().map(DiskModel::cache_hits).sum();
        let busy: u64 = self.disks.iter().map(DiskModel::busy_us).sum();
        let cache_len = self
            .disks
            .iter()
            .map(DiskModel::cache_len)
            .max()
            .unwrap_or(0) as u64;
        counters.blocks_fetched.store(blocks, Ordering::Relaxed);
        counters.cache_hits.store(hits, Ordering::Relaxed);
        counters.disk_busy_us.store(busy, Ordering::Relaxed);
        counters.busy_wall_us.fetch_add(wall_us, Ordering::Relaxed);
        counters.error_replies.fetch_add(errors, Ordering::Relaxed);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .batched_requests
            .fetch_add(batch_len, Ordering::Relaxed);
        counters.max_batch.fetch_max(batch_len, Ordering::Relaxed);
        counters.cache_len.store(cache_len, Ordering::Relaxed);
        counters
            .max_cache_len
            .fetch_max(cache_len, Ordering::Relaxed);
    }

    /// The worker's message loop: consumed by [`run_worker`].
    ///
    /// Takes anything convertible into a [`WorkerInbox`]: a plain crossbeam
    /// `Receiver<ToWorker>` ([`crate::ring::DispatchMode::Channel`]) or an
    /// `Arc<RequestRing<ToWorker>>` ([`crate::ring::DispatchMode::Ring`]).
    /// On every exit path — shutdown, injected fail-stop, panic — the inbox
    /// drop closes a ring transport, so coordinator pushes start failing
    /// exactly when channel sends would.
    ///
    /// Each iteration blocks for one message, then drains everything already
    /// queued into a single batch — the queue depth at that instant *is* the
    /// batch size, so concurrent sessions coalesce without any coordinator
    /// involvement. Replies go to each request's own `reply` channel.
    pub fn run(mut self, rx: impl Into<WorkerInbox>, counters: Option<Arc<WorkerCounters>>) {
        let rx: WorkerInbox = rx.into();
        // Cumulative wall busy time, used to advance the recorder's global
        // virtual clock (fetch_max across workers).
        #[cfg(feature = "obs")]
        let mut busy_accum: u64 = 0;
        loop {
            let mut batch = Vec::new();
            let mut shutdown = false;
            match rx.recv() {
                Some(ToWorker::Process(reqs)) => batch.extend(reqs),
                Some(ToWorker::FetchRaw { blocks, reply }) => {
                    let _ = reply.send(self.fetch_raw(&blocks));
                    continue;
                }
                Some(ToWorker::WriteRaw { blocks }) => {
                    self.write_raw(blocks);
                    continue;
                }
                Some(ToWorker::Shutdown) | None => return,
            }
            loop {
                match rx.try_recv() {
                    Some(ToWorker::Process(reqs)) => batch.extend(reqs),
                    Some(ToWorker::FetchRaw { blocks, reply }) => {
                        let _ = reply.send(self.fetch_raw(&blocks));
                    }
                    Some(ToWorker::WriteRaw { blocks }) => self.write_raw(blocks),
                    Some(ToWorker::Shutdown) => {
                        shutdown = true;
                        break;
                    }
                    None => break,
                }
            }
            // Channel faults before any service: silently discard deliveries
            // with remaining drop budget (a lost message), and dedup
            // redeliveries of dispatch seqs already serviced (the
            // coordinator's retransmit raced a slow reply).
            let mut kept = Vec::with_capacity(batch.len());
            let mut deduped = 0u64;
            for req in batch {
                if self.consume_drop(req.query_id) {
                    continue;
                }
                if self.seen_seqs.contains(&req.seq) {
                    deduped += 1;
                    continue;
                }
                kept.push(req);
            }
            let batch = kept;
            if deduped > 0 {
                if let Some(c) = &counters {
                    c.dup_requests_dropped.fetch_add(deduped, Ordering::Relaxed);
                }
            }
            if !batch.is_empty() {
                // One-shot silent corruption fires before the first real
                // service pass.
                self.apply_corruption_faults();
                // Injected fail-stop: mark dead in the shared liveness
                // table and exit WITHOUT replying — exactly what a crashed
                // node looks like to the coordinator, which detects it via
                // its reply timeout (or the dead flag) and fails the
                // stranded requests over to replicas.
                if self.should_die(&batch) {
                    if let Some(c) = &counters {
                        c.dead.store(true, Ordering::Relaxed);
                    }
                    return;
                }
                let specs: Vec<RequestSpec<'_>> = batch
                    .iter()
                    .map(|r| RequestSpec {
                        query_id: r.query_id,
                        seq: r.seq,
                        blocks: &r.blocks,
                        query: &r.query,
                        priority: r.priority,
                    })
                    .collect();
                let disk_before: Vec<u64> = self.disks.iter().map(DiskModel::busy_us).collect();
                let mut replies = self.service_batch(&specs);
                for req in &batch {
                    self.note_seen(req.seq);
                }
                // Poison faults: the request was serviced (time charged),
                // but the answer is an error — same shape as a bad block.
                for reply in &mut replies {
                    if self.is_poisoned(reply.query_id) {
                        reply.records.clear();
                        reply.error = Some(format!(
                            "worker {}: injected poison for query {}",
                            self.worker_id, reply.query_id
                        ));
                    }
                }
                // Wall time of the batch: the disks seeked in parallel, so
                // the node was busy for the slowest disk's share of this
                // batch, plus all decode/filter CPU.
                let wall_disk = self
                    .disks
                    .iter()
                    .zip(&disk_before)
                    .map(|(d, &b)| d.busy_us() - b)
                    .max()
                    .unwrap_or(0);
                let cpu: u64 = replies.iter().map(|r| r.cpu_us).sum();
                #[cfg(feature = "obs")]
                if let Some(rec) = &self.recorder {
                    use pargrid_obs::{Event, SpanKind, NO_ID, NO_QUERY};
                    // One DiskBatch span per disk that moved, timestamped in
                    // that disk's own busy clock so each disk renders as a
                    // gap-free Gantt lane.
                    let d = self.disks.len();
                    for (di, &before) in disk_before.iter().enumerate() {
                        let delta = self.disks[di].busy_us() - before;
                        if delta > 0 {
                            rec.record_worker(
                                self.worker_id,
                                Event {
                                    ts_us: before,
                                    dur_us: delta,
                                    query_id: NO_QUERY,
                                    kind: SpanKind::DiskBatch,
                                    worker: self.worker_id as u32,
                                    disk: (self.worker_id * d + di) as u32,
                                    detail: batch.len() as u64,
                                },
                            );
                        }
                    }
                    let probes: u64 = replies.iter().map(|r| r.blocks_requested).sum();
                    let hits: u64 = replies.iter().map(|r| r.cache_hits).sum();
                    rec.record_worker(
                        self.worker_id,
                        Event {
                            ts_us: rec.now(),
                            dur_us: 0,
                            query_id: NO_QUERY,
                            kind: SpanKind::CacheProbe,
                            worker: self.worker_id as u32,
                            disk: NO_ID,
                            detail: (hits << 32) | (probes & 0xFFFF_FFFF),
                        },
                    );
                    rec.batch_wall_us.record(wall_disk + cpu);
                    busy_accum += wall_disk + cpu;
                    rec.advance_clock(busy_accum);
                }
                if let Some(c) = &counters {
                    let errors = replies.iter().filter(|r| r.error.is_some()).count() as u64;
                    self.publish(c, batch.len() as u64, wall_disk + cpu, errors);
                }
                // Timing faults on the reply path: hold the whole batch's
                // replies (a late message), then emit in reversed order if a
                // reorder fault matches. The coordinator absorbs both via
                // seq matching and retransmit dedup.
                let delay_ms = self
                    .faults
                    .iter()
                    .filter_map(|f| match *f {
                        FaultKind::DelayReply { query, delay_ms }
                            if batch.iter().any(|r| r.query_id == query) =>
                        {
                            Some(delay_ms)
                        }
                        _ => None,
                    })
                    .max();
                if let Some(ms) = delay_ms {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
                let reorder = self.faults.iter().any(|f| {
                    matches!(*f, FaultKind::ReorderReplies(q)
                        if batch.iter().any(|r| r.query_id >= q))
                });
                let mut out: Vec<(usize, FromWorker)> = replies.into_iter().enumerate().collect();
                if reorder {
                    out.reverse();
                }
                for (idx, reply) in out {
                    let req = &batch[idx];
                    // A duplicated-message fault sends the same reply twice;
                    // the coordinator must merge it exactly once.
                    let duplicate = self
                        .faults
                        .iter()
                        .any(|f| matches!(*f, FaultKind::DuplicateRequest(q) if q == req.query_id));
                    if duplicate {
                        let _ = req.reply.send(reply.clone());
                    }
                    // A session may have been dropped mid-flight; that is
                    // its problem, not the worker's.
                    let _ = req.reply.send(reply);
                }
            }
            if shutdown {
                return;
            }
        }
    }
}

/// Spawns a worker thread running the message loop over either transport
/// (see [`WorkerState::run`] for the inbox conversion).
pub fn run_worker(
    state: WorkerState,
    rx: impl Into<WorkerInbox>,
    counters: Option<Arc<WorkerCounters>>,
) -> std::thread::JoinHandle<()> {
    let inbox: WorkerInbox = rx.into();
    std::thread::Builder::new()
        .name(format!("pargrid-worker-{}", state.worker_id))
        .spawn(move || state.run(inbox, counters))
        .expect("failed to spawn worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ReadRequest;
    use pargrid_geom::{Point, Rect};
    use pargrid_gridfile::page::encode_page;
    use pargrid_gridfile::Record;

    fn worker_with_two_blocks() -> WorkerState {
        let mut w = WorkerState::new(0, 0, DiskParams::default());
        let recs_a: Vec<Record> = (0..10)
            .map(|i| Record::new(i, Point::new2(i as f64, i as f64)))
            .collect();
        let recs_b: Vec<Record> = (10..20)
            .map(|i| Record::new(i, Point::new2(i as f64, i as f64)))
            .collect();
        w.store
            .put(0, encode_page(&recs_a, 2, 0, 4096))
            .expect("put");
        w.store
            .put(1, encode_page(&recs_b, 2, 0, 4096))
            .expect("put");
        w
    }

    fn request(
        qid: u64,
        seq: u64,
        blocks: Vec<u32>,
        reply: &crossbeam::channel::Sender<FromWorker>,
    ) -> ReadRequest {
        ReadRequest {
            query_id: qid,
            seq,
            blocks,
            query: Rect::new2(0.0, 0.0, 100.0, 100.0),
            reply: reply.clone(),
            priority: QueryPriority::Interactive,
        }
    }

    #[test]
    fn filters_records_against_query() {
        let mut w = worker_with_two_blocks();
        let q = Rect::new2(3.0, 3.0, 12.0, 12.0);
        let reply = w.handle_read(7, vec![0, 1], &q);
        assert_eq!(reply.query_id, 7);
        assert_eq!(reply.blocks_requested, 2);
        let ids: Vec<u64> = reply.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        assert!(reply.disk_us > 0);
        assert!(reply.cpu_us > 0 || CPU_NS_PER_RECORD < 50);
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let mut w = worker_with_two_blocks();
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let first = w.handle_read(0, vec![0, 1], &q);
        let second = w.handle_read(1, vec![0, 1], &q);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(second.cache_hits, 2);
        assert!(second.disk_us < first.disk_us);
    }

    #[test]
    fn unknown_block_yields_error_reply_and_serves_the_rest() {
        // A request hitting a missing block gets an error reply (its disk
        // time stays charged); the *other* request in the same batch is
        // fully served — the worker no longer aborts mid-batch.
        let mut w = worker_with_two_blocks();
        let all = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let replies = w.service_batch(&[
            RequestSpec {
                query_id: 1,
                seq: 1,
                blocks: &[0, 99],
                query: &all,
                priority: QueryPriority::Interactive,
            },
            RequestSpec {
                query_id: 2,
                seq: 2,
                blocks: &[0, 1],
                query: &all,
                priority: QueryPriority::Interactive,
            },
        ]);
        assert_eq!(replies.len(), 2);
        let bad = &replies[0];
        assert!(bad.error.as_deref().unwrap_or("").contains("block 99"));
        assert!(bad.records.is_empty());
        assert!(bad.corrupt_blocks.is_empty(), "missing, not corrupt");
        assert_eq!(bad.blocks_requested, 2);
        assert!(bad.disk_us > 0, "disk time was already charged");
        let good = &replies[1];
        assert!(good.error.is_none());
        assert_eq!(good.records.len(), 20);
    }

    #[test]
    fn corrupt_block_is_reported_for_scrubbing() {
        let mut w = worker_with_two_blocks();
        assert!(w.store.corrupt(1));
        let all = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let reply = w.handle_read(1, vec![0, 1], &all);
        assert!(reply.error.as_deref().unwrap_or("").contains("checksum"));
        assert_eq!(reply.corrupt_blocks, vec![1]);
        assert!(reply.records.is_empty());
    }

    #[test]
    fn fail_stop_fault_marks_dead_without_replying() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let counters = Arc::new(WorkerCounters::default());
        let state = worker_with_two_blocks().with_faults(vec![FaultKind::DieAtQuery(0)]);
        let handle = run_worker(state, to_rx, Some(Arc::clone(&counters)));
        to_tx
            .send(ToWorker::Process(vec![ReadRequest {
                query_id: 3,
                seq: 3,
                blocks: vec![0],
                query: Rect::new2(0.0, 0.0, 5.0, 5.0),
                reply: reply_tx,
                priority: QueryPriority::Interactive,
            }]))
            .expect("send");
        handle.join().expect("worker thread exits cleanly");
        assert!(counters.dead.load(Ordering::Relaxed), "marked dead");
        assert!(
            reply_rx.try_recv().is_err(),
            "a crashed worker never replies"
        );
    }

    #[test]
    fn poison_fault_replies_with_error_and_stays_alive() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let counters = Arc::new(WorkerCounters::default());
        let state = worker_with_two_blocks().with_faults(vec![FaultKind::PoisonQuery(1)]);
        let handle = run_worker(state, to_rx, Some(Arc::clone(&counters)));
        let send = |qid: u64| {
            to_tx
                .send(ToWorker::Process(vec![request(
                    qid,
                    qid,
                    vec![0],
                    &reply_tx,
                )]))
                .expect("send");
        };
        send(1);
        let poisoned = reply_rx.recv().expect("reply");
        assert!(poisoned.error.is_some());
        assert!(poisoned.records.is_empty());
        assert!(poisoned.disk_us > 0, "time was spent before the poison");
        send(2);
        let healthy = reply_rx.recv().expect("reply");
        assert!(healthy.error.is_none());
        assert_eq!(healthy.records.len(), 10);
        assert!(!counters.dead.load(Ordering::Relaxed));
        assert_eq!(counters.error_replies.load(Ordering::Relaxed), 1);
        to_tx.send(ToWorker::Shutdown).expect("send shutdown");
        handle.join().expect("worker joins");
    }

    #[test]
    fn die_after_blocks_triggers_on_later_batch() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let counters = Arc::new(WorkerCounters::default());
        let state = worker_with_two_blocks().with_faults(vec![FaultKind::DieAfterBlocks(2)]);
        let handle = run_worker(state, to_rx, Some(Arc::clone(&counters)));
        // First batch (2 blocks) is under the limit and serviced normally.
        to_tx
            .send(ToWorker::Process(vec![request(
                0,
                0,
                vec![0, 1],
                &reply_tx,
            )]))
            .expect("send");
        assert!(reply_rx.recv().expect("reply").error.is_none());
        // Second batch finds blocks_read >= 2: the worker dies silently.
        to_tx
            .send(ToWorker::Process(vec![request(
                1,
                1,
                vec![0, 1],
                &reply_tx,
            )]))
            .expect("send");
        handle.join().expect("worker thread exits");
        assert!(counters.dead.load(Ordering::Relaxed));
        assert!(reply_rx.try_recv().is_err());
    }

    #[test]
    fn duplicate_seq_is_deduped_not_reserviced() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let counters = Arc::new(WorkerCounters::default());
        let handle = run_worker(worker_with_two_blocks(), to_rx, Some(Arc::clone(&counters)));
        to_tx
            .send(ToWorker::Process(vec![request(1, 42, vec![0], &reply_tx)]))
            .expect("send");
        let first = reply_rx.recv().expect("reply");
        assert_eq!(first.seq, 42);
        // Redelivery of the same seq (a retransmit that raced the reply):
        // silently discarded, no second reply.
        to_tx
            .send(ToWorker::Process(vec![request(1, 42, vec![0], &reply_tx)]))
            .expect("send");
        // A fresh seq still gets serviced, proving the worker is live.
        to_tx
            .send(ToWorker::Process(vec![request(2, 43, vec![1], &reply_tx)]))
            .expect("send");
        let second = reply_rx.recv().expect("reply");
        assert_eq!(second.seq, 43, "deduped delivery produced no reply");
        assert_eq!(counters.dup_requests_dropped.load(Ordering::Relaxed), 1);
        to_tx.send(ToWorker::Shutdown).expect("send shutdown");
        handle.join().expect("worker joins");
    }

    #[test]
    fn seen_seq_window_is_configurable_and_evicts_fifo() {
        // A window of 2: after servicing seqs 10, 11, 12 the oldest (10)
        // has been evicted, so its redelivery is serviced again, while the
        // still-remembered 12 stays deduped.
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let counters = Arc::new(WorkerCounters::default());
        let state = worker_with_two_blocks().with_seen_seq_window(2);
        let handle = run_worker(state, to_rx, Some(Arc::clone(&counters)));
        for seq in [10u64, 11, 12] {
            to_tx
                .send(ToWorker::Process(vec![request(
                    seq,
                    seq,
                    vec![0],
                    &reply_tx,
                )]))
                .expect("send");
            assert_eq!(reply_rx.recv().expect("reply").seq, seq);
        }
        // Seq 12 is inside the window: deduped, no reply.
        to_tx
            .send(ToWorker::Process(vec![request(12, 12, vec![0], &reply_tx)]))
            .expect("send");
        // Seq 10 fell out of the 2-deep window: serviced again.
        to_tx
            .send(ToWorker::Process(vec![request(10, 10, vec![0], &reply_tx)]))
            .expect("send");
        let replay = reply_rx.recv().expect("evicted seq re-serviced");
        assert_eq!(replay.seq, 10);
        assert_eq!(counters.dup_requests_dropped.load(Ordering::Relaxed), 1);
        to_tx.send(ToWorker::Shutdown).expect("send shutdown");
        handle.join().expect("worker joins");
    }

    #[test]
    fn drop_fault_discards_first_deliveries_then_serves() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let state = worker_with_two_blocks()
            .with_faults(vec![FaultKind::DropRequest { query: 5, times: 1 }]);
        let handle = run_worker(state, to_rx, None);
        // First delivery is silently dropped.
        to_tx
            .send(ToWorker::Process(vec![request(5, 10, vec![0], &reply_tx)]))
            .expect("send");
        // Retransmit (same seq — the worker never serviced it, so the seq is
        // not in the dedup window) gets through.
        to_tx
            .send(ToWorker::Process(vec![request(5, 10, vec![0], &reply_tx)]))
            .expect("send");
        let reply = reply_rx.recv().expect("retransmit serviced");
        assert_eq!(reply.seq, 10);
        assert_eq!(reply.records.len(), 10);
        assert!(
            reply_rx.try_recv().is_err(),
            "exactly one reply for the two deliveries"
        );
        to_tx.send(ToWorker::Shutdown).expect("send shutdown");
        handle.join().expect("worker joins");
    }

    #[test]
    fn duplicate_reply_fault_sends_twice() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let state = worker_with_two_blocks().with_faults(vec![FaultKind::DuplicateRequest(3)]);
        let handle = run_worker(state, to_rx, None);
        to_tx
            .send(ToWorker::Process(vec![request(3, 7, vec![0], &reply_tx)]))
            .expect("send");
        let a = reply_rx.recv().expect("first copy");
        let b = reply_rx.recv().expect("second copy");
        assert_eq!(a.seq, 7);
        assert_eq!(b.seq, 7);
        assert_eq!(a.records, b.records);
        to_tx.send(ToWorker::Shutdown).expect("send shutdown");
        handle.join().expect("worker joins");
    }

    #[test]
    fn reorder_fault_reverses_batch_reply_order() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let state = worker_with_two_blocks().with_faults(vec![FaultKind::ReorderReplies(0)]);
        let handle = run_worker(state, to_rx, None);
        to_tx
            .send(ToWorker::Process(vec![
                request(1, 100, vec![0], &reply_tx),
                request(2, 101, vec![1], &reply_tx),
            ]))
            .expect("send");
        let first = reply_rx.recv().expect("reply");
        let second = reply_rx.recv().expect("reply");
        assert_eq!(first.seq, 101, "replies come back reversed");
        assert_eq!(second.seq, 100);
        to_tx.send(ToWorker::Shutdown).expect("send shutdown");
        handle.join().expect("worker joins");
    }

    #[test]
    fn fetch_raw_and_write_raw_round_trip_repair() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let mut state = worker_with_two_blocks();
        let pristine = state.store.get(0).expect("block 0");
        assert!(state.store.corrupt(0));
        let handle = run_worker(state, to_rx, None);
        // Fetch: corrupt block 0 comes back None, healthy block 1 as bytes.
        let (raw_tx, raw_rx) = crossbeam::channel::unbounded();
        to_tx
            .send(ToWorker::FetchRaw {
                blocks: vec![0, 1],
                reply: raw_tx,
            })
            .expect("send");
        let raw = raw_rx.recv().expect("raw reply");
        assert_eq!(raw.worker_id, 0);
        assert!(raw.blocks[0].1.is_none(), "corrupt copy is not served");
        assert!(raw.blocks[1].1.is_some());
        // Write the pristine bytes back: reads verify again.
        to_tx
            .send(ToWorker::WriteRaw {
                blocks: vec![(0, pristine)],
            })
            .expect("send");
        to_tx
            .send(ToWorker::Process(vec![request(9, 9, vec![0], &reply_tx)]))
            .expect("send");
        let reply = reply_rx.recv().expect("post-repair read");
        assert!(reply.error.is_none(), "{:?}", reply.error);
        assert_eq!(reply.records.len(), 10);
        to_tx.send(ToWorker::Shutdown).expect("send shutdown");
        handle.join().expect("worker joins");
    }

    #[test]
    fn rewritten_block_is_not_served_stale_from_cache() {
        // Warm the cache on block 0, rewrite its bytes via the WriteRaw
        // path, re-read: the reply must carry the NEW records (checksum
        // verified against the new bytes) and be charged a cache MISS — the
        // stale cached identity must not be billed as a hit.
        let mut w = worker_with_two_blocks();
        let all = Rect::new2(0.0, 0.0, 100.0, 100.0);
        assert_eq!(w.handle_read(0, vec![0], &all).cache_hits, 0);
        assert_eq!(w.handle_read(1, vec![0], &all).cache_hits, 1, "warmed");
        let fresh: Vec<Record> = (100..105)
            .map(|i| Record::new(i, Point::new2(1.0, 1.0)))
            .collect();
        w.write_raw(vec![(0, encode_page(&fresh, 2, 0, 4096))]);
        let reread = w.handle_read(2, vec![0], &all);
        assert!(
            reread.error.is_none(),
            "checksum must match the new bytes: {:?}",
            reread.error
        );
        let ids: Vec<u64> = reread.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![100, 101, 102, 103, 104], "fresh bytes served");
        assert_eq!(reread.cache_hits, 0, "rewritten block pays a miss");
        // The re-read re-cached the (new) block: hits resume.
        assert_eq!(w.handle_read(3, vec![0], &all).cache_hits, 1);
    }

    #[test]
    fn write_raw_appends_fresh_blocks() {
        // A mutation's bucket split ships blocks the worker has never seen;
        // WriteRaw upserts them and they serve like any bulk-loaded block.
        let mut w = worker_with_two_blocks();
        let recs: Vec<Record> = (50..53)
            .map(|i| Record::new(i, Point::new2(2.0, 2.0)))
            .collect();
        w.write_raw(vec![(2, encode_page(&recs, 2, 0, 4096))]);
        let all = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let reply = w.handle_read(7, vec![0, 1, 2], &all);
        assert!(reply.error.is_none(), "{:?}", reply.error);
        assert_eq!(reply.records.len(), 23, "20 original + 3 appended");
    }

    #[test]
    fn slow_disk_fault_inflates_service_time() {
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let mut healthy = worker_with_two_blocks();
        let mut slow = worker_with_two_blocks().with_faults(vec![FaultKind::SlowDisk(10)]);
        let h = healthy.handle_read(0, vec![0, 1], &q);
        let s = slow.handle_read(0, vec![0, 1], &q);
        assert_eq!(h.records, s.records, "results identical");
        assert_eq!(s.disk_us, h.disk_us * 10, "10x straggler");
    }

    #[test]
    fn multi_disk_worker_parallelizes_batches() {
        // Same blocks, 1 vs 4 disks: batch time shrinks because the disks
        // seek in parallel, while results stay identical.
        let make = |n_disks| {
            let mut w = WorkerState::with_disks(
                0,
                0,
                DiskParams {
                    cache_pages: 0,
                    ..DiskParams::default()
                },
                crate::store::BlockStore::memory(),
                n_disks,
            );
            for i in 0..8u32 {
                let recs: Vec<Record> = (0..4)
                    .map(|j| Record::new(i as u64 * 4 + j, Point::new2(j as f64, j as f64)))
                    .collect();
                w.store.put(i, encode_page(&recs, 2, 0, 4096)).expect("put");
            }
            w
        };
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let mut one = make(1);
        let mut four = make(4);
        let r1 = one.handle_read(0, (0..8).collect(), &q);
        let r4 = four.handle_read(0, (0..8).collect(), &q);
        assert_eq!(r1.records, r4.records);
        assert!(
            r4.disk_us < r1.disk_us,
            "4 disks {} not faster than 1 disk {}",
            r4.disk_us,
            r1.disk_us
        );
    }

    #[test]
    fn combined_batch_accounts_per_query() {
        // Two queries batched together: both want blocks 0 and 1, so the
        // second one's reads come out of the cache that the first one's
        // elevator pass just filled — but each query is charged its own
        // cache hits and disk time.
        let mut w = worker_with_two_blocks();
        let all = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let low = Rect::new2(0.0, 0.0, 5.0, 5.0);
        let replies = w.service_batch(&[
            RequestSpec {
                query_id: 1,
                seq: 1,
                blocks: &[0, 1],
                query: &all,
                priority: QueryPriority::Interactive,
            },
            RequestSpec {
                query_id: 2,
                seq: 2,
                blocks: &[0, 1],
                query: &low,
                priority: QueryPriority::Interactive,
            },
        ]);
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].cache_hits, 0);
        assert_eq!(replies[1].cache_hits, 2);
        assert!(replies[1].disk_us < replies[0].disk_us);
        assert_eq!(replies[0].records.len(), 20);
        assert_eq!(replies[1].records.len(), 6);
    }

    #[test]
    fn interactive_pass_precedes_batch_pass() {
        // The interactive request is serviced first even though it is listed
        // second, so it pays the cold reads and the batch request hits cache.
        let mut w = worker_with_two_blocks();
        let all = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let replies = w.service_batch(&[
            RequestSpec {
                query_id: 1,
                seq: 1,
                blocks: &[0, 1],
                query: &all,
                priority: QueryPriority::Batch,
            },
            RequestSpec {
                query_id: 2,
                seq: 2,
                blocks: &[0, 1],
                query: &all,
                priority: QueryPriority::Interactive,
            },
        ]);
        assert_eq!(replies[1].cache_hits, 0, "interactive went first");
        assert_eq!(replies[0].cache_hits, 2, "batch rode the warm cache");
    }

    #[test]
    fn threaded_loop_round_trip() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let counters = Arc::new(WorkerCounters::default());
        let handle = run_worker(worker_with_two_blocks(), to_rx, Some(Arc::clone(&counters)));
        to_tx
            .send(ToWorker::Process(vec![ReadRequest {
                query_id: 1,
                seq: 1,
                blocks: vec![0],
                query: Rect::new2(0.0, 0.0, 5.0, 5.0),
                reply: reply_tx,
                priority: QueryPriority::Interactive,
            }]))
            .expect("send");
        let reply = reply_rx.recv().expect("reply");
        assert_eq!(reply.records.len(), 6); // ids 0..=5 within [0,5] closed
        assert_eq!(counters.blocks_fetched.load(Ordering::Relaxed), 1);
        assert_eq!(counters.batches.load(Ordering::Relaxed), 1);
        assert_eq!(counters.max_batch.load(Ordering::Relaxed), 1);
        to_tx.send(ToWorker::Shutdown).expect("send shutdown");
        handle.join().expect("worker joins cleanly");
    }
}
