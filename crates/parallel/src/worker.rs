//! Worker processes: own a local disk, serve block-read requests, filter
//! records, ship qualifying records back to the coordinator.

use crate::disk::{DiskModel, DiskParams};
use crate::message::{FromWorker, ToWorker};
use crate::store::BlockStore;
use crossbeam::channel::{Receiver, Sender};
use pargrid_gridfile::page::decode_page;

/// Virtual CPU cost of decoding and filtering one record, nanoseconds.
/// (A ~60 MHz POWER2 node touching a 50-byte record: a few hundred ns.)
const CPU_NS_PER_RECORD: u64 = 300;

/// A worker's local state: its disk blocks and disk array.
///
/// The paper's SP-2 had **seven disks per processor** (§4, "16 processor
/// SP-2 with 112 disks"); a worker therefore owns `D >= 1` independent
/// disks, blocks striped across them round-robin (`disk = block mod D`). A
/// batch's service time is the *maximum* over the worker's disks — they
/// seek in parallel.
pub struct WorkerState {
    /// This worker's index.
    pub worker_id: usize,
    /// Raw pages by block id (in memory or in a per-worker file).
    pub store: BlockStore,
    /// Record payload size (needed to decode pages).
    pub payload_bytes: usize,
    /// The worker's disks (one or more).
    pub disks: Vec<DiskModel>,
}

impl WorkerState {
    /// Creates a single-disk worker with an empty in-memory store.
    pub fn new(worker_id: usize, payload_bytes: usize, disk_params: DiskParams) -> Self {
        Self::with_store(worker_id, payload_bytes, disk_params, BlockStore::memory())
    }

    /// Creates a single-disk worker over an explicit store.
    pub fn with_store(
        worker_id: usize,
        payload_bytes: usize,
        disk_params: DiskParams,
        store: BlockStore,
    ) -> Self {
        Self::with_disks(worker_id, payload_bytes, disk_params, store, 1)
    }

    /// Creates a worker with `n_disks` local disks (the SP-2's 7-per-node
    /// configuration uses 7).
    ///
    /// # Panics
    /// Panics if `n_disks` is zero.
    pub fn with_disks(
        worker_id: usize,
        payload_bytes: usize,
        disk_params: DiskParams,
        store: BlockStore,
        n_disks: usize,
    ) -> Self {
        assert!(n_disks >= 1, "a worker needs at least one disk");
        WorkerState {
            worker_id,
            store,
            payload_bytes,
            disks: (0..n_disks).map(|_| DiskModel::new(disk_params)).collect(),
        }
    }

    /// Handles one read request synchronously (also used directly by unit
    /// tests, without threads).
    pub fn handle_read(
        &mut self,
        query_id: u64,
        blocks: Vec<u32>,
        query: &pargrid_geom::Rect,
    ) -> FromWorker {
        let requested = blocks.len() as u64;
        let hits_before: u64 = self.disks.iter().map(DiskModel::cache_hits).sum();
        // Stripe the batch over the local disks; they service in parallel,
        // so the batch takes as long as the busiest disk. Each disk sees its
        // *local* block index (b / d): consecutive stripes of one disk are
        // physically consecutive sectors there, so the sequential-read rate
        // and the per-disk cache key both work in local coordinates.
        let d = self.disks.len() as u32;
        let mut per_disk: Vec<Vec<u32>> = vec![Vec::new(); d as usize];
        for &b in &blocks {
            per_disk[(b % d) as usize].push(b / d);
        }
        let disk_us = per_disk
            .iter_mut()
            .zip(&mut self.disks)
            .map(|(batch, disk)| disk.read_batch(batch))
            .max()
            .unwrap_or(0);
        let mut records = Vec::new();
        let mut scanned = 0u64;
        for &b in &blocks {
            let page = self
                .store
                .get(b)
                .unwrap_or_else(|e| panic!("worker {} cannot read block {b}: {e}", self.worker_id));
            for r in decode_page(&page, self.payload_bytes) {
                scanned += 1;
                if query.contains_closed(&r.point) {
                    records.push(r);
                }
            }
        }
        let hits_after: u64 = self.disks.iter().map(DiskModel::cache_hits).sum();
        FromWorker {
            query_id,
            worker_id: self.worker_id,
            blocks_requested: requested,
            cache_hits: hits_after - hits_before,
            disk_us,
            cpu_us: scanned * CPU_NS_PER_RECORD / 1000,
            records,
        }
    }

    /// The worker's message loop: consumed by [`run_worker`].
    pub fn run(mut self, rx: Receiver<ToWorker>, tx: Sender<FromWorker>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                ToWorker::Read {
                    query_id,
                    blocks,
                    query,
                } => {
                    let reply = self.handle_read(query_id, blocks, &query);
                    if tx.send(reply).is_err() {
                        return; // coordinator gone
                    }
                }
                ToWorker::Shutdown => return,
            }
        }
    }
}

/// Spawns a worker thread running the message loop.
pub fn run_worker(
    state: WorkerState,
    rx: Receiver<ToWorker>,
    tx: Sender<FromWorker>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("pargrid-worker-{}", state.worker_id))
        .spawn(move || state.run(rx, tx))
        .expect("failed to spawn worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_geom::{Point, Rect};
    use pargrid_gridfile::page::encode_page;
    use pargrid_gridfile::Record;

    fn worker_with_two_blocks() -> WorkerState {
        let mut w = WorkerState::new(0, 0, DiskParams::default());
        let recs_a: Vec<Record> = (0..10)
            .map(|i| Record::new(i, Point::new2(i as f64, i as f64)))
            .collect();
        let recs_b: Vec<Record> = (10..20)
            .map(|i| Record::new(i, Point::new2(i as f64, i as f64)))
            .collect();
        w.store
            .put(0, encode_page(&recs_a, 2, 0, 4096))
            .expect("put");
        w.store
            .put(1, encode_page(&recs_b, 2, 0, 4096))
            .expect("put");
        w
    }

    #[test]
    fn filters_records_against_query() {
        let mut w = worker_with_two_blocks();
        let q = Rect::new2(3.0, 3.0, 12.0, 12.0);
        let reply = w.handle_read(7, vec![0, 1], &q);
        assert_eq!(reply.query_id, 7);
        assert_eq!(reply.blocks_requested, 2);
        let ids: Vec<u64> = reply.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        assert!(reply.disk_us > 0);
        assert!(reply.cpu_us > 0 || CPU_NS_PER_RECORD < 50);
    }

    #[test]
    fn repeated_reads_hit_cache() {
        let mut w = worker_with_two_blocks();
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let first = w.handle_read(0, vec![0, 1], &q);
        let second = w.handle_read(1, vec![0, 1], &q);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(second.cache_hits, 2);
        assert!(second.disk_us < first.disk_us);
    }

    #[test]
    #[should_panic(expected = "no block")]
    fn unknown_block_panics() {
        let mut w = worker_with_two_blocks();
        let q = Rect::new2(0.0, 0.0, 1.0, 1.0);
        let _ = w.handle_read(0, vec![99], &q);
    }

    #[test]
    fn multi_disk_worker_parallelizes_batches() {
        // Same blocks, 1 vs 4 disks: batch time shrinks because the disks
        // seek in parallel, while results stay identical.
        let make = |n_disks| {
            let mut w = WorkerState::with_disks(
                0,
                0,
                DiskParams {
                    cache_pages: 0,
                    ..DiskParams::default()
                },
                crate::store::BlockStore::memory(),
                n_disks,
            );
            for i in 0..8u32 {
                let recs: Vec<Record> = (0..4)
                    .map(|j| Record::new(i as u64 * 4 + j, Point::new2(j as f64, j as f64)))
                    .collect();
                w.store.put(i, encode_page(&recs, 2, 0, 4096)).expect("put");
            }
            w
        };
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let mut one = make(1);
        let mut four = make(4);
        let r1 = one.handle_read(0, (0..8).collect(), &q);
        let r4 = four.handle_read(0, (0..8).collect(), &q);
        assert_eq!(r1.records, r4.records);
        assert!(
            r4.disk_us < r1.disk_us,
            "4 disks {} not faster than 1 disk {}",
            r4.disk_us,
            r1.disk_us
        );
    }

    #[test]
    fn threaded_loop_round_trip() {
        let (to_tx, to_rx) = crossbeam::channel::unbounded();
        let (from_tx, from_rx) = crossbeam::channel::unbounded();
        let handle = run_worker(worker_with_two_blocks(), to_rx, from_tx);
        to_tx
            .send(ToWorker::Read {
                query_id: 1,
                blocks: vec![0],
                query: Rect::new2(0.0, 0.0, 5.0, 5.0),
            })
            .expect("send");
        let reply = from_rx.recv().expect("reply");
        assert_eq!(reply.records.len(), 6); // ids 0..=5 within [0,5] closed
        to_tx.send(ToWorker::Shutdown).expect("send shutdown");
        handle.join().expect("worker joins cleanly");
    }
}
