//! Virtual-time disk model with buffer cache.
//!
//! Calibrated to a mid-90s SCSI disk of the SP-2 era: ~12 ms for a random
//! 8 KB page read (seek + rotational latency + transfer), ~2 ms when the arm
//! is already on the neighboring block (sequential read), ~0.1 ms for a
//! buffer-cache hit.

use crate::cache::LruCache;

/// Disk service-time parameters, in virtual microseconds.
#[derive(Clone, Copy, Debug)]
pub struct DiskParams {
    /// Random page read (seek + rotation + transfer).
    pub miss_us: u64,
    /// Page read when the previous read was the physically preceding block.
    pub sequential_us: u64,
    /// Buffer-cache hit.
    pub hit_us: u64,
    /// Buffer-cache capacity in pages (0 = the simulator's raw-I/O mode).
    pub cache_pages: usize,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            miss_us: 12_000,
            sequential_us: 2_000,
            hit_us: 100,
            cache_pages: 512,
        }
    }
}

impl DiskParams {
    /// The paper's simulator assumptions for §2: raw disk I/O, no caching.
    pub fn raw_io() -> Self {
        DiskParams {
            cache_pages: 0,
            ..Self::default()
        }
    }
}

/// One worker's disk: accumulates virtual busy time.
#[derive(Debug)]
pub struct DiskModel {
    params: DiskParams,
    cache: LruCache,
    last_block: Option<u32>,
    busy_us: u64,
    blocks_read: u64,
    cache_hits: u64,
    /// Service-time multiplier (1 = healthy). Raised by the
    /// [`crate::FaultKind::SlowDisk`] straggler fault.
    slowdown: u64,
}

impl DiskModel {
    /// Creates an idle disk.
    pub fn new(params: DiskParams) -> Self {
        DiskModel {
            cache: LruCache::new(params.cache_pages),
            params,
            last_block: None,
            busy_us: 0,
            blocks_read: 0,
            cache_hits: 0,
            slowdown: 1,
        }
    }

    /// Multiplies every subsequent service time by `factor` (clamped to at
    /// least 1) — the straggler-disk fault hook.
    pub fn set_slowdown(&mut self, factor: u64) {
        self.slowdown = factor.max(1);
    }

    /// Services a batch of block reads (sorted internally so sequential
    /// blocks benefit from the arm position, as a real elevator scheduler
    /// would). Returns the virtual time consumed by this batch.
    pub fn read_batch(&mut self, blocks: &mut [u32]) -> u64 {
        blocks.sort_unstable();
        let mut batch_us = 0;
        for &b in blocks.iter() {
            batch_us += self.read_block(b).us;
        }
        batch_us
    }

    /// Services one block read at the current arm position, returning its
    /// cost. Callers batching several queries together (the worker's elevator
    /// pass) are responsible for issuing blocks in sorted order; this method
    /// charges whatever the arm movement actually costs.
    pub fn read_block(&mut self, block: u32) -> BlockCost {
        self.blocks_read += 1;
        let (base_us, hit) = if self.cache.touch(block) {
            self.cache_hits += 1;
            (self.params.hit_us, true)
        } else if self.last_block == Some(block.wrapping_sub(1)) {
            (self.params.sequential_us, false)
        } else {
            (self.params.miss_us, false)
        };
        let us = base_us * self.slowdown;
        self.last_block = Some(block);
        self.busy_us += us;
        BlockCost { us, hit }
    }

    /// Invalidates a block in the buffer cache — the write-coherence hook.
    /// A block whose store bytes were just rewritten (scrub repair, a
    /// mutation) must pay a fresh miss on its next read instead of being
    /// billed as a hit on the stale cached copy. Returns whether the block
    /// was cached. The arm position is untouched: rewriting a block does not
    /// move the head.
    pub fn invalidate(&mut self, block: u32) -> bool {
        self.cache.remove(block)
    }

    /// Total virtual busy time so far.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Total blocks read (cache hits included).
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Total cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Pages currently resident in the buffer cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Buffer-cache capacity in pages.
    pub fn cache_capacity(&self) -> usize {
        self.params.cache_pages
    }
}

/// Cost of one block read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockCost {
    /// Virtual time consumed, microseconds.
    pub us: u64,
    /// Whether the read was a buffer-cache hit.
    pub hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DiskParams {
        DiskParams {
            miss_us: 1000,
            sequential_us: 100,
            hit_us: 10,
            cache_pages: 4,
        }
    }

    #[test]
    fn random_reads_cost_misses() {
        let mut d = DiskModel::new(params());
        let t = d.read_batch(&mut [10, 20, 30]);
        // 10 is a miss, 20 and 30 are non-sequential misses.
        assert_eq!(t, 3000);
        assert_eq!(d.blocks_read(), 3);
        assert_eq!(d.cache_hits(), 0);
    }

    #[test]
    fn sequential_run_is_cheap() {
        let mut d = DiskModel::new(params());
        let t = d.read_batch(&mut [5, 6, 7, 8]);
        // First block seeks, the rest stream.
        assert_eq!(t, 1000 + 3 * 100);
    }

    #[test]
    fn batch_sorts_for_elevator_order() {
        let mut d = DiskModel::new(params());
        let t = d.read_batch(&mut [8, 5, 7, 6]);
        assert_eq!(t, 1000 + 3 * 100);
    }

    #[test]
    fn rereads_hit_cache() {
        let mut d = DiskModel::new(params());
        d.read_batch(&mut [1, 2, 3]);
        let t = d.read_batch(&mut [1, 2, 3]);
        assert_eq!(t, 30);
        assert_eq!(d.cache_hits(), 3);
    }

    #[test]
    fn raw_io_never_caches() {
        let mut d = DiskModel::new(DiskParams {
            cache_pages: 0,
            ..params()
        });
        d.read_batch(&mut [1]);
        d.read_batch(&mut [1]);
        assert_eq!(d.cache_hits(), 0);
        // Re-reading the same block is not "sequential" (block != last+1).
        assert_eq!(d.busy_us(), 2000);
    }

    #[test]
    fn read_block_tags_hits() {
        let mut d = DiskModel::new(params());
        let first = d.read_block(9);
        assert_eq!(
            first,
            BlockCost {
                us: 1000,
                hit: false
            }
        );
        let seq = d.read_block(10);
        assert_eq!(
            seq,
            BlockCost {
                us: 100,
                hit: false
            }
        );
        let hit = d.read_block(9);
        assert_eq!(hit, BlockCost { us: 10, hit: true });
        assert_eq!(d.cache_len(), 2);
        assert_eq!(d.cache_capacity(), 4);
    }

    #[test]
    fn slowdown_multiplies_every_service_time() {
        let mut d = DiskModel::new(params());
        d.set_slowdown(10);
        assert_eq!(d.read_block(5).us, 10_000, "miss is 10x");
        assert_eq!(d.read_block(6).us, 1_000, "sequential is 10x");
        assert_eq!(d.read_block(5).us, 100, "cache hit is 10x");
        assert_eq!(d.busy_us(), 11_100);
        // Clamped: zero means healthy, not free.
        d.set_slowdown(0);
        assert_eq!(d.read_block(6).us, 10, "hit back at 1x");
    }

    #[test]
    fn busy_time_accumulates() {
        let mut d = DiskModel::new(params());
        let a = d.read_batch(&mut [1]);
        let b = d.read_batch(&mut [100]);
        assert_eq!(d.busy_us(), a + b);
    }
}
