//! Shared engine counters and their snapshot types.
//!
//! Workers publish lifetime totals and gauges into lock-free atomics after
//! every batch they service; the coordinator-side handle exposes them as an
//! [`EngineStats`] snapshot via `ParallelGridFile::stats`. This is what lets
//! the engine API take `&self`: observability no longer requires exclusive
//! access to worker state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One worker's atomically-published counters.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Lifetime blocks fetched (cache hits included).
    pub blocks_fetched: AtomicU64,
    /// Lifetime buffer-cache hits.
    pub cache_hits: AtomicU64,
    /// Lifetime virtual disk busy time, microseconds (summed over the
    /// worker's disks).
    pub disk_busy_us: AtomicU64,
    /// Lifetime virtual *wall* busy time, microseconds: per batch, the
    /// maximum over the worker's disks of that batch's charges (they seek in
    /// parallel) plus the batch's CPU time. For one disk this equals
    /// `disk_busy_us` + CPU; for `D` disks it is what the node actually
    /// spends, unlike the per-disk sum.
    pub busy_wall_us: AtomicU64,
    /// Set when the worker fail-stops (injected fault or thread death). The
    /// coordinator plans queries around dead workers and fails their
    /// in-flight requests over to replicas.
    pub dead: AtomicBool,
    /// Error replies sent (unreadable blocks, injected poison).
    pub error_replies: AtomicU64,
    /// Redelivered requests discarded by seq dedup (the coordinator
    /// retransmitted work this worker had already performed, or a
    /// duplicated message arrived twice).
    pub dup_requests_dropped: AtomicU64,
    /// Number of batches serviced (each `ToWorker::Process` drain is one).
    pub batches: AtomicU64,
    /// Total requests across all batches (mean batch size = this / batches).
    pub batched_requests: AtomicU64,
    /// Largest batch serviced so far (queue-depth high-water mark).
    pub max_batch: AtomicU64,
    /// Current pages in the fullest of this worker's LRU caches (gauge).
    pub cache_len: AtomicU64,
    /// High-water mark of `cache_len`.
    pub max_cache_len: AtomicU64,
}

/// Counters shared between the engine handle and its worker threads.
#[derive(Debug)]
pub struct SharedStats {
    /// Queries issued through any session of the engine.
    pub queries: AtomicU64,
    /// Failed-over requests retried against a replica (per-request, not
    /// per-block).
    pub retries: AtomicU64,
    /// Blocks served by a replica instead of their (dead or erroring)
    /// primary location.
    pub failed_over_blocks: AtomicU64,
    /// Requests retransmitted after a reply timeout (bounded, backed-off;
    /// the lost-message defense).
    pub retransmits: AtomicU64,
    /// Hedge requests dispatched to replicas of slow primaries.
    pub hedges: AtomicU64,
    /// Corrupted blocks repaired (scrubbed) from their replica copy.
    pub scrubbed: AtomicU64,
    /// Queries whose deadline budget expired before every reply arrived
    /// (answered incomplete).
    pub deadline_expired: AtomicU64,
    /// Bucket copies migrated by `ParallelGridFile::rebalance`.
    pub rebalance_moves: AtomicU64,
    /// Page bytes copied by rebalance migrations.
    pub rebalance_bytes: AtomicU64,
    /// Per-worker counters, indexed by worker id (each behind an `Arc` so
    /// the owning worker thread can hold its slot directly).
    pub workers: Vec<Arc<WorkerCounters>>,
}

impl SharedStats {
    /// Zeroed counters for `n_workers` workers.
    pub fn new(n_workers: usize) -> Self {
        SharedStats {
            queries: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failed_over_blocks: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            scrubbed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            rebalance_moves: AtomicU64::new(0),
            rebalance_bytes: AtomicU64::new(0),
            workers: (0..n_workers)
                .map(|_| Arc::new(WorkerCounters::default()))
                .collect(),
        }
    }

    /// Whether worker `w` is still alive.
    pub fn is_alive(&self, w: usize) -> bool {
        !self.workers[w].dead.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot of all counters (relaxed loads; exact once
    /// the workers are quiescent).
    pub fn snapshot(&self) -> EngineStats {
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failed_over_blocks: self.failed_over_blocks.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            scrubbed: self.scrubbed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            rebalance_moves: self.rebalance_moves.load(Ordering::Relaxed),
            rebalance_bytes: self.rebalance_bytes.load(Ordering::Relaxed),
            workers: self
                .workers
                .iter()
                .map(|w| WorkerStats {
                    blocks_fetched: w.blocks_fetched.load(Ordering::Relaxed),
                    cache_hits: w.cache_hits.load(Ordering::Relaxed),
                    disk_busy_us: w.disk_busy_us.load(Ordering::Relaxed),
                    busy_wall_us: w.busy_wall_us.load(Ordering::Relaxed),
                    alive: !w.dead.load(Ordering::Relaxed),
                    error_replies: w.error_replies.load(Ordering::Relaxed),
                    dup_requests_dropped: w.dup_requests_dropped.load(Ordering::Relaxed),
                    batches: w.batches.load(Ordering::Relaxed),
                    batched_requests: w.batched_requests.load(Ordering::Relaxed),
                    max_batch: w.max_batch.load(Ordering::Relaxed),
                    cache_len: w.cache_len.load(Ordering::Relaxed),
                    max_cache_len: w.max_cache_len.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Point-in-time view of one worker's counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerStats {
    /// Lifetime blocks fetched (cache hits included).
    pub blocks_fetched: u64,
    /// Lifetime buffer-cache hits.
    pub cache_hits: u64,
    /// Lifetime virtual disk busy time, microseconds (summed over disks).
    pub disk_busy_us: u64,
    /// Lifetime virtual wall busy time, microseconds (parallel disks count
    /// once per batch; includes CPU).
    pub busy_wall_us: u64,
    /// Whether the worker is still alive.
    pub alive: bool,
    /// Error replies sent.
    pub error_replies: u64,
    /// Redelivered requests discarded by seq dedup.
    pub dup_requests_dropped: u64,
    /// Batches serviced.
    pub batches: u64,
    /// Total requests across all batches.
    pub batched_requests: u64,
    /// Largest batch serviced.
    pub max_batch: u64,
    /// Current pages in the fullest local LRU cache.
    pub cache_len: u64,
    /// High-water mark of `cache_len`.
    pub max_cache_len: u64,
}

impl Default for WorkerStats {
    fn default() -> Self {
        WorkerStats {
            blocks_fetched: 0,
            cache_hits: 0,
            disk_busy_us: 0,
            busy_wall_us: 0,
            alive: true,
            error_replies: 0,
            dup_requests_dropped: 0,
            batches: 0,
            batched_requests: 0,
            max_batch: 0,
            cache_len: 0,
            max_cache_len: 0,
        }
    }
}

/// Point-in-time view of the whole engine's counters.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Queries issued so far.
    pub queries: u64,
    /// Failed-over requests retried against a replica.
    pub retries: u64,
    /// Blocks served by a replica instead of their primary location.
    pub failed_over_blocks: u64,
    /// Requests retransmitted after a reply timeout.
    pub retransmits: u64,
    /// Hedge requests dispatched to replicas of slow primaries.
    pub hedges: u64,
    /// Corrupted blocks repaired from their replica copy.
    pub scrubbed: u64,
    /// Queries answered incomplete because their deadline budget expired.
    pub deadline_expired: u64,
    /// Bucket copies migrated by rebalance so far.
    pub rebalance_moves: u64,
    /// Page bytes copied by rebalance migrations so far.
    pub rebalance_bytes: u64,
    /// Per-worker snapshots, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl EngineStats {
    /// Total blocks fetched across workers.
    pub fn total_blocks(&self) -> u64 {
        self.workers.iter().map(|w| w.blocks_fetched).sum()
    }

    /// Total cache hits across workers.
    pub fn total_cache_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.cache_hits).sum()
    }

    /// Busy time of the busiest worker, microseconds.
    pub fn max_disk_busy_us(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.disk_busy_us)
            .max()
            .unwrap_or(0)
    }

    /// Number of workers still alive.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Mean requests per serviced batch, over **live** workers only.
    ///
    /// A fail-stopped worker's counters freeze at death, so averaging it in
    /// would mix a truncated history into a live-fleet metric: after a
    /// failover the survivors service *larger* batches (they absorb the dead
    /// worker's buckets), and that shift is exactly what this mean should
    /// show. The dead worker's frozen counters remain available per-worker
    /// in [`EngineStats::workers`].
    pub fn mean_batch(&self) -> f64 {
        let live = || self.workers.iter().filter(|w| w.alive);
        let batches: u64 = live().map(|w| w.batches).sum();
        if batches == 0 {
            return 0.0;
        }
        let requests: u64 = live().map(|w| w.batched_requests).sum();
        requests as f64 / batches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_stores() {
        let shared = SharedStats::new(2);
        shared.queries.store(5, Ordering::Relaxed);
        shared.workers[1]
            .blocks_fetched
            .store(40, Ordering::Relaxed);
        shared.workers[1].cache_hits.store(7, Ordering::Relaxed);
        shared.workers[0].batches.store(2, Ordering::Relaxed);
        shared.workers[0]
            .batched_requests
            .store(6, Ordering::Relaxed);
        let snap = shared.snapshot();
        assert_eq!(snap.queries, 5);
        assert_eq!(snap.total_blocks(), 40);
        assert_eq!(snap.total_cache_hits(), 7);
        assert_eq!(snap.mean_batch(), 3.0);
    }

    #[test]
    fn mean_batch_excludes_dead_workers() {
        let shared = SharedStats::new(2);
        // Live worker: 2 batches of 3 requests. Dead worker: frozen history
        // of 10 batches of 1 request that must not drag the mean down.
        shared.workers[0].batches.store(2, Ordering::Relaxed);
        shared.workers[0]
            .batched_requests
            .store(6, Ordering::Relaxed);
        shared.workers[1].batches.store(10, Ordering::Relaxed);
        shared.workers[1]
            .batched_requests
            .store(10, Ordering::Relaxed);
        shared.workers[1].dead.store(true, Ordering::Relaxed);
        let snap = shared.snapshot();
        assert_eq!(snap.mean_batch(), 3.0);
        assert_eq!(snap.live_workers(), 1);
    }

    #[test]
    fn empty_engine_stats_are_zero() {
        let snap = SharedStats::new(0).snapshot();
        assert_eq!(snap.total_blocks(), 0);
        assert_eq!(snap.max_disk_busy_us(), 0);
        assert_eq!(snap.mean_batch(), 0.0);
    }
}
