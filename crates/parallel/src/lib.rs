//! Shared-nothing parallel grid file engine — the SP-2 substitute (§3.5).
//!
//! The paper ran parallel grid files on a 16-processor IBM SP-2: an SPMD
//! organization with one *coordinator* and `P` *workers*, each owning a
//! local disk. The coordinator translates a range query into per-worker
//! block requests; workers read the blocks from their disks, filter the
//! qualifying records and ship them back.
//!
//! We reproduce that architecture with real threads and real message
//! passing (crossbeam channels; the pages that move are real encoded
//! buckets), while **disk and network *times* are virtual**: a calibrated
//! cost model of a mid-90s disk (seek + rotation + transfer per 8 KB block,
//! LRU buffer cache) and an SP-2-class interconnect (per-message latency +
//! bandwidth). Virtual time makes the reproduction deterministic and
//! hardware-independent while preserving the quantities Tables 4–5 report:
//! blocks fetched, communication time and elapsed time.
//!
//! See `DESIGN.md` §3 for why this substitution preserves the paper's
//! observations (sub-linear elapsed-time speedup, communication growing with
//! the query ratio, cache effects on animation workloads).
//!
//! The engine is a **shared query service**: all query methods take `&self`,
//! so one engine serves any number of client threads, each through its own
//! [`engine::QuerySession`]. A coordinator-side concurrent runner
//! ([`engine::ParallelGridFile::run_workload_concurrent`]) admits a window
//! of in-flight queries whose block requests workers service as combined
//! elevator batches, yielding throughput metrics
//! ([`pargrid_sim::ThroughputStats`]) on top of the paper's per-query
//! response times.
//!
//! Built over a [`pargrid_core::ReplicatedAssignment`]
//! ([`engine::ParallelGridFile::build_replicated`]), the engine is
//! additionally **fault-tolerant**: chained-declustered replicas let the
//! coordinator plan around dead workers and retry stranded requests, with
//! deterministic failures injectable through a [`fault::FaultPlan`].
//!
//! Beyond fail-stop, the fault model covers a hostile environment — lost,
//! duplicated, delayed, and reordered messages; silent block corruption;
//! straggler disks — and the engine answers each: sequence-numbered
//! dispatch with worker-side dedup and bounded retransmission, per-block
//! checksums with replica scrub-repair, hedged reads against the replica of
//! a slow primary ([`LatencyConfig::with_hedging`]), and a per-query
//! real-time deadline ([`LatencyConfig::with_deadline_us`]) that converts
//! unbounded waits into explicit incomplete answers. Randomized-but-
//! reproducible fault schedules come from [`fault::FaultPlan::chaos`].
//!
//! Coordinator → worker dispatch rides a sharded lock-free
//! [`ring::RequestRing`] per worker by default; the original channel
//! transport stays available via [`ring::DispatchMode::Channel`] for A/B
//! comparison (see `BENCH_hotpath.json` at the repo root).
//!
//! ```
//! use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
//! use pargrid_datagen::uniform2d;
//! use pargrid_geom::Rect;
//! use pargrid_parallel::{EngineConfig, ParallelGridFile};
//! use std::sync::Arc;
//!
//! let dataset = uniform2d(42);
//! let grid = Arc::new(dataset.build_grid_file());
//! let input = DeclusterInput::from_grid_file(&grid);
//! let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity)
//!     .assign(&input, 4, 1);
//!
//! // Four worker threads, each owning one simulated disk. The handle is
//! // shared (`&self`): clients open sessions against it.
//! let engine = ParallelGridFile::build(Arc::clone(&grid), &assignment,
//!                                      EngineConfig::default());
//! let mut session = engine.session();
//! let out = session.query(&Rect::new2(0.0, 0.0, 500.0, 500.0));
//! assert!(!out.records.is_empty());
//! assert!(out.elapsed_us > 0);
//! assert_eq!(engine.stats().queries, 1);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod disk;
pub mod engine;
pub mod error;
pub mod fault;
pub mod message;
pub mod ring;
pub mod stats;
pub mod store;
pub mod worker;

pub use backend::{InProcessBackend, WorkerBackend};
pub use cache::{BlockBuf, BufferPool, LruCache};
pub use disk::{BlockCost, DiskModel, DiskParams};
pub use engine::{
    EngineConfig, LatencyConfig, MutationOutcome, NetParams, ObsConfig, ParallelGridFile,
    QueryOutcome, QuerySession, RebalanceOp, RebalanceReport, ResilienceConfig, RunStats,
};
pub use error::{EngineError, StoreError};
pub use fault::{FaultKind, FaultPlan, WorkerFault};
pub use message::{FromWorker, QueryPriority, RawBlocks, ToWorker};
pub use pargrid_sim::ThroughputStats;
pub use ring::{DispatchMode, RequestRing, WorkerInbox, WorkerOutbox};
pub use stats::{EngineStats, WorkerStats};
pub use store::BlockStore;

/// The crate's most commonly used types, flat: engine construction and the
/// grouped config surface, the query-service types, and the typed errors
/// every fallible surface reports.
pub mod prelude {
    pub use crate::engine::{
        EngineConfig, LatencyConfig, MutationOutcome, NetParams, ObsConfig, ParallelGridFile,
        QueryOutcome, QuerySession, RebalanceOp, RebalanceReport, ResilienceConfig, RunStats,
    };
    pub use crate::error::{EngineError, StoreError};
    pub use crate::fault::{FaultKind, FaultPlan, WorkerFault};
    pub use crate::message::QueryPriority;
    pub use crate::ring::DispatchMode;
    pub use crate::stats::{EngineStats, WorkerStats};
    pub use crate::store::BlockStore;
}
