//! Worker block stores: in-memory or backed by a real per-worker file,
//! with per-block checksums verified on every read.
//!
//! The paper's simulator "declusters [the dataset] to separate files
//! corresponding to every disk being simulated". The file-backed store
//! reproduces that layout: each worker owns one file of fixed-size blocks
//! and serves reads with positioned I/O (`pread`), so the data path of the
//! SPMD engine can exercise the real filesystem while timing stays on the
//! virtual disk model.
//!
//! Every `put` records a CRC-32 of the block's bytes; every read verifies
//! it. Silent corruption (bit rot, an injected [`crate::FaultKind::CorruptBlock`])
//! therefore surfaces as a [`StoreError::Corrupt`] error instead of
//! quietly decoding garbage, and the coordinator can repair the block from
//! its chained-declustering replica via [`BlockStore::overwrite`].
//!
//! Two read surfaces:
//! - [`BlockStore::read_block`] — the hot path. Returns a [`BlockBuf`]
//!   that borrows in-memory blocks outright and serves file-backed blocks
//!   from a recycled [`BufferPool`] buffer, so steady-state reads allocate
//!   nothing. Errors are the typed [`StoreError`].
//! - [`BlockStore::get`] — the legacy owned-`Vec` surface (used by the
//!   scrub/repair path, which ships bytes across threads), kept with its
//!   original `io::Result` signature.

use crate::cache::{BlockBuf, BufferPool};
use crate::error::StoreError;
use pargrid_gridfile::crc32;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Where a worker's blocks physically live.
enum Backend {
    /// Blocks held in memory (the default; fastest, fully deterministic).
    Memory(HashMap<u32, Vec<u8>>),
    /// Blocks in a single file of `block_bytes`-sized slots, block id =
    /// slot index.
    File {
        /// The backing file.
        file: File,
        /// Size of every block.
        block_bytes: usize,
        /// Number of blocks written.
        n_blocks: u32,
    },
}

/// A worker's block store: a backend plus per-block CRC-32 checksums and a
/// buffer pool for allocation-free file reads.
pub struct BlockStore {
    backend: Backend,
    /// CRC-32 per stored block, checked on every read.
    sums: HashMap<u32, u32>,
    /// Recycled read buffers (file backend; see [`BlockStore::read_block`]).
    pool: BufferPool,
}

impl BlockStore {
    /// Creates an empty in-memory store.
    pub fn memory() -> Self {
        BlockStore {
            backend: Backend::Memory(HashMap::new()),
            sums: HashMap::new(),
            pool: BufferPool::new(),
        }
    }

    /// Creates a file-backed store at `path` (truncating any existing file).
    pub fn file<P: AsRef<Path>>(path: P, block_bytes: usize) -> io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(BlockStore {
            backend: Backend::File {
                file,
                block_bytes,
                n_blocks: 0,
            },
            sums: HashMap::new(),
            pool: BufferPool::new(),
        })
    }

    /// Stores a block, recording its checksum. For file stores, blocks must
    /// be appended in id order (the engine allocates ids sequentially per
    /// worker).
    ///
    /// # Panics
    /// Panics on id gaps or size mismatches for file stores.
    pub fn put(&mut self, block: u32, bytes: Vec<u8>) -> io::Result<()> {
        self.sums.insert(block, crc32(&bytes));
        match &mut self.backend {
            Backend::Memory(map) => {
                map.insert(block, bytes);
                Ok(())
            }
            Backend::File {
                file,
                block_bytes,
                n_blocks,
            } => {
                assert_eq!(
                    bytes.len(),
                    *block_bytes,
                    "block size mismatch: {} vs {block_bytes}",
                    bytes.len()
                );
                assert_eq!(block, *n_blocks, "file store requires sequential block ids");
                let offset = block as u64 * *block_bytes as u64;
                write_all_at(file, &bytes, offset)?;
                *n_blocks += 1;
                Ok(())
            }
        }
    }

    /// Replaces an *existing* block's bytes and refreshes its checksum —
    /// the repair half of a scrub. Unlike [`BlockStore::put`], the block
    /// must already exist (`io::ErrorKind::NotFound` otherwise); file
    /// stores additionally require the same block size.
    pub fn overwrite(&mut self, block: u32, bytes: Vec<u8>) -> io::Result<()> {
        match &mut self.backend {
            Backend::Memory(map) => {
                if !map.contains_key(&block) {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no block {block} to overwrite"),
                    ));
                }
                self.sums.insert(block, crc32(&bytes));
                map.insert(block, bytes);
                Ok(())
            }
            Backend::File {
                file,
                block_bytes,
                n_blocks,
            } => {
                if block >= *n_blocks {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no block {block} to overwrite"),
                    ));
                }
                if bytes.len() != *block_bytes {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("block size mismatch: {} vs {block_bytes}", bytes.len()),
                    ));
                }
                self.sums.insert(block, crc32(&bytes));
                write_all_at(file, &bytes, block as u64 * *block_bytes as u64)
            }
        }
    }

    /// Writes a block that may or may not already exist: an existing block
    /// is overwritten ([`BlockStore::overwrite`] semantics), a new one is
    /// appended ([`BlockStore::put`] semantics) — the mutation path's write
    /// surface, where a bucket rewrite touches existing blocks and a bucket
    /// split appends fresh ones in the same batch.
    ///
    /// # Panics
    /// Panics (like `put`) if a *new* block id leaves a gap in a file store.
    pub fn upsert(&mut self, block: u32, bytes: Vec<u8>) -> io::Result<()> {
        let exists = match &self.backend {
            Backend::Memory(map) => map.contains_key(&block),
            Backend::File { n_blocks, .. } => block < *n_blocks,
        };
        if exists {
            self.overwrite(block, bytes)
        } else {
            self.put(block, bytes)
        }
    }

    /// Flips a byte of the stored block *without* updating its checksum —
    /// the fault-injection hook behind [`crate::FaultKind::CorruptBlock`].
    /// Returns whether the block existed (and was corrupted).
    pub fn corrupt(&mut self, block: u32) -> bool {
        match &mut self.backend {
            Backend::Memory(map) => match map.get_mut(&block) {
                Some(bytes) if !bytes.is_empty() => {
                    bytes[0] ^= 0xFF;
                    true
                }
                _ => false,
            },
            Backend::File {
                file,
                block_bytes,
                n_blocks,
            } => {
                if block >= *n_blocks || *block_bytes == 0 {
                    return false;
                }
                let offset = block as u64 * *block_bytes as u64;
                let mut byte = [0u8; 1];
                if read_exact_at(file, &mut byte, offset).is_err() {
                    return false;
                }
                byte[0] ^= 0xFF;
                write_all_at(file, &byte, offset).is_ok()
            }
        }
    }

    /// Reads a block's bytes without copying where possible, verifying the
    /// checksum. In-memory blocks come back borrowed ([`BlockBuf::Borrowed`]);
    /// file-backed blocks land in a recycled pool buffer
    /// ([`BlockBuf::Pooled`]) that returns to the pool when the `BlockBuf`
    /// drops. A block that does not exist is [`StoreError::NotFound`]; one
    /// whose bytes no longer match their recorded checksum is
    /// [`StoreError::Corrupt`]. Neither panics, so a worker can answer the
    /// affected request with an error reply and keep serving.
    pub fn read_block(&self, block: u32) -> Result<BlockBuf<'_>, StoreError> {
        let buf = match &self.backend {
            Backend::Memory(map) => {
                let bytes = map
                    .get(&block)
                    .ok_or(StoreError::NotFound { block })?
                    .as_slice();
                BlockBuf::Borrowed(bytes)
            }
            Backend::File {
                file,
                block_bytes,
                n_blocks,
            } => {
                if block >= *n_blocks {
                    return Err(StoreError::NotFound { block });
                }
                let mut buf = self.pool.take(*block_bytes);
                if let Err(e) = read_exact_at(file, &mut buf, block as u64 * *block_bytes as u64) {
                    self.pool.put(buf);
                    return Err(StoreError::Io(e));
                }
                BlockBuf::Pooled {
                    pool: &self.pool,
                    buf: Some(buf),
                }
            }
        };
        if let Some(&expected) = self.sums.get(&block) {
            let actual = crc32(&buf);
            if actual != expected {
                return Err(StoreError::Corrupt {
                    block,
                    stored: expected,
                    actual,
                });
            }
        }
        Ok(buf)
    }

    /// Reads a block into an owned `Vec`, verifying its checksum — the
    /// legacy surface over [`BlockStore::read_block`], kept for callers
    /// that ship the bytes elsewhere (scrub repair). Errors map through
    /// [`StoreError`]'s [`io::Error`] conversion (`NotFound` →
    /// `io::ErrorKind::NotFound`, `Corrupt` → `io::ErrorKind::InvalidData`).
    pub fn get(&self, block: u32) -> io::Result<Vec<u8>> {
        Ok(self.read_block(block).map_err(io::Error::from)?.to_vec())
    }

    /// Pool telemetry: `(allocations, reuses)` on the file read path. A
    /// steady-state workload holds `allocations` flat while `reuses` grows —
    /// asserted by the read-path tests and visible in `BENCH_hotpath.json`'s
    /// `store_read` pair.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool.allocations(), self.pool.reuses())
    }

    /// Every stored block id, ascending — the enumeration a remote worker
    /// backend walks to upload this store's contents to a worker process.
    pub fn block_ids(&self) -> Vec<u32> {
        match &self.backend {
            Backend::Memory(map) => {
                let mut ids: Vec<u32> = map.keys().copied().collect();
                ids.sort_unstable();
                ids
            }
            Backend::File { n_blocks, .. } => (0..*n_blocks).collect(),
        }
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Memory(map) => map.len(),
            Backend::File { n_blocks, .. } => *n_blocks as usize,
        }
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    file.write_all_at(buf, offset)
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(buf)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrip() {
        let mut s = BlockStore::memory();
        s.put(0, vec![1, 2, 3]).expect("put");
        s.put(5, vec![9]).expect("put");
        assert_eq!(s.get(0).expect("get"), vec![1, 2, 3]);
        assert_eq!(s.get(5).expect("get"), vec![9]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pargrid_store_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = BlockStore::file(dir.join("w0.blocks"), 64).expect("create");
        for i in 0..10u32 {
            s.put(i, vec![i as u8; 64]).expect("put");
        }
        for i in (0..10u32).rev() {
            assert_eq!(s.get(i).expect("get"), vec![i as u8; 64]);
        }
        assert_eq!(s.len(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "sequential block ids")]
    fn file_store_rejects_gaps() {
        let dir = std::env::temp_dir().join("pargrid_store_gap_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = BlockStore::file(dir.join("w.blocks"), 16).expect("create");
        let _ = s.put(3, vec![0; 16]);
    }

    #[test]
    fn missing_block_is_not_found_error() {
        let s = BlockStore::memory();
        let err = s.get(7).expect_err("missing block must error");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let dir = std::env::temp_dir().join("pargrid_store_missing_test");
        let _ = std::fs::remove_dir_all(&dir);
        let f = BlockStore::file(dir.join("w.blocks"), 16).expect("create");
        let err = f.get(0).expect_err("missing block must error");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_block_borrows_memory_blocks_without_alloc() {
        let mut s = BlockStore::memory();
        s.put(0, vec![1, 2, 3]).expect("put");
        {
            let buf = s.read_block(0).expect("read");
            assert!(matches!(buf, BlockBuf::Borrowed(_)));
            assert_eq!(&*buf, &[1, 2, 3]);
        }
        assert_eq!(s.pool_stats(), (0, 0), "memory reads never touch the pool");
        assert!(matches!(
            s.read_block(9),
            Err(StoreError::NotFound { block: 9 })
        ));
    }

    #[test]
    fn read_block_recycles_file_buffers() {
        let dir = std::env::temp_dir().join("pargrid_store_pool_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = BlockStore::file(dir.join("w.blocks"), 64).expect("create");
        for i in 0..4u32 {
            s.put(i, vec![i as u8; 64]).expect("put");
        }
        for round in 0..8 {
            for i in 0..4u32 {
                let buf = s.read_block(i).expect("read");
                assert!(matches!(buf, BlockBuf::Pooled { .. }));
                assert_eq!(&*buf, &vec![i as u8; 64][..], "round {round}");
            }
        }
        let (allocations, reuses) = s.pool_stats();
        assert_eq!(allocations, 1, "steady state reuses one buffer");
        assert_eq!(reuses, 31);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_block_reports_typed_corruption() {
        let mut s = BlockStore::memory();
        s.put(0, vec![7; 16]).expect("put");
        assert!(s.corrupt(0));
        match s.read_block(0) {
            Err(StoreError::Corrupt {
                block,
                stored,
                actual,
            }) => {
                assert_eq!(block, 0);
                assert_ne!(stored, actual);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        };
    }

    #[test]
    fn corruption_is_detected_and_repairable_in_memory() {
        let mut s = BlockStore::memory();
        s.put(0, vec![7; 32]).expect("put");
        assert!(s.corrupt(0), "existing block corrupts");
        let err = s.get(0).expect_err("corrupt block must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        // Repair with the pristine bytes: reads verify again.
        s.overwrite(0, vec![7; 32]).expect("overwrite");
        assert_eq!(s.get(0).expect("get after repair"), vec![7; 32]);
        // Unknown blocks neither corrupt nor overwrite.
        assert!(!s.corrupt(99));
        assert_eq!(
            s.overwrite(99, vec![0]).expect_err("no block").kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn corruption_is_detected_and_repairable_on_file() {
        let dir = std::env::temp_dir().join("pargrid_store_corrupt_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = BlockStore::file(dir.join("w.blocks"), 16).expect("create");
        s.put(0, vec![1; 16]).expect("put");
        s.put(1, vec![2; 16]).expect("put");
        assert!(s.corrupt(1));
        assert_eq!(s.get(0).expect("healthy block").len(), 16);
        let err = s.get(1).expect_err("corrupt block must error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        s.overwrite(1, vec![2; 16]).expect("repair");
        assert_eq!(s.get(1).expect("get after repair"), vec![2; 16]);
        // Wrong-size repair material is rejected.
        assert_eq!(
            s.overwrite(1, vec![0; 8]).expect_err("bad size").kind(),
            io::ErrorKind::InvalidInput
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
