//! Worker block stores: in-memory or backed by a real per-worker file.
//!
//! The paper's simulator "declusters [the dataset] to separate files
//! corresponding to every disk being simulated". The file-backed store
//! reproduces that layout: each worker owns one file of fixed-size blocks
//! and serves reads with positioned I/O (`pread`), so the data path of the
//! SPMD engine can exercise the real filesystem while timing stays on the
//! virtual disk model.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// Where a worker's blocks live.
pub enum BlockStore {
    /// Blocks held in memory (the default; fastest, fully deterministic).
    Memory(HashMap<u32, Vec<u8>>),
    /// Blocks in a single file of `block_bytes`-sized slots, block id =
    /// slot index.
    File {
        /// The backing file.
        file: File,
        /// Size of every block.
        block_bytes: usize,
        /// Number of blocks written.
        n_blocks: u32,
    },
}

impl BlockStore {
    /// Creates an empty in-memory store.
    pub fn memory() -> Self {
        BlockStore::Memory(HashMap::new())
    }

    /// Creates a file-backed store at `path` (truncating any existing file).
    pub fn file<P: AsRef<Path>>(path: P, block_bytes: usize) -> io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(BlockStore::File {
            file,
            block_bytes,
            n_blocks: 0,
        })
    }

    /// Stores a block. For file stores, blocks must be appended in id order
    /// (the engine allocates ids sequentially per worker).
    ///
    /// # Panics
    /// Panics on id gaps or size mismatches for file stores.
    pub fn put(&mut self, block: u32, bytes: Vec<u8>) -> io::Result<()> {
        match self {
            BlockStore::Memory(map) => {
                map.insert(block, bytes);
                Ok(())
            }
            BlockStore::File {
                file,
                block_bytes,
                n_blocks,
            } => {
                assert_eq!(
                    bytes.len(),
                    *block_bytes,
                    "block size mismatch: {} vs {block_bytes}",
                    bytes.len()
                );
                assert_eq!(block, *n_blocks, "file store requires sequential block ids");
                let offset = block as u64 * *block_bytes as u64;
                write_all_at(file, &bytes, offset)?;
                *n_blocks += 1;
                Ok(())
            }
        }
    }

    /// Reads a block's bytes. A block that does not exist is an
    /// `io::ErrorKind::NotFound` error (not a panic), so a worker can answer
    /// the affected request with an error reply and keep serving.
    pub fn get(&self, block: u32) -> io::Result<Vec<u8>> {
        match self {
            BlockStore::Memory(map) => map.get(&block).cloned().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no block {block}"))
            }),
            BlockStore::File {
                file,
                block_bytes,
                n_blocks,
            } => {
                if block >= *n_blocks {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no block {block}"),
                    ));
                }
                let mut buf = vec![0u8; *block_bytes];
                read_exact_at(file, &mut buf, block as u64 * *block_bytes as u64)?;
                Ok(buf)
            }
        }
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        match self {
            BlockStore::Memory(map) => map.len(),
            BlockStore::File { n_blocks, .. } => *n_blocks as usize,
        }
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    file.write_all_at(buf, offset)
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(buf)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrip() {
        let mut s = BlockStore::memory();
        s.put(0, vec![1, 2, 3]).expect("put");
        s.put(5, vec![9]).expect("put");
        assert_eq!(s.get(0).expect("get"), vec![1, 2, 3]);
        assert_eq!(s.get(5).expect("get"), vec![9]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pargrid_store_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = BlockStore::file(dir.join("w0.blocks"), 64).expect("create");
        for i in 0..10u32 {
            s.put(i, vec![i as u8; 64]).expect("put");
        }
        for i in (0..10u32).rev() {
            assert_eq!(s.get(i).expect("get"), vec![i as u8; 64]);
        }
        assert_eq!(s.len(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "sequential block ids")]
    fn file_store_rejects_gaps() {
        let dir = std::env::temp_dir().join("pargrid_store_gap_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = BlockStore::file(dir.join("w.blocks"), 16).expect("create");
        let _ = s.put(3, vec![0; 16]);
    }

    #[test]
    fn missing_block_is_not_found_error() {
        let s = BlockStore::memory();
        let err = s.get(7).expect_err("missing block must error");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let dir = std::env::temp_dir().join("pargrid_store_missing_test");
        let _ = std::fs::remove_dir_all(&dir);
        let f = BlockStore::file(dir.join("w.blocks"), 16).expect("create");
        let err = f.get(0).expect_err("missing block must error");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
