//! Plain-text and CSV output helpers for the experiment harness.
//!
//! Deliberately dependency-free: the harness emits the same rows the paper's
//! tables print, plus machine-readable CSV for re-plotting.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular results table with a header row.
#[derive(Clone, Debug, Default)]
pub struct ResultTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        ResultTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders an aligned plain-text table (the form printed to stdout).
    pub fn to_text(&self) -> String {
        let ncol = self.header.len();
        let mut widths = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-style CSV (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Writes the CSV form to a file, creating parent directories.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats an `f64` with two decimals (the paper's table precision).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new(vec!["method", "m", "resp"]);
        t.push_row(vec!["DM/D", "4", "10.31"]);
        t.push_row(vec!["MiniMax", "32", "1.55"]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("method"));
        assert!(lines[2].trim_start().starts_with("DM/D"));
    }

    #[test]
    fn csv_roundtrip_basics() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("method,m,resp\n"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = ResultTable::new(vec!["a"]);
        t.push_row(vec!["x,y"]);
        t.push_row(vec!["he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = ResultTable::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("pargrid_table_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        sample().write_csv(&path).expect("write must succeed");
        let content = std::fs::read_to_string(&path).expect("file exists");
        assert!(content.contains("MiniMax"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt2_rounds() {
        assert_eq!(fmt2(1.0 / 3.0), "0.33");
        assert_eq!(fmt2(2.0), "2.00");
    }
}
