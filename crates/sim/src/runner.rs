//! Experiment sweep runner: evaluates a set of declustering methods over a
//! range of disk counts, producing the rows behind every figure of §2–3.

use crate::metrics::{count_pairs_on_same_disk, evaluate, EvalStats};
use crate::workload::QueryWorkload;
use pargrid_core::{DeclusterInput, DeclusterMethod};
use pargrid_gridfile::GridFile;

/// One configuration's results: a (method, disk count) point of a figure.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Method label (`DM/D`, `MiniMax`, ...).
    pub method: String,
    /// Number of disks.
    pub m: usize,
    /// The workload metrics.
    pub stats: EvalStats,
    /// Closest pairs placed on the same disk (Tables 2–3), if requested.
    pub closest_same_disk: Option<usize>,
}

/// Runs `methods x disk_counts` over one grid file and workload.
///
/// `closest_pairs`, if provided, is the precomputed nearest-neighbor pair
/// list of [`crate::metrics::closest_pairs`]; passing it fills
/// [`SweepPoint::closest_same_disk`].
pub fn sweep(
    gf: &GridFile,
    input: &DeclusterInput,
    methods: &[DeclusterMethod],
    disk_counts: &[usize],
    workload: &QueryWorkload,
    closest_pairs: Option<&[(usize, usize)]>,
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::with_capacity(methods.len() * disk_counts.len());
    for method in methods {
        for &m in disk_counts {
            let assignment = method.assign(input, m, seed);
            let stats = evaluate(gf, &assignment, workload);
            let closest_same_disk =
                closest_pairs.map(|pairs| count_pairs_on_same_disk(pairs, &assignment));
            out.push(SweepPoint {
                method: method.label(),
                m,
                stats,
                closest_same_disk,
            });
        }
    }
    out
}

/// Speedup relative to the smallest configuration in the sweep (Figure 7
/// right: response time at the base disk count divided by response time at
/// `m` disks). Returns `(m, speedup)` pairs for the given method label.
pub fn speedup_series(points: &[SweepPoint], method: &str) -> Vec<(usize, f64)> {
    let mut series: Vec<&SweepPoint> = points.iter().filter(|p| p.method == method).collect();
    series.sort_by_key(|p| p.m);
    let Some(base) = series.first() else {
        return Vec::new();
    };
    let base_resp = base.stats.mean_response;
    series
        .iter()
        .map(|p| (p.m, base_resp / p.stats.mean_response))
        .collect()
}

/// Normalizes a `(x, throughput)` series by its first point, giving the
/// relative speedup curve of a throughput sweep (e.g. queries/sec versus the
/// in-flight window, normalized to window = 1). Returns an empty vector for
/// an empty series; a zero baseline yields zeros.
pub fn relative_throughput(series: &[(usize, f64)]) -> Vec<(usize, f64)> {
    let Some(&(_, base)) = series.first() else {
        return Vec::new();
    };
    series
        .iter()
        .map(|&(x, v)| (x, if base == 0.0 { 0.0 } else { v / base }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_core::{ConflictPolicy, DeclusterMethod, EdgeWeight, IndexScheme};
    use pargrid_geom::{Point, Rect};
    use pargrid_gridfile::{GridConfig, Record};

    fn tiny_setup() -> (GridFile, DeclusterInput, QueryWorkload) {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4);
        let gf = GridFile::bulk_load(
            cfg,
            (0..144u64).map(|i| {
                Record::new(
                    i,
                    Point::new2((i % 12) as f64 * 8.0 + 4.0, (i / 12) as f64 * 8.0 + 4.0),
                )
            }),
        );
        let input = DeclusterInput::from_grid_file(&gf);
        let w = QueryWorkload::square(&gf.config().domain, 0.05, 60, 11);
        (gf, input, w)
    }

    #[test]
    fn sweep_produces_full_grid_of_points() {
        let (gf, input, w) = tiny_setup();
        let methods = [
            DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
            DeclusterMethod::Minimax(EdgeWeight::Proximity),
        ];
        let disks = [2usize, 4, 8];
        let pairs = crate::metrics::closest_pairs(&input);
        let points = sweep(&gf, &input, &methods, &disks, &w, Some(&pairs), 42);
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(|p| p.closest_same_disk.is_some()));
        // Response decreases (weakly) with more disks for each method.
        for label in ["DM/D", "MiniMax"] {
            let series: Vec<f64> = points
                .iter()
                .filter(|p| p.method == label)
                .map(|p| p.stats.mean_response)
                .collect();
            assert!(
                series.windows(2).all(|w| w[1] <= w[0] + 1e-9),
                "{label}: {series:?}"
            );
        }
    }

    #[test]
    fn speedup_is_one_at_base() {
        let (gf, input, w) = tiny_setup();
        let methods = [DeclusterMethod::Minimax(EdgeWeight::Proximity)];
        let points = sweep(&gf, &input, &methods, &[2, 4, 8], &w, None, 1);
        let s = speedup_series(&points, "MiniMax");
        assert_eq!(s.len(), 3);
        assert!((s[0].1 - 1.0).abs() < 1e-12);
        assert!(s[2].1 >= s[0].1);
    }

    #[test]
    fn unknown_method_gives_empty_series() {
        let points: Vec<SweepPoint> = Vec::new();
        assert!(speedup_series(&points, "nope").is_empty());
    }

    #[test]
    fn relative_throughput_normalizes_by_first() {
        let s = relative_throughput(&[(1, 50.0), (4, 100.0), (8, 125.0)]);
        assert_eq!(s, vec![(1, 1.0), (4, 2.0), (8, 2.5)]);
        assert!(relative_throughput(&[]).is_empty());
        assert_eq!(
            relative_throughput(&[(1, 0.0), (2, 3.0)]),
            vec![(1, 0.0), (2, 0.0)]
        );
    }
}
