//! The paper's performance metrics (§2.2, §3.3).

use crate::workload::QueryWorkload;
use pargrid_core::{Assignment, DeclusterInput, EdgeWeight};
use pargrid_gridfile::GridFile;
use pargrid_obs::nearest_rank_index;

/// Aggregate results of running a workload against one assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalStats {
    /// Mean over queries of `max_i N_i(q)` — the paper's response time.
    pub mean_response: f64,
    /// The paper's optimal response time: mean buckets accessed divided by
    /// the number of disks (a lower bound that ignores integrality).
    pub mean_optimal: f64,
    /// Mean over queries of `ceil(buckets / disks)` — the integral optimum.
    pub mean_optimal_ceil: f64,
    /// Mean number of distinct buckets each query touches.
    pub mean_buckets: f64,
    /// Total buckets fetched across the workload (the SP-2 tables' "response
    /// time by definition" column sums per-query responses instead; see
    /// `total_response`).
    pub total_buckets: u64,
    /// Sum of per-query response times (in buckets).
    pub total_response: u64,
    /// The degree of data balance of the assignment (`B_max * M / B_sum`).
    pub balance_degree: f64,
    /// Standard deviation of per-query response times.
    pub std_response: f64,
    /// 95th percentile of per-query response times (tail latency).
    pub p95_response: u64,
    /// 99th percentile of per-query response times.
    pub p99_response: u64,
    /// Worst per-query response time.
    pub max_response: u64,
    /// Mean additive gap from the per-query lower-bound oracle: for each
    /// query, `response - ceil(buckets / disks)`. Zero means every query
    /// was answered with provably optimal parallelism; always `>= 0`
    /// because the busiest disk can never beat the integral average.
    pub mean_gap: f64,
    /// 95th percentile of per-query additive gaps.
    pub p95_gap: u64,
    /// Worst per-query additive gap.
    pub max_gap: u64,
}

/// Response time of one query: buckets per disk are counted through the
/// assignment; the slowest disk defines the response. Returns
/// `(max_per_disk, total_buckets)`.
pub fn query_response(
    gf: &GridFile,
    assign: &Assignment,
    query: &pargrid_geom::Rect,
) -> (u64, u64) {
    let buckets = gf.range_query_buckets(query);
    let mut per_disk = vec![0u64; assign.n_disks()];
    for &b in &buckets {
        per_disk[assign.disk_of_id(b) as usize] += 1;
    }
    (
        per_disk.into_iter().max().unwrap_or(0),
        buckets.len() as u64,
    )
}

/// Runs a whole workload and aggregates the paper's metrics.
pub fn evaluate(gf: &GridFile, assign: &Assignment, workload: &QueryWorkload) -> EvalStats {
    assert!(!workload.is_empty(), "empty workload");
    let m = assign.n_disks() as f64;
    let mut responses = Vec::with_capacity(workload.len());
    let mut gaps = Vec::with_capacity(workload.len());
    let mut total_buckets = 0u64;
    let mut total_opt_ceil = 0u64;
    for q in &workload.queries {
        let (resp, n) = query_response(gf, assign, q);
        let bound = n.div_ceil(assign.n_disks() as u64);
        debug_assert!(resp >= bound, "response below the lower bound");
        responses.push(resp);
        gaps.push(resp.saturating_sub(bound));
        total_buckets += n;
        total_opt_ceil += bound;
    }
    let nq = workload.len() as f64;
    let total_response: u64 = responses.iter().sum();
    let mean = total_response as f64 / nq;
    let var = responses
        .iter()
        .map(|&r| (r as f64 - mean) * (r as f64 - mean))
        .sum::<f64>()
        / nq;
    responses.sort_unstable();
    gaps.sort_unstable();
    let total_gap: u64 = gaps.iter().sum();
    EvalStats {
        mean_response: mean,
        mean_optimal: total_buckets as f64 / nq / m,
        mean_optimal_ceil: total_opt_ceil as f64 / nq,
        mean_buckets: total_buckets as f64 / nq,
        total_buckets,
        total_response,
        balance_degree: assign.data_balance_degree(),
        std_response: var.sqrt(),
        p95_response: responses[nearest_rank_index(responses.len(), 0.95)],
        p99_response: responses[nearest_rank_index(responses.len(), 0.99)],
        max_response: *responses.last().expect("non-empty"),
        mean_gap: total_gap as f64 / nq,
        p95_gap: gaps[nearest_rank_index(gaps.len(), 0.95)],
        max_gap: *gaps.last().expect("non-empty"),
    }
}

/// Response time on **heterogeneous** disks: disk `i` takes `slowdown[i]`
/// time units per bucket (the paper's simulator assumes all-equal disks;
/// this relaxation measures how robust each declustering scheme's balance
/// is when that assumption breaks). Returns the mean over queries of
/// `max_i N_i(q) * slowdown[i]`.
pub fn evaluate_heterogeneous(
    gf: &GridFile,
    assign: &Assignment,
    workload: &QueryWorkload,
    slowdown: &[f64],
) -> f64 {
    assert_eq!(slowdown.len(), assign.n_disks(), "one slowdown per disk");
    assert!(!workload.is_empty(), "empty workload");
    assert!(
        slowdown.iter().all(|&s| s > 0.0),
        "slowdowns must be positive"
    );
    let mut total = 0.0;
    for q in &workload.queries {
        let buckets = gf.range_query_buckets(q);
        let mut per_disk = vec![0u64; assign.n_disks()];
        for &b in &buckets {
            per_disk[assign.disk_of_id(b) as usize] += 1;
        }
        total += per_disk
            .iter()
            .zip(slowdown)
            .map(|(&n, &s)| n as f64 * s)
            .fold(0.0, f64::max);
    }
    total / workload.len() as f64
}

/// The minimax objective itself: total proximity mass between same-disk
/// bucket pairs. Lower means likely-co-accessed buckets are better spread;
/// its correlation with the *measured* response time (ablation A6) is the
/// empirical justification for using the proximity index as the edge
/// weight. `O(N^2)`.
pub fn intra_disk_proximity(input: &DeclusterInput, assign: &Assignment) -> f64 {
    let w = EdgeWeight::Proximity;
    let n = input.n_buckets();
    let mut total = 0.0;
    for u in 0..n {
        for v in (u + 1)..n {
            if assign.disk_at(u) == assign.disk_at(v) {
                total += w.similarity(input, u, v);
            }
        }
    }
    total
}

/// For every bucket, its *closest* companion under the proximity index —
/// the pair most likely to be co-accessed. Returns deduplicated unordered
/// pairs of input positions. `O(N^2)`, computed once per dataset and reused
/// across methods and disk counts (Tables 2–3).
pub fn closest_pairs(input: &DeclusterInput) -> Vec<(usize, usize)> {
    let n = input.n_buckets();
    let w = EdgeWeight::Proximity;
    let mut pairs = Vec::with_capacity(n);
    for u in 0..n {
        let mut best = f64::NEG_INFINITY;
        let mut best_v = usize::MAX;
        for v in 0..n {
            if v == u {
                continue;
            }
            let s = w.similarity(input, u, v);
            if s > best {
                best = s;
                best_v = v;
            }
        }
        if best_v != usize::MAX {
            pairs.push((u.min(best_v), u.max(best_v)));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Tables 2–3: how many closest pairs the assignment places on one disk.
pub fn count_pairs_on_same_disk(pairs: &[(usize, usize)], assign: &Assignment) -> usize {
    pairs
        .iter()
        .filter(|&&(u, v)| assign.disk_at(u) == assign.disk_at(v))
        .count()
}

/// Aggregate throughput metrics of a concurrent workload run.
///
/// Produced by the parallel engine's concurrent service (a window of
/// `in_flight` queries admitted at once, workers servicing batches in
/// elevator order); the paper's per-query response-time columns stay in the
/// per-query outcomes, while this captures what a multi-user front end sees:
/// queries per second, per-disk utilization, and queue depth.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ThroughputStats {
    /// Queries completed.
    pub queries: u64,
    /// Admission window (queries in flight at once).
    pub in_flight: usize,
    /// Virtual wall-clock of the whole run, microseconds: the busiest
    /// worker's disk+CPU time plus all communication (serialized at the
    /// coordinator's adapter).
    pub makespan_us: u64,
    /// Total virtual communication time, microseconds.
    pub comm_us: u64,
    /// Total blocks requested.
    pub total_blocks: u64,
    /// Buffer-cache hits among them.
    pub cache_hits: u64,
    /// Per-worker virtual busy time (disk + CPU), microseconds.
    pub worker_busy_us: Vec<u64>,
    /// Which workers were still alive at the end of the run (same indexing
    /// as `worker_busy_us`; empty means liveness was not tracked and every
    /// worker is assumed alive).
    pub worker_alive: Vec<bool>,
    /// Batches dispatched to workers (one per worker per admission round).
    pub batches: u64,
    /// Total requests across those batches.
    pub batched_requests: u64,
    /// Largest single batch (peak queue depth seen by a worker).
    pub max_batch: u64,
    /// Requests retried against a replica after a worker failure or error.
    pub retries: u64,
    /// Blocks served by a replica instead of their primary worker.
    pub failed_over_blocks: u64,
    /// Requests redelivered with the same sequence number after a reply
    /// timeout (the lost-message defense; 0 on a healthy run).
    pub retransmits: u64,
    /// Hedge requests dispatched against slow primaries.
    pub hedges: u64,
    /// Corrupt blocks repaired in place from their replica copy.
    pub scrubbed: u64,
}

impl ThroughputStats {
    /// Makespan in seconds (the paper's unit).
    pub fn makespan_seconds(&self) -> f64 {
        self.makespan_us as f64 / 1e6
    }

    /// Completed queries per virtual second.
    pub fn queries_per_second(&self) -> f64 {
        if self.makespan_us == 0 {
            return 0.0;
        }
        self.queries as f64 / self.makespan_seconds()
    }

    /// Each worker's busy fraction of the makespan.
    pub fn utilization(&self) -> Vec<f64> {
        if self.makespan_us == 0 {
            return vec![0.0; self.worker_busy_us.len()];
        }
        self.worker_busy_us
            .iter()
            .map(|&b| b as f64 / self.makespan_us as f64)
            .collect()
    }

    /// Whether worker `w` finished the run alive (true when liveness was
    /// not tracked).
    pub fn is_alive(&self, w: usize) -> bool {
        self.worker_alive.get(w).copied().unwrap_or(true)
    }

    /// Mean busy fraction over the workers that finished the run **alive**.
    ///
    /// A fail-stopped worker is busy for a fraction of the run and idle
    /// after; averaging it in would understate how loaded the surviving
    /// fleet actually was (and made degraded-mode utilization numbers
    /// incomparable to healthy runs). Dead workers still appear in
    /// [`ThroughputStats::utilization`], they are just excluded from the
    /// mean.
    pub fn mean_utilization(&self) -> f64 {
        let u = self.utilization();
        let live: Vec<f64> = u
            .iter()
            .enumerate()
            .filter(|&(w, _)| self.is_alive(w))
            .map(|(_, &b)| b)
            .collect();
        if live.is_empty() {
            return 0.0;
        }
        live.iter().sum::<f64>() / live.len() as f64
    }

    /// Mean requests per dispatched batch (mean queue depth).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_requests as f64 / self.batches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_core::{Assignment, DeclusterInput};
    use pargrid_geom::{Point, Rect};
    use pargrid_gridfile::{CartesianProductFile, GridConfig, GridFile, Record};

    fn small_file() -> (GridFile, DeclusterInput) {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4);
        let gf = GridFile::bulk_load(
            cfg,
            (0..64u64).map(|i| {
                Record::new(
                    i,
                    Point::new2((i % 8) as f64 * 12.0 + 6.0, (i / 8) as f64 * 12.0 + 6.0),
                )
            }),
        );
        let input = DeclusterInput::from_grid_file(&gf);
        (gf, input)
    }

    #[test]
    fn response_counts_max_per_disk() {
        let (gf, input) = small_file();
        // All buckets on one disk: response == total buckets.
        let all_one = Assignment::new(&input, 2, vec![0; input.n_buckets()]);
        let q = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let (resp, total) = query_response(&gf, &all_one, &q);
        assert_eq!(resp, total);
        assert_eq!(total, gf.n_buckets() as u64);
    }

    #[test]
    fn better_spread_lowers_response() {
        let (gf, input) = small_file();
        let n = input.n_buckets();
        let spread = Assignment::new(&input, 4, (0..n).map(|i| (i % 4) as u32).collect());
        let lumped = Assignment::new(&input, 4, vec![0; n]);
        let w = QueryWorkload::square(&gf.config().domain, 0.1, 50, 7);
        let s = evaluate(&gf, &spread, &w);
        let l = evaluate(&gf, &lumped, &w);
        assert!(s.mean_response < l.mean_response);
        assert_eq!(s.mean_buckets, l.mean_buckets); // same buckets touched
        assert!(s.mean_response >= s.mean_optimal - 1e-12);
        assert!(s.mean_optimal_ceil >= s.mean_optimal);
    }

    #[test]
    fn optimal_is_buckets_over_disks() {
        let (gf, input) = small_file();
        let n = input.n_buckets();
        let a = Assignment::new(&input, 5, (0..n).map(|i| (i % 5) as u32).collect());
        let w = QueryWorkload::square(&gf.config().domain, 0.05, 20, 9);
        let s = evaluate(&gf, &a, &w);
        assert!((s.mean_optimal - s.mean_buckets / 5.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_metrics_consistent() {
        let (gf, input) = small_file();
        let n = input.n_buckets();
        let a = Assignment::new(&input, 4, (0..n).map(|i| (i % 4) as u32).collect());
        let w = QueryWorkload::square(&gf.config().domain, 0.1, 100, 3);
        let s = evaluate(&gf, &a, &w);
        assert!(s.max_response as f64 >= s.mean_response);
        assert!(s.p95_response <= s.max_response);
        assert!(s.p95_response as f64 + 1.0 > s.mean_response);
        assert!(s.std_response >= 0.0);
    }

    #[test]
    fn heterogeneous_equal_speeds_match_homogeneous() {
        let (gf, input) = small_file();
        let n = input.n_buckets();
        let a = Assignment::new(&input, 4, (0..n).map(|i| (i % 4) as u32).collect());
        let w = QueryWorkload::square(&gf.config().domain, 0.1, 50, 3);
        let s = evaluate(&gf, &a, &w);
        let h = evaluate_heterogeneous(&gf, &a, &w, &[1.0; 4]);
        assert!((h - s.mean_response).abs() < 1e-9);
        // A slow disk makes things worse.
        let h_slow = evaluate_heterogeneous(&gf, &a, &w, &[1.0, 1.0, 1.0, 3.0]);
        assert!(h_slow > h);
    }

    #[test]
    fn intra_disk_proximity_tracks_quality() {
        // All buckets on one of two disks maximizes co-located proximity;
        // a checkerboard minimizes it among 2-disk assignments.
        let input = DeclusterInput::from_cartesian(&CartesianProductFile::new(&[4, 4]));
        let n = input.n_buckets();
        let lumped = Assignment::new(&input, 2, vec![0; n]);
        let checker = Assignment::new(
            &input,
            2,
            (0..n).map(|i| (((i / 4) + (i % 4)) % 2) as u32).collect(),
        );
        let lp = intra_disk_proximity(&input, &lumped);
        let cp = intra_disk_proximity(&input, &checker);
        assert!(lp > cp, "lumped {lp} <= checker {cp}");
        assert!(cp > 0.0);
    }

    #[test]
    fn closest_pairs_are_grid_neighbors() {
        let input = DeclusterInput::from_cartesian(&CartesianProductFile::new(&[4, 4]));
        let pairs = closest_pairs(&input);
        // Every closest pair of equal square cells is an orthogonal neighbor.
        for &(u, v) in &pairs {
            let (ux, uy) = ((u / 4) as i64, (u % 4) as i64);
            let (vx, vy) = ((v / 4) as i64, (v % 4) as i64);
            let l1 = (ux - vx).abs() + (uy - vy).abs();
            assert_eq!(l1, 1, "pair ({u}, {v}) not adjacent");
        }
        assert!(!pairs.is_empty());
    }

    #[test]
    fn same_disk_pair_counting() {
        let input = DeclusterInput::from_cartesian(&CartesianProductFile::new(&[4, 4]));
        let pairs = closest_pairs(&input);
        let n = input.n_buckets();
        // Everything on one disk: all pairs collide.
        let lumped = Assignment::new(&input, 2, vec![0; n]);
        assert_eq!(count_pairs_on_same_disk(&pairs, &lumped), pairs.len());
        // Checkerboard: no orthogonal neighbors collide.
        let checker = Assignment::new(
            &input,
            2,
            (0..n).map(|i| (((i / 4) + (i % 4)) % 2) as u32).collect(),
        );
        assert_eq!(count_pairs_on_same_disk(&pairs, &checker), 0);
    }

    #[test]
    fn throughput_stats_derived_metrics() {
        let t = ThroughputStats {
            queries: 100,
            in_flight: 8,
            makespan_us: 2_000_000,
            comm_us: 500_000,
            total_blocks: 400,
            cache_hits: 40,
            worker_busy_us: vec![1_000_000, 1_500_000],
            worker_alive: vec![true, true],
            batches: 25,
            batched_requests: 100,
            max_batch: 8,
            retries: 0,
            failed_over_blocks: 0,
            retransmits: 0,
            hedges: 0,
            scrubbed: 0,
        };
        assert_eq!(t.makespan_seconds(), 2.0);
        assert_eq!(t.queries_per_second(), 50.0);
        assert_eq!(t.utilization(), vec![0.5, 0.75]);
        assert!((t.mean_utilization() - 0.625).abs() < 1e-12);
        assert_eq!(t.mean_batch(), 4.0);
    }

    #[test]
    fn mean_utilization_excludes_dead_workers() {
        let t = ThroughputStats {
            makespan_us: 1_000_000,
            worker_busy_us: vec![800_000, 900_000, 100_000],
            worker_alive: vec![true, true, false],
            ..ThroughputStats::default()
        };
        // The dead worker's 0.1 is reported per-worker but not averaged in.
        assert_eq!(t.utilization(), vec![0.8, 0.9, 0.1]);
        assert!((t.mean_utilization() - 0.85).abs() < 1e-12);
        assert!(t.is_alive(0) && !t.is_alive(2));
        // Untracked liveness keeps the old every-worker mean.
        let untracked = ThroughputStats {
            makespan_us: 1_000_000,
            worker_busy_us: vec![800_000, 400_000],
            ..ThroughputStats::default()
        };
        assert!((untracked.mean_utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn evaluate_tail_percentiles_are_ordered() {
        let (gf, input) = small_file();
        let n = input.n_buckets();
        let a = Assignment::new(&input, 4, (0..n).map(|i| (i % 4) as u32).collect());
        let w = QueryWorkload::square(&gf.config().domain, 0.1, 100, 3);
        let s = evaluate(&gf, &a, &w);
        assert!(s.p95_response <= s.p99_response);
        assert!(s.p99_response <= s.max_response);
    }

    #[test]
    fn gap_is_nonnegative_and_consistent_with_means() {
        let (gf, input) = small_file();
        let n = input.n_buckets();
        let a = Assignment::new(&input, 4, (0..n).map(|i| (i % 4) as u32).collect());
        let w = QueryWorkload::square(&gf.config().domain, 0.1, 100, 3);
        let s = evaluate(&gf, &a, &w);
        assert!(s.mean_gap >= 0.0);
        assert!(s.p95_gap <= s.max_gap);
        // mean gap = mean response - mean integral optimum, exactly.
        assert!((s.mean_gap - (s.mean_response - s.mean_optimal_ceil)).abs() < 1e-9);
    }

    #[test]
    fn gap_is_zero_for_a_provably_optimal_layout() {
        // One record per cell of an 8x8 grid, row-major bucket ids, disks
        // dealt DM-style: every aligned row query hits 8 buckets spread
        // over all 4 disks -> response == ceil(8/4) == 2 == bound.
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 8.0, 8.0), 1);
        let gf = GridFile::bulk_load(
            cfg,
            (0..64u64)
                .map(|i| Record::new(i, Point::new2((i % 8) as f64 + 0.5, (i / 8) as f64 + 0.5))),
        );
        let input = DeclusterInput::from_grid_file(&gf);
        let method = pargrid_core::DeclusterMethod::parse("dm").unwrap();
        let a = method.assign(&input, 4, 1);
        let queries: Vec<Rect> = (0..8)
            .map(|row| Rect::new2(0.1, row as f64 + 0.1, 7.9, row as f64 + 0.9))
            .collect();
        let w = QueryWorkload { queries };
        let s = evaluate(&gf, &a, &w);
        assert_eq!(s.mean_gap, 0.0, "DM is optimal on aligned row queries");
        assert_eq!(s.max_gap, 0);
    }

    #[test]
    fn throughput_stats_zero_makespan_is_safe() {
        let t = ThroughputStats {
            worker_busy_us: vec![0, 0],
            ..ThroughputStats::default()
        };
        assert_eq!(t.queries_per_second(), 0.0);
        assert_eq!(t.utilization(), vec![0.0, 0.0]);
        assert_eq!(t.mean_utilization(), 0.0);
        assert_eq!(t.mean_batch(), 0.0);
    }
}
