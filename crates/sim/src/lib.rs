//! Disk-farm simulator implementing the paper's evaluation methodology
//! (§2.2): query workloads, the response-time and data-balance metrics, and
//! a sweep runner that produces the rows of every figure and table.
//!
//! The simulator's assumptions follow the paper: raw disk I/O (no caching),
//! no temporal locality between queries, and identical per-bucket read time
//! on every disk — so the **response time of a query is the maximum number
//! of buckets any single disk must read**, and the metric of a configuration
//! is the average response time over 1,000 random square range queries.

//!
//! ```
//! use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
//! use pargrid_datagen::uniform2d;
//! use pargrid_sim::{evaluate, QueryWorkload};
//!
//! let dataset = uniform2d(42);
//! let grid = dataset.build_grid_file();
//! let input = DeclusterInput::from_grid_file(&grid);
//! let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity)
//!     .assign(&input, 8, 1);
//!
//! // 100 random square queries each covering 5% of the domain.
//! let workload = QueryWorkload::square(&dataset.domain, 0.05, 100, 7);
//! let stats = evaluate(&grid, &assignment, &workload);
//! assert!(stats.mean_response >= stats.mean_optimal);
//! assert!(stats.p95_response as f64 >= stats.mean_response);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod plot;
pub mod runner;
pub mod table;
pub mod workload;

pub use metrics::{
    closest_pairs, count_pairs_on_same_disk, evaluate, evaluate_heterogeneous,
    intra_disk_proximity, EvalStats, ThroughputStats,
};
pub use plot::{GanttChart, GanttLane, LineChart, Series};
pub use runner::{relative_throughput, sweep, SweepPoint};
pub use workload::QueryWorkload;
