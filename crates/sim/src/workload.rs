//! Query workload generators (paper §2.2 and §3.5).

use pargrid_geom::{Point, Rect, MAX_DIM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sequence of range queries.
#[derive(Clone, Debug)]
pub struct QueryWorkload {
    /// The queries, in issue order.
    pub queries: Vec<Rect>,
}

impl QueryWorkload {
    /// The paper's random square range queries: `n` queries whose centers
    /// are uniform over the domain and whose side along dimension `k` is
    /// `r^(1/d) * L_k`, so each query covers a fraction `r` of the domain
    /// volume. Queries are clamped to the domain.
    ///
    /// # Panics
    /// Panics unless `0 < r < 1`.
    pub fn square(domain: &Rect, r: f64, n: usize, seed: u64) -> Self {
        assert!(r > 0.0 && r < 1.0, "query ratio must be in (0, 1), got {r}");
        let d = domain.dim();
        let frac = r.powf(1.0 / d as f64);
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..n)
            .map(|_| {
                let mut lo = [0.0; MAX_DIM];
                let mut hi = [0.0; MAX_DIM];
                for k in 0..d {
                    let side = frac * domain.side(k);
                    let center = domain.lo().get(k) + rng.random::<f64>() * domain.side(k);
                    lo[k] = center - side / 2.0;
                    hi[k] = center + side / 2.0;
                }
                Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d])).clamp_to(domain)
            })
            .collect();
        QueryWorkload { queries }
    }

    /// Square range queries whose centers are drawn from the *data points*
    /// instead of uniformly — the realistic regime where analysts query
    /// where the data is. The paper uses uniform centers throughout; the
    /// query-distribution ablation (A8) measures how much that choice
    /// matters for the algorithm ranking.
    pub fn square_data_centered(
        domain: &Rect,
        centers: &[Point],
        r: f64,
        n: usize,
        seed: u64,
    ) -> Self {
        assert!(r > 0.0 && r < 1.0, "query ratio must be in (0, 1), got {r}");
        assert!(!centers.is_empty(), "need at least one center point");
        let d = domain.dim();
        let frac = r.powf(1.0 / d as f64);
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..n)
            .map(|_| {
                let c = &centers[rng.random_range(0..centers.len())];
                let mut lo = [0.0; MAX_DIM];
                let mut hi = [0.0; MAX_DIM];
                for k in 0..d {
                    let side = frac * domain.side(k);
                    lo[k] = c.get(k) - side / 2.0;
                    hi[k] = c.get(k) + side / 2.0;
                }
                Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d])).clamp_to(domain)
            })
            .collect();
        QueryWorkload { queries }
    }

    /// Zipfian hot-key workload: square queries whose centers are drawn
    /// from `centers` with Zipf(`theta`) popularity — a seeded shuffle
    /// decides which keys are hot, then key of popularity rank `i` is
    /// drawn with weight `(i+1)^-theta`. With `theta` around 1 a handful
    /// of keys absorb most of the workload, concentrating load on the few
    /// disks that hold their neighborhoods — the classic hot-spot
    /// adversary for declustering schemes.
    ///
    /// # Panics
    /// Panics unless `0 < r < 1`, `theta > 0`, and `centers` is non-empty.
    pub fn zipfian_hot_key(
        domain: &Rect,
        centers: &[Point],
        r: f64,
        n: usize,
        theta: f64,
        seed: u64,
    ) -> Self {
        assert!(r > 0.0 && r < 1.0, "query ratio must be in (0, 1), got {r}");
        assert!(theta > 0.0, "zipf exponent must be positive, got {theta}");
        assert!(!centers.is_empty(), "need at least one center point");
        let d = domain.dim();
        let frac = r.powf(1.0 / d as f64);
        let mut rng = StdRng::seed_from_u64(seed);
        // Which keys are hot is itself random: a Fisher-Yates shuffle maps
        // popularity ranks to center indices.
        let mut order: Vec<usize> = (0..centers.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut cum = Vec::with_capacity(order.len());
        let mut total = 0.0;
        for rank in 0..order.len() {
            total += ((rank + 1) as f64).powf(-theta);
            cum.push(total);
        }
        let queries = (0..n)
            .map(|_| {
                let u = rng.random::<f64>() * total;
                let rank = cum.partition_point(|&c| c < u).min(order.len() - 1);
                let c = &centers[order[rank]];
                let mut lo = [0.0; MAX_DIM];
                let mut hi = [0.0; MAX_DIM];
                for k in 0..d {
                    let side = frac * domain.side(k);
                    lo[k] = c.get(k) - side / 2.0;
                    hi[k] = c.get(k) + side / 2.0;
                }
                Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d])).clamp_to(domain)
            })
            .collect();
        QueryWorkload { queries }
    }

    /// Drifting-hotspot workload: a single hotspot marches along the main
    /// diagonal of the domain over the course of the run (query `i` sits at
    /// fraction `i / (n-1)` of the way), with per-query jitter of up to
    /// `jitter_frac` of each extent. Early queries pound one corner's
    /// disks, late queries the opposite corner's — a layout that balances
    /// the *whole* workload can still serve every instant poorly, which is
    /// exactly what this generator probes.
    ///
    /// # Panics
    /// Panics unless `0 < r < 1` and `0 <= jitter_frac < 1`.
    pub fn drifting_hotspot(domain: &Rect, r: f64, n: usize, jitter_frac: f64, seed: u64) -> Self {
        assert!(r > 0.0 && r < 1.0, "query ratio must be in (0, 1), got {r}");
        assert!(
            (0.0..1.0).contains(&jitter_frac),
            "jitter must be in [0, 1), got {jitter_frac}"
        );
        let d = domain.dim();
        let frac = r.powf(1.0 / d as f64);
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..n)
            .map(|i| {
                let t = if n > 1 {
                    i as f64 / (n - 1) as f64
                } else {
                    0.5
                };
                let mut lo = [0.0; MAX_DIM];
                let mut hi = [0.0; MAX_DIM];
                for k in 0..d {
                    let full = domain.side(k);
                    let jitter = (rng.random::<f64>() * 2.0 - 1.0) * jitter_frac * full;
                    let center = domain.lo().get(k) + t * full + jitter;
                    let side = frac * full;
                    lo[k] = center - side / 2.0;
                    hi[k] = center + side / 2.0;
                }
                Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d])).clamp_to(domain)
            })
            .collect();
        QueryWorkload { queries }
    }

    /// Diagonal thin-slab workload: query `i` is thin (`thin_frac` of the
    /// extent) along dimension `i mod d` and long (`long_frac`) along every
    /// other dimension, centered on a uniformly random point of the main
    /// diagonal. Long thin runs are the worst case for linearizations that
    /// fragment axis-aligned lines (Hilbert), while the diagonal placement
    /// defeats the coordinate-sum symmetry of plain disk modulo — the
    /// discrepancy adversary from the declustering lower-bound literature.
    ///
    /// # Panics
    /// Panics unless both fractions are in `(0, 1]` and `thin_frac < 1`.
    pub fn diagonal_slabs(
        domain: &Rect,
        thin_frac: f64,
        long_frac: f64,
        n: usize,
        seed: u64,
    ) -> Self {
        assert!(
            thin_frac > 0.0 && thin_frac < 1.0,
            "thin fraction must be in (0, 1), got {thin_frac}"
        );
        assert!(
            long_frac > 0.0 && long_frac <= 1.0,
            "long fraction must be in (0, 1], got {long_frac}"
        );
        let d = domain.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..n)
            .map(|i| {
                let thin_dim = i % d;
                let t = rng.random::<f64>();
                let mut lo = [0.0; MAX_DIM];
                let mut hi = [0.0; MAX_DIM];
                for k in 0..d {
                    let full = domain.side(k);
                    let side = if k == thin_dim { thin_frac } else { long_frac } * full;
                    let center = domain.lo().get(k) + t * full;
                    lo[k] = center - side / 2.0;
                    hi[k] = center + side / 2.0;
                }
                Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d])).clamp_to(domain)
            })
            .collect();
        QueryWorkload { queries }
    }

    /// Partial-match queries: each query specifies a random subset of
    /// attributes (at least one unspecified, as the paper defines them) at a
    /// uniformly drawn key value. Returned as key vectors rather than
    /// rectangles.
    pub fn partial_match(domain: &Rect, n: usize, seed: u64) -> Vec<Vec<Option<f64>>> {
        let d = domain.dim();
        assert!(d >= 2, "partial match needs at least two attributes");
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                loop {
                    let keys: Vec<Option<f64>> = (0..d)
                        .map(|k| {
                            rng.random::<bool>()
                                .then(|| domain.lo().get(k) + rng.random::<f64>() * domain.side(k))
                        })
                        .collect();
                    let unspecified = keys.iter().filter(|k| k.is_none()).count();
                    // The paper requires >= 1 unspecified; all-unspecified is
                    // a full scan, which we also skip to keep queries selective.
                    if unspecified >= 1 && unspecified < d {
                        return keys;
                    }
                }
            })
            .collect()
    }

    /// The SP-2 animation workload (§3.5): for every time step, a set of
    /// spatial queries that in aggregate covers the whole spatial volume.
    /// Dimension 0 is time; each query spans exactly one time step, and the
    /// spatial sides are `r^(1/(d-1)) * L_k` (so each covers a fraction `r`
    /// of the volume), tiled to cover the domain.
    pub fn animation(domain: &Rect, r: f64, snapshots: usize) -> Self {
        assert!(r > 0.0 && r < 1.0);
        let d = domain.dim();
        assert!(d >= 2, "animation needs a time dimension plus space");
        let sd = d - 1; // spatial dims
        let frac = r.powf(1.0 / sd as f64);
        // Tiles per spatial dimension (rounded, min 1): 2.15 -> 2 tiles,
        // which reproduces the paper's "approximately 10 queries per step".
        let tiles: Vec<usize> = (1..d)
            .map(|_| ((1.0 / frac).round() as usize).max(1))
            .collect();
        let mut queries = Vec::new();
        let step = domain.side(0) / snapshots as f64;
        for s in 0..snapshots {
            let t0 = domain.lo().get(0) + s as f64 * step;
            let t1 = t0 + step;
            // Odometer over spatial tiles.
            let mut idx = vec![0usize; sd];
            loop {
                let mut lo = [0.0; MAX_DIM];
                let mut hi = [0.0; MAX_DIM];
                lo[0] = t0;
                hi[0] = t1;
                for k in 0..sd {
                    let full = domain.side(k + 1);
                    let side = frac * full;
                    let start = domain.lo().get(k + 1)
                        + if tiles[k] > 1 {
                            (full - side) * idx[k] as f64 / (tiles[k] - 1) as f64
                        } else {
                            0.0
                        };
                    lo[k + 1] = start;
                    hi[k + 1] = start + side;
                }
                queries
                    .push(Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d])).clamp_to(domain));
                // Increment odometer.
                let mut k = sd;
                loop {
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                    idx[k] += 1;
                    if idx[k] < tiles[k] {
                        break;
                    }
                    idx[k] = 0;
                    if k == 0 {
                        break;
                    }
                }
                if idx.iter().all(|&i| i == 0) {
                    break;
                }
            }
        }
        QueryWorkload { queries }
    }

    /// Particle-tracing workload — the access pattern §4 names as future
    /// work: follow a particle through a spatio-temporal dataset by issuing,
    /// for each consecutive time step, a small spatial window centered on
    /// the (drifting) particle position.
    ///
    /// Dimension 0 is time; the spatial window covers a fraction `r` of the
    /// spatial volume; the trace starts at a random spatial position and
    /// performs a bounded random walk with per-step drift up to
    /// `drift_frac` of each spatial extent.
    pub fn particle_trace(
        domain: &Rect,
        r: f64,
        snapshots: usize,
        drift_frac: f64,
        seed: u64,
    ) -> Self {
        assert!(r > 0.0 && r < 1.0);
        assert!((0.0..1.0).contains(&drift_frac));
        let d = domain.dim();
        assert!(d >= 2, "tracing needs a time dimension plus space");
        let sd = d - 1;
        let frac = r.powf(1.0 / sd as f64);
        let mut rng = StdRng::seed_from_u64(seed);
        let step = domain.side(0) / snapshots as f64;

        let mut pos = [0.0; MAX_DIM];
        for (k, slot) in pos.iter_mut().take(sd).enumerate() {
            *slot = domain.lo().get(k + 1) + rng.random::<f64>() * domain.side(k + 1);
        }
        let mut queries = Vec::with_capacity(snapshots);
        for s in 0..snapshots {
            let t0 = domain.lo().get(0) + s as f64 * step;
            let mut lo = [0.0; MAX_DIM];
            let mut hi = [0.0; MAX_DIM];
            lo[0] = t0;
            hi[0] = t0 + step;
            for k in 0..sd {
                let side = frac * domain.side(k + 1);
                lo[k + 1] = pos[k] - side / 2.0;
                hi[k + 1] = pos[k] + side / 2.0;
            }
            queries.push(Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d])).clamp_to(domain));
            // Drift for the next step, reflecting at the walls.
            for (k, slot) in pos.iter_mut().take(sd).enumerate() {
                let full = domain.side(k + 1);
                let delta = (rng.random::<f64>() * 2.0 - 1.0) * drift_frac * full;
                let mut next = *slot + delta;
                let lo_k = domain.lo().get(k + 1);
                let hi_k = domain.hi().get(k + 1);
                if next < lo_k {
                    next = 2.0 * lo_k - next;
                }
                if next > hi_k {
                    next = 2.0 * hi_k - next;
                }
                *slot = next.clamp(lo_k, hi_k);
            }
        }
        QueryWorkload { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Splits the workload into `clients` round-robin streams (query `i`
    /// goes to client `i % clients`), modeling independent front-end users
    /// each submitting a share of the load.
    ///
    /// # Panics
    /// Panics if `clients` is zero.
    pub fn split_round_robin(&self, clients: usize) -> Vec<QueryWorkload> {
        assert!(clients >= 1, "need at least one client");
        let mut out = vec![
            QueryWorkload {
                queries: Vec::new()
            };
            clients
        ];
        for (i, q) in self.queries.iter().enumerate() {
            out[i % clients].queries.push(*q);
        }
        out
    }

    /// Merges client streams back into one submission order, taking one
    /// query from each client in turn — the arrival order a coordinator
    /// sees when `clients.len()` users submit concurrently at equal rates.
    pub fn interleave(clients: &[QueryWorkload]) -> QueryWorkload {
        let total: usize = clients.iter().map(QueryWorkload::len).sum();
        let mut queries = Vec::with_capacity(total);
        let longest = clients.iter().map(QueryWorkload::len).max().unwrap_or(0);
        for i in 0..longest {
            for c in clients {
                if let Some(q) = c.queries.get(i) {
                    queries.push(*q);
                }
            }
        }
        QueryWorkload { queries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom2() -> Rect {
        Rect::new2(0.0, 0.0, 2000.0, 2000.0)
    }

    #[test]
    fn split_and_interleave_round_trip() {
        let w = QueryWorkload::square(&dom2(), 0.05, 10, 3);
        let clients = w.split_round_robin(3);
        assert_eq!(clients.len(), 3);
        assert_eq!(clients[0].len(), 4); // queries 0, 3, 6, 9
        assert_eq!(clients[1].len(), 3);
        assert_eq!(clients[2].len(), 3);
        // Round-robin split then one-from-each merge restores issue order.
        let merged = QueryWorkload::interleave(&clients);
        assert_eq!(merged.queries, w.queries);
    }

    #[test]
    fn interleave_handles_uneven_streams() {
        let w = QueryWorkload::square(&dom2(), 0.05, 5, 3);
        let a = QueryWorkload {
            queries: w.queries[..4].to_vec(),
        };
        let b = QueryWorkload {
            queries: w.queries[4..].to_vec(),
        };
        let merged = QueryWorkload::interleave(&[a, b]);
        assert_eq!(merged.len(), 5);
        assert_eq!(merged.queries[0], w.queries[0]);
        assert_eq!(merged.queries[1], w.queries[4]);
        assert_eq!(merged.queries[2], w.queries[1]);
        assert!(QueryWorkload::interleave(&[]).is_empty());
    }

    #[test]
    fn square_queries_have_requested_volume() {
        let w = QueryWorkload::square(&dom2(), 0.05, 100, 1);
        assert_eq!(w.len(), 100);
        let expected_side = 0.05f64.sqrt() * 2000.0;
        for q in &w.queries {
            // Interior queries (not clamped) have exactly the right sides.
            if q.lo().get(0) > 0.0 && q.hi().get(0) < 2000.0 {
                assert!((q.side(0) - expected_side).abs() < 1e-9);
            }
            assert!(dom2().contains_rect(q));
        }
    }

    #[test]
    fn square_queries_cover_the_domain() {
        // Centers are uniform: all four quadrants must receive queries.
        let w = QueryWorkload::square(&dom2(), 0.01, 400, 2);
        let mut quadrants = [0usize; 4];
        for q in &w.queries {
            let c = q.center();
            let qx = usize::from(c.get(0) > 1000.0);
            let qy = usize::from(c.get(1) > 1000.0);
            quadrants[qx * 2 + qy] += 1;
        }
        assert!(quadrants.iter().all(|&c| c > 50), "{quadrants:?}");
    }

    #[test]
    #[should_panic(expected = "query ratio")]
    fn bad_ratio_rejected() {
        let _ = QueryWorkload::square(&dom2(), 1.5, 10, 0);
    }

    #[test]
    fn data_centered_queries_follow_the_data() {
        use pargrid_geom::Point;
        // Centers clustered in one corner: the workload must stay there.
        let centers: Vec<Point> = (0..50)
            .map(|i| Point::new2(100.0 + i as f64, 100.0 + i as f64))
            .collect();
        let w = QueryWorkload::square_data_centered(&dom2(), &centers, 0.01, 200, 5);
        assert_eq!(w.len(), 200);
        for q in &w.queries {
            assert!(dom2().contains_rect(q));
            let c = q.center();
            assert!(c.get(0) < 400.0 && c.get(1) < 400.0, "{c:?}");
        }
    }

    #[test]
    fn zipfian_concentrates_on_few_keys() {
        use pargrid_geom::Point;
        let centers: Vec<Point> = (0..100)
            .map(|i| {
                Point::new2(
                    (i % 10) as f64 * 200.0 + 100.0,
                    (i / 10) as f64 * 200.0 + 100.0,
                )
            })
            .collect();
        let w = QueryWorkload::zipfian_hot_key(&dom2(), &centers, 0.01, 1000, 1.1, 7);
        assert_eq!(w.len(), 1000);
        // Count queries per center (centers are far apart vs. query size).
        let mut hits = vec![0usize; centers.len()];
        for q in &w.queries {
            let c = q.center();
            let best = centers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da = (a.get(0) - c.get(0)).abs() + (a.get(1) - c.get(1)).abs();
                    let db = (b.get(0) - c.get(0)).abs() + (b.get(1) - c.get(1)).abs();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap()
                .0;
            hits[best] += 1;
            assert!(dom2().contains_rect(q));
        }
        hits.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf(1.1) over 100 keys: the hottest key should absorb far more
        // than the uniform share of 10 queries.
        assert!(hits[0] > 100, "hottest key got only {} queries", hits[0]);
        // Determinism.
        let w2 = QueryWorkload::zipfian_hot_key(&dom2(), &centers, 0.01, 1000, 1.1, 7);
        assert_eq!(w.queries, w2.queries);
    }

    #[test]
    fn drifting_hotspot_marches_across_the_domain() {
        let w = QueryWorkload::drifting_hotspot(&dom2(), 0.01, 100, 0.02, 5);
        assert_eq!(w.len(), 100);
        for q in &w.queries {
            assert!(dom2().contains_rect(q));
        }
        // Early queries sit near the low corner, late ones near the high.
        let first = w.queries[0].center();
        let last = w.queries[99].center();
        assert!(first.get(0) < 300.0 && first.get(1) < 300.0, "{first:?}");
        assert!(last.get(0) > 1700.0 && last.get(1) > 1700.0, "{last:?}");
        // Monotone-ish drift: centers 20 apart always advance.
        for i in 0..80 {
            assert!(w.queries[i + 20].center().get(0) > w.queries[i].center().get(0));
        }
    }

    #[test]
    fn diagonal_slabs_are_thin_on_alternating_dims() {
        let w = QueryWorkload::diagonal_slabs(&dom2(), 0.02, 0.9, 50, 11);
        assert_eq!(w.len(), 50);
        for (i, q) in w.queries.iter().enumerate() {
            assert!(dom2().contains_rect(q));
            let thin = i % 2;
            let long = 1 - thin;
            // Thin side is at most the requested sliver; long side is long
            // (both can shrink at the boundary, so compare loosely).
            assert!(q.side(thin) <= 0.02 * 2000.0 + 1e-9);
            assert!(q.side(long) >= 0.45 * 2000.0, "query {i} not slab-shaped");
            // Center rides the main diagonal.
            let c = q.center();
            let t0 = (c.get(long) - 0.0) / 2000.0;
            // The unclamped center on the thin dim matches the same t.
            if q.side(thin) >= 0.02 * 2000.0 - 1e-9 && q.side(long) >= 0.9 * 2000.0 - 1e-9 {
                let t1 = c.get(thin) / 2000.0;
                assert!((t0 - t1).abs() < 1e-9, "query {i} off the diagonal");
            }
        }
    }

    #[test]
    fn partial_match_always_leaves_attributes_unspecified() {
        let keys = QueryWorkload::partial_match(&dom2(), 200, 3);
        for q in &keys {
            let unspecified = q.iter().filter(|k| k.is_none()).count();
            assert!(unspecified >= 1 && unspecified < q.len());
        }
    }

    #[test]
    fn animation_covers_every_step_and_the_volume() {
        use pargrid_geom::Point;
        let dom = Rect::new(
            Point::new4(0.0, 0.0, 0.0, 0.0),
            Point::new4(59.0, 16.0, 12.0, 8.0),
        );
        let w = QueryWorkload::animation(&dom, 0.1, 59);
        // r = 0.1 -> frac = 0.464 -> 2 tiles per spatial dim -> 8 per step.
        assert_eq!(w.len(), 8 * 59);
        // Every step's queries jointly cover the spatial extremes.
        let first_step: Vec<&Rect> = w.queries.iter().filter(|q| q.lo().get(0) == 0.0).collect();
        assert_eq!(first_step.len(), 8);
        let covers = |x: f64, y: f64, z: f64| {
            first_step
                .iter()
                .any(|q| q.contains_closed(&Point::new4(0.5, x, y, z)))
        };
        assert!(covers(0.1, 0.1, 0.1));
        assert!(covers(15.9, 11.9, 7.9));
        assert!(covers(15.9, 0.1, 7.9));
    }

    #[test]
    fn particle_trace_is_one_query_per_step_and_contiguous() {
        use pargrid_geom::Point;
        let dom = Rect::new(
            Point::new4(0.0, 0.0, 0.0, 0.0),
            Point::new4(20.0, 16.0, 12.0, 8.0),
        );
        let w = QueryWorkload::particle_trace(&dom, 0.02, 20, 0.05, 9);
        assert_eq!(w.len(), 20);
        for (s, q) in w.queries.iter().enumerate() {
            // One time step each, in order.
            assert!((q.lo().get(0) - s as f64).abs() < 1e-9);
            assert!((q.side(0) - 1.0).abs() < 1e-9);
            assert!(dom.contains_rect(q));
        }
        // Consecutive windows overlap spatially (small drift).
        for pair in w.queries.windows(2) {
            for k in 1..4 {
                assert!(
                    pair[0].overlap_on(&pair[1], k) > 0.0,
                    "trace jumped on dim {k}"
                );
            }
        }
    }

    #[test]
    fn particle_trace_deterministic_and_seed_sensitive() {
        use pargrid_geom::Point;
        let dom = Rect::new(Point::new2(0.0, 0.0), Point::new2(10.0, 100.0));
        let a = QueryWorkload::particle_trace(&dom, 0.05, 10, 0.1, 1);
        let b = QueryWorkload::particle_trace(&dom, 0.05, 10, 0.1, 1);
        let c = QueryWorkload::particle_trace(&dom, 0.05, 10, 0.1, 2);
        assert_eq!(a.queries, b.queries);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn animation_queries_span_one_time_step() {
        use pargrid_geom::Point;
        let dom = Rect::new(Point::new2(0.0, 0.0), Point::new2(10.0, 100.0));
        let w = QueryWorkload::animation(&dom, 0.25, 10);
        for q in &w.queries {
            assert!((q.side(0) - 1.0).abs() < 1e-9);
        }
        // 0.25 -> frac 0.25^(1/1) -> 4 tiles per step.
        assert_eq!(w.len(), 4 * 10);
    }
}
