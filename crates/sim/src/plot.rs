//! Minimal SVG line-chart renderer for the experiment harness.
//!
//! The paper's results are figures; this module lets `repro` regenerate them
//! as actual plots (`results/*.svg`) without pulling in a plotting
//! dependency. Hand-rolled on purpose: a few hundred lines of plain SVG is
//! all a response-time-vs-disks chart needs.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// Dash the line (used for the "optimal" reference curve).
    pub dashed: bool,
}

impl Series {
    /// Creates a solid series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
            dashed: false,
        }
    }

    /// Creates a dashed series.
    pub fn dashed(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
            dashed: true,
        }
    }
}

/// A line chart.
#[derive(Clone, Debug)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series to draw.
    pub series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 150.0; // room for the legend
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 52.0;
const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Data bounds across all series (`None` when there are no points).
    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut b: Option<(f64, f64, f64, f64)> = None;
        for s in &self.series {
            for &(x, y) in &s.points {
                b = Some(match b {
                    None => (x, x, y, y),
                    Some((x0, x1, y0, y1)) => (x0.min(x), x1.max(x), y0.min(y), y1.max(y)),
                });
            }
        }
        b
    }

    /// Renders the chart as an SVG document.
    ///
    /// # Panics
    /// Panics if the chart has no data points or contains non-finite values.
    pub fn to_svg(&self) -> String {
        let (x0, x1, y0, y1) = self.bounds().expect("chart has no data");
        assert!(
            [x0, x1, y0, y1].iter().all(|v| v.is_finite()),
            "non-finite data"
        );
        // Pad degenerate ranges; anchor y at 0 for response-time charts.
        let x_span = (x1 - x0).max(1e-9);
        let y_lo = 0.0f64.min(y0);
        let y_span = (y1 - y_lo).max(1e-9) * 1.05;

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (x - x0) / x_span * plot_w;
        let py = |y: f64| MARGIN_T + plot_h - (y - y_lo) / y_span * plot_h;

        let mut svg = String::with_capacity(8192);
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        // Title and axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="14">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            escape(&self.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );
        // Frame and ticks.
        let _ = write!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
        );
        for i in 0..=5 {
            let fx = x0 + x_span * i as f64 / 5.0;
            let fy = y_lo + y_span * i as f64 / 5.0;
            let gx = px(fx);
            let gy = py(fy);
            let _ = write!(
                svg,
                r##"<line x1="{gx}" y1="{MARGIN_T}" x2="{gx}" y2="{}" stroke="#ddd"/>"##,
                MARGIN_T + plot_h
            );
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{gy}" x2="{}" y2="{gy}" stroke="#ddd"/>"##,
                MARGIN_L + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{gx}" y="{}" text-anchor="middle" font-size="10">{}</text>"#,
                MARGIN_T + plot_h + 16.0,
                trim_num(fx)
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end" font-size="10">{}</text>"#,
                MARGIN_L - 6.0,
                gy + 3.0,
                trim_num(fy)
            );
        }
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let dash = if s.dashed {
                r#" stroke-dasharray="6 4""#
            } else {
                ""
            };
            let mut path = String::new();
            for (j, &(x, y)) in s.points.iter().enumerate() {
                let _ = write!(
                    path,
                    "{}{:.1},{:.1}",
                    if j == 0 { "M" } else { " L" },
                    px(x),
                    py(y)
                );
            }
            let _ = write!(
                svg,
                r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.8"{dash}/>"#
            );
            for &(x, y) in &s.points {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.4" fill="{color}"/>"#,
                    px(x),
                    py(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 14.0 + i as f64 * 18.0;
            let lx = WIDTH - MARGIN_R + 12.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="1.8"{dash}/>"#,
                lx + 22.0
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="11">{}</text>"#,
                lx + 28.0,
                ly + 4.0,
                escape(&s.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Writes the SVG to a file, creating parent directories.
    pub fn write_svg<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_svg())
    }
}

/// One horizontal track of a [`GanttChart`] — typically a disk.
#[derive(Clone, Debug)]
pub struct GanttLane {
    /// Track label drawn left of the lane.
    pub label: String,
    /// `(start, duration)` intervals in data coordinates (e.g. virtual µs).
    pub spans: Vec<(f64, f64)>,
}

impl GanttLane {
    /// Creates a lane.
    pub fn new(label: impl Into<String>, spans: Vec<(f64, f64)>) -> Self {
        GanttLane {
            label: label.into(),
            spans,
        }
    }
}

/// A per-track timeline chart: one row per lane, one rectangle per span.
///
/// Used to render per-disk service timelines from an engine trace — each
/// disk is a lane and each batch it served is a filled interval, so load
/// imbalance between disks is visible as ragged right edges.
#[derive(Clone, Debug)]
pub struct GanttChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// The lanes to draw, top to bottom.
    pub lanes: Vec<GanttLane>,
}

impl GanttChart {
    /// Creates an empty chart.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        GanttChart {
            title: title.into(),
            x_label: x_label.into(),
            lanes: Vec::new(),
        }
    }

    /// Adds a lane.
    pub fn push(&mut self, lane: GanttLane) {
        self.lanes.push(lane);
    }

    /// Time bounds across all spans (`None` when there are no spans).
    fn bounds(&self) -> Option<(f64, f64)> {
        let mut b: Option<(f64, f64)> = None;
        for lane in &self.lanes {
            for &(start, dur) in &lane.spans {
                let end = start + dur;
                b = Some(match b {
                    None => (start, end),
                    Some((lo, hi)) => (lo.min(start), hi.max(end)),
                });
            }
        }
        b
    }

    /// Renders the chart as an SVG document.
    ///
    /// # Panics
    /// Panics if no lane has any span or a span is non-finite.
    pub fn to_svg(&self) -> String {
        let (t0, t1) = self.bounds().expect("chart has no data");
        assert!(t0.is_finite() && t1.is_finite(), "non-finite data");
        let t_span = (t1 - t0).max(1e-9);

        // Lanes scale the canvas vertically; labels live in the left margin.
        let lane_h = 18.0;
        let lane_gap = 4.0;
        let margin_l = 96.0;
        let margin_r = 24.0;
        let n = self.lanes.len() as f64;
        let plot_w = WIDTH - margin_l - margin_r;
        let plot_h = n * (lane_h + lane_gap) + lane_gap;
        let height = MARGIN_T + plot_h + MARGIN_B;
        let px = |t: f64| margin_l + (t - t0) / t_span * plot_w;

        let mut svg = String::with_capacity(8192);
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{height}" viewBox="0 0 {WIDTH} {height}" font-family="sans-serif">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{height}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="14">{}</text>"#,
            margin_l + plot_w / 2.0,
            escape(&self.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
            margin_l + plot_w / 2.0,
            height - 12.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r##"<rect x="{margin_l}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##
        );
        // Vertical time grid with tick labels.
        for i in 0..=5 {
            let ft = t0 + t_span * i as f64 / 5.0;
            let gx = px(ft);
            let _ = write!(
                svg,
                r##"<line x1="{gx}" y1="{MARGIN_T}" x2="{gx}" y2="{}" stroke="#ddd"/>"##,
                MARGIN_T + plot_h
            );
            let _ = write!(
                svg,
                r#"<text x="{gx}" y="{}" text-anchor="middle" font-size="10">{}</text>"#,
                MARGIN_T + plot_h + 16.0,
                trim_num(ft)
            );
        }
        // Lanes.
        for (i, lane) in self.lanes.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let top = MARGIN_T + lane_gap + i as f64 * (lane_h + lane_gap);
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end" font-size="10">{}</text>"#,
                margin_l - 6.0,
                top + lane_h / 2.0 + 3.0,
                escape(&lane.label)
            );
            for &(start, dur) in &lane.spans {
                assert!(start.is_finite() && dur.is_finite(), "non-finite data");
                // Keep hairline spans visible at this resolution.
                let w = (dur / t_span * plot_w).max(0.6);
                let _ = write!(
                    svg,
                    r##"<rect x="{:.1}" y="{top}" width="{w:.1}" height="{lane_h}" fill="{color}" fill-opacity="0.85" stroke="#333" stroke-width="0.4"/>"##,
                    px(start)
                );
            }
        }
        svg.push_str("</svg>");
        svg
    }

    /// Writes the SVG to a file, creating parent directories.
    pub fn write_svg<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_svg())
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn trim_num(v: f64) -> String {
    if v.abs() >= 100.0 || (v.fract() == 0.0 && v.abs() < 1e6) {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LineChart {
        let mut c = LineChart::new("Figure", "disks", "response");
        c.push(Series::new(
            "DM/D",
            vec![(4.0, 4.8), (16.0, 3.8), (32.0, 3.8)],
        ));
        c.push(Series::dashed(
            "optimal",
            vec![(4.0, 4.4), (16.0, 1.1), (32.0, 0.6)],
        ));
        c
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = sample().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("DM/D"));
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn escapes_labels() {
        let mut c = LineChart::new("a < b & c", "x", "y");
        c.push(Series::new("s<1>", vec![(0.0, 1.0), (1.0, 2.0)]));
        let svg = c.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("s<1>"));
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_chart_panics() {
        let c = LineChart::new("t", "x", "y");
        let _ = c.to_svg();
    }

    #[test]
    fn write_creates_dirs() {
        let dir = std::env::temp_dir().join("pargrid_plot_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/fig.svg");
        sample().write_svg(&path).expect("write");
        assert!(std::fs::read_to_string(&path)
            .expect("read")
            .contains("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gantt_renders_one_rect_per_span() {
        let mut g = GanttChart::new("Disk timeline", "virtual us");
        g.push(GanttLane::new("w0/d0", vec![(0.0, 10.0), (15.0, 5.0)]));
        g.push(GanttLane::new("w0/d1", vec![(2.0, 20.0)]));
        let svg = g.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // 1 background + 1 frame + 3 span rects.
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("w0/d1"));
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_gantt_panics() {
        let g = GanttChart::new("t", "x");
        let _ = g.to_svg();
    }

    #[test]
    fn coordinates_stay_inside_canvas() {
        let svg = sample().to_svg();
        // All circle centers inside the viewbox.
        for part in svg.split("<circle ").skip(1) {
            let cx: f64 = part
                .split("cx=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .and_then(|s| s.parse().ok())
                .expect("cx");
            assert!((0.0..=WIDTH).contains(&cx));
        }
    }
}
