//! Elastic re-declustering: resize a cluster with bounded data movement.
//!
//! Every scheme in the paper assigns buckets for a *fixed* number of disks
//! `M`; when a disk joins or leaves, the only textbook option is a full
//! re-decluster that relocates nearly every bucket. This crate computes
//! **incremental minimax repair** plans instead: given a current assignment
//! over a set of disk *slots* and a target active-slot mask, it finds a
//! small set of bucket moves that
//!
//! 1. restores the `⌈N/M'⌉` primary balance invariant (and the `⌈2N/M'⌉`
//!    total invariant when a chained replica layer is present), and
//! 2. greedily repairs the proximity objective — each moved bucket lands on
//!    the disk minimizing the maximum [proximity](pargrid_geom::proximity)
//!    to that disk's residents, the same criterion
//!    [`pargrid_core::incremental`] applies to freshly split buckets —
//!
//! with a *quality knob* spending extra moves on objective repair beyond
//! the balance minimum. The emitted [`RebalancePlan`] carries the ordered
//! moves, predicted movement bytes, and the predicted objective next to a
//! full re-decluster baseline (fresh minimax, relabeled to maximally agree
//! with the current layout) so callers can score incremental repair against
//! the expensive alternative before touching any data.
//!
//! The plan speaks *slot space*: disk indices are worker slots of the
//! serving engine and never renumber. Growing a cluster activates standby
//! slots; shrinking deactivates a slot after draining it. The execution
//! half — copying pages, flipping catalog ownership under the mutation
//! serializer — lives in `pargrid-parallel`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod repair;

pub use plan::{BucketMove, CopyKind, RebalancePlan, RepairConfig};
pub use repair::{co_residency_objective, plan_grow, plan_rebalance, plan_shrink};
