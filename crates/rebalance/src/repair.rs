//! Incremental minimax repair: compute a bounded-movement rebalance plan.

use crate::plan::{BucketMove, CopyKind, RebalancePlan, RepairConfig};
use pargrid_core::method::DeclusterMethod;
use pargrid_core::{DeclusterInput, EdgeWeight, ReplicatedAssignment};

/// Minimum objective improvement a quality-phase move must buy; anything
/// smaller is numerical noise and not worth a data copy.
const MIN_GAIN: f64 = 1e-9;

/// The proximity objective the repair phases optimize: the mean over all
/// buckets of the maximum similarity between the bucket and any co-resident
/// on its disk (0 for a bucket alone on its disk). Lower is better — it is
/// the per-bucket analogue of the minimax edge criterion, and correlates
/// with the paper's response-time metric without needing a query workload.
pub fn co_residency_objective(input: &DeclusterInput, disks: &[u32], weight: EdgeWeight) -> f64 {
    let n = input.n_buckets();
    assert_eq!(disks.len(), n, "assignment length mismatch");
    if n == 0 {
        return 0.0;
    }
    let n_slots = disks.iter().map(|&d| d as usize + 1).max().unwrap_or(1);
    let mut residents: Vec<Vec<usize>> = vec![Vec::new(); n_slots];
    for (pos, &d) in disks.iter().enumerate() {
        residents[d as usize].push(pos);
    }
    let mut sum = 0.0;
    for group in &residents {
        for &a in group {
            sum += group
                .iter()
                .filter(|&&b| b != a)
                .map(|&b| weight.similarity(input, a, b))
                .fold(0.0f64, f64::max);
        }
    }
    sum / n as f64
}

/// Maximum similarity between `pos` and the residents of slot `d`,
/// excluding `pos` itself and `excl` (pass `usize::MAX` to exclude nobody).
fn max_sim(
    input: &DeclusterInput,
    weight: EdgeWeight,
    residents: &[Vec<usize>],
    pos: usize,
    d: usize,
    excl: usize,
) -> f64 {
    residents[d]
        .iter()
        .filter(|&&r| r != pos && r != excl)
        .map(|&r| weight.similarity(input, pos, r))
        .fold(0.0f64, f64::max)
}

/// Computes an incremental minimax repair plan.
///
/// `primary[pos]` / `secondary[pos]` give the current slot of each copy of
/// the bucket at input position `pos`; `target_active[d]` says whether slot
/// `d` serves data after the rebalance. Slots are never renumbered — a grow
/// activates previously-inactive slots, a shrink drains one. The plan
/// guarantees, over the `M'` target-active slots:
///
/// * every primary sits on an active slot and per-slot primary load is
///   within `[⌊N/M'⌋, ⌈N/M'⌉]` (a joined disk cannot stay empty);
/// * when a secondary layer is present: every secondary sits on an active
///   slot, differs from its bucket's primary, and per-slot *total* load is
///   within `[⌊2N/M'⌋, ⌈2N/M'⌉]`.
///
/// Moves are chosen by the same criterion `core::incremental` applies to
/// freshly split buckets — land where the maximum proximity to residents
/// is smallest — and [`RepairConfig::quality`] optionally spends extra
/// moves improving the objective beyond the balance minimum.
///
/// # Panics
/// Panics if lengths disagree, a slot index is out of range, no slot is
/// target-active, or a secondary layer is present with fewer than two
/// target-active slots.
pub fn plan_rebalance(
    input: &DeclusterInput,
    primary: &[u32],
    secondary: Option<&[u32]>,
    target_active: &[bool],
    cfg: &RepairConfig,
) -> RebalancePlan {
    let n = input.n_buckets();
    let n_slots = target_active.len();
    assert_eq!(primary.len(), n, "primary length mismatch");
    assert!(
        primary.iter().all(|&d| (d as usize) < n_slots),
        "primary slot out of range"
    );
    if let Some(sec) = secondary {
        assert_eq!(sec.len(), n, "secondary length mismatch");
        assert!(
            sec.iter().all(|&d| (d as usize) < n_slots),
            "secondary slot out of range"
        );
    }
    let m = target_active.iter().filter(|&&a| a).count();
    assert!(m >= 1, "no target-active slot");
    assert!(
        secondary.is_none() || m >= 2,
        "replication needs at least two active slots"
    );
    let weight = cfg.weight;

    // ---- primary repair -------------------------------------------------
    let cap = n.div_ceil(m);
    let floor = n / m;
    let mut new_primary = primary.to_vec();
    let mut residents: Vec<Vec<usize>> = vec![Vec::new(); n_slots];
    for (pos, &d) in new_primary.iter().enumerate() {
        residents[d as usize].push(pos);
    }
    let mut load: Vec<usize> = residents.iter().map(|r| r.len()).collect();
    let active: Vec<usize> = (0..n_slots).filter(|&d| target_active[d]).collect();

    let relocate = |pos: usize,
                    to: usize,
                    new_primary: &mut Vec<u32>,
                    residents: &mut Vec<Vec<usize>>,
                    load: &mut Vec<usize>| {
        let from = new_primary[pos] as usize;
        residents[from].retain(|&r| r != pos);
        load[from] -= 1;
        new_primary[pos] = to as u32;
        residents[to].push(pos);
        load[to] += 1;
    };

    // Phase 1 — rehome buckets stranded on deactivated slots: each goes to
    // the active slot minimizing max proximity to residents, under the cap.
    let homeless: Vec<usize> = (0..n)
        .filter(|&pos| !target_active[new_primary[pos] as usize])
        .collect();
    for pos in homeless {
        let mut best = usize::MAX;
        let mut best_score = f64::INFINITY;
        for &d in &active {
            if load[d] >= cap {
                continue;
            }
            let s = max_sim(input, weight, &residents, pos, d, usize::MAX);
            if s < best_score {
                best_score = s;
                best = d;
            }
        }
        if best == usize::MAX {
            best = *active.iter().min_by_key(|&&d| load[d]).expect("m >= 1");
        }
        relocate(pos, best, &mut new_primary, &mut residents, &mut load);
    }

    // Phase 2 — evict from over-cap slots (a grow lowers the cap): move the
    // (bucket, receiver) pair with the smallest landing proximity.
    while let Some(&donor) = active
        .iter()
        .filter(|&&d| load[d] > cap)
        .max_by_key(|&&d| load[d])
    {
        let mut best: Option<(usize, usize)> = None;
        let mut best_score = f64::INFINITY;
        for &pos in &residents[donor] {
            for &e in &active {
                if e == donor || load[e] >= cap {
                    continue;
                }
                let s = max_sim(input, weight, &residents, pos, e, usize::MAX);
                if s < best_score {
                    best_score = s;
                    best = Some((pos, e));
                }
            }
        }
        let (pos, e) = best.expect("sum of loads is N <= M'*cap, so a receiver exists");
        relocate(pos, e, &mut new_primary, &mut residents, &mut load);
    }

    // Phase 3 — pull into under-floor slots (a joined disk must not stay
    // empty): take the bucket from an above-floor donor that lands with
    // the smallest proximity on the receiver.
    while let Some(&recv) = active
        .iter()
        .filter(|&&d| load[d] < floor)
        .min_by_key(|&&d| load[d])
    {
        let mut best: Option<usize> = None;
        let mut best_score = f64::INFINITY;
        for &d in &active {
            if d == recv || load[d] <= floor {
                continue;
            }
            for &pos in &residents[d] {
                let s = max_sim(input, weight, &residents, pos, recv, usize::MAX);
                if s < best_score {
                    best_score = s;
                    best = Some(pos);
                }
            }
        }
        let pos = best.expect("a slot below floor implies a donor above floor");
        relocate(pos, recv, &mut new_primary, &mut residents, &mut load);
    }

    // Phase 4 — quality budget: spend up to `quality × N` extra moves on
    // relocations (one move) and swaps (two moves) that strictly improve
    // the objective while staying inside [floor, cap].
    let mut budget = (cfg.quality.max(0.0) * n as f64).round() as usize;
    while budget > 0 {
        let mut best: Option<(usize, usize)> = None;
        let mut best_gain = MIN_GAIN;
        for (pos, &dslot) in new_primary.iter().enumerate() {
            let d = dslot as usize;
            if load[d] <= floor {
                continue;
            }
            let here = max_sim(input, weight, &residents, pos, d, usize::MAX);
            for &e in &active {
                if e == d || load[e] >= cap {
                    continue;
                }
                let gain = here - max_sim(input, weight, &residents, pos, e, usize::MAX);
                if gain > best_gain {
                    best_gain = gain;
                    best = Some((pos, e));
                }
            }
        }
        match best {
            Some((pos, e)) => {
                relocate(pos, e, &mut new_primary, &mut residents, &mut load);
                budget -= 1;
            }
            None => break,
        }
    }
    // Swaps keep both loads unchanged, so they work even when floor == cap
    // leaves no slack for relocations. First-improvement keeps the scan
    // bounded.
    'swaps: while budget >= 2 {
        for a in 0..n {
            let da = new_primary[a] as usize;
            let here_a = max_sim(input, weight, &residents, a, da, usize::MAX);
            for b in (a + 1)..n {
                let db = new_primary[b] as usize;
                if da == db {
                    continue;
                }
                let here_b = max_sim(input, weight, &residents, b, db, usize::MAX);
                // After the swap, `a` joins db (minus b) and `b` joins da
                // (minus a); the pair never co-resides.
                let there_a = max_sim(input, weight, &residents, a, db, b);
                let there_b = max_sim(input, weight, &residents, b, da, a);
                if (here_a + here_b) - (there_a + there_b) > MIN_GAIN {
                    relocate(a, db, &mut new_primary, &mut residents, &mut load);
                    relocate(b, da, &mut new_primary, &mut residents, &mut load);
                    budget -= 2;
                    continue 'swaps;
                }
            }
        }
        break;
    }

    // ---- secondary repair -----------------------------------------------
    let new_secondary = secondary.map(|sec| {
        let tcap = (2 * n).div_ceil(m);
        let tfloor = (2 * n) / m;
        let mut new_sec = sec.to_vec();
        let mut total = load.clone();
        // Keep secondaries that are still valid (active slot, not the new
        // primary); queue the rest for re-placement.
        let mut invalid = Vec::new();
        for pos in 0..n {
            let s = new_sec[pos] as usize;
            if target_active[s] && new_sec[pos] != new_primary[pos] {
                total[s] += 1;
            } else {
                invalid.push(pos);
            }
        }
        // Chain-preferring re-placement, mirroring `place_fresh_replica`
        // over the active mask: walk the chain after the primary, earliest
        // position wins ties, a strictly less-loaded slot wins outright.
        for &pos in &invalid {
            let p = new_primary[pos] as usize;
            let mut best = usize::MAX;
            for off in 1..n_slots {
                let d = (p + off) % n_slots;
                if !target_active[d] {
                    continue;
                }
                if best == usize::MAX || total[d] < total[best] {
                    best = d;
                }
            }
            assert!(best != usize::MAX, "m >= 2 guarantees a non-primary slot");
            new_sec[pos] = best as u32;
            total[best] += 1;
        }
        // Re-balance totals by moving only secondaries (primaries carry the
        // proximity objective and are already settled).
        while let Some(&donor) = active
            .iter()
            .filter(|&&d| total[d] > tcap)
            .max_by_key(|&&d| total[d])
        {
            let mut best: Option<(usize, usize)> = None;
            for pos in 0..n {
                if new_sec[pos] as usize != donor {
                    continue;
                }
                for &e in &active {
                    if e == donor || total[e] >= tcap || e as u32 == new_primary[pos] {
                        continue;
                    }
                    if best.is_none_or(|(_, prev)| total[e] < total[prev]) {
                        best = Some((pos, e));
                    }
                }
            }
            let Some((pos, e)) = best else { break };
            total[donor] -= 1;
            new_sec[pos] = e as u32;
            total[e] += 1;
        }
        while let Some(&recv) = active
            .iter()
            .filter(|&&d| total[d] < tfloor)
            .min_by_key(|&&d| total[d])
        {
            let mut best: Option<(usize, usize)> = None;
            for pos in 0..n {
                let d = new_sec[pos] as usize;
                if d == recv || total[d] <= tfloor || recv as u32 == new_primary[pos] {
                    continue;
                }
                if best.is_none_or(|(_, prev)| total[d] > total[prev]) {
                    best = Some((pos, d));
                }
            }
            let Some((pos, _)) = best else { break };
            total[new_sec[pos] as usize] -= 1;
            new_sec[pos] = recv as u32;
            total[recv] += 1;
        }
        new_sec
    });

    // ---- emit moves (one per changed copy, in position order) ------------
    let mut moves = Vec::new();
    let mut moved_bytes = 0u64;
    let mut primary_moves = 0usize;
    let mut replica_moves = 0usize;
    for pos in 0..n {
        if new_primary[pos] != primary[pos] {
            let bytes = (input.buckets[pos].n_records * cfg.record_bytes) as u64;
            moves.push(BucketMove {
                bucket: input.buckets[pos].id,
                copy: CopyKind::Primary,
                from: primary[pos],
                to: new_primary[pos],
                bytes,
            });
            primary_moves += 1;
            moved_bytes += bytes;
        }
    }
    if let (Some(old), Some(new)) = (secondary, new_secondary.as_deref()) {
        for pos in 0..n {
            if new[pos] != old[pos] {
                let bytes = (input.buckets[pos].n_records * cfg.record_bytes) as u64;
                moves.push(BucketMove {
                    bucket: input.buckets[pos].id,
                    copy: CopyKind::Replica,
                    from: old[pos],
                    to: new[pos],
                    bytes,
                });
                replica_moves += 1;
                moved_bytes += bytes;
            }
        }
    }

    // ---- full re-decluster baseline --------------------------------------
    let (full_moves, baseline_objective) =
        full_redecluster_baseline(input, primary, target_active, &active, cfg);

    RebalancePlan {
        moves,
        moved_bytes,
        primary_moves,
        replica_moves,
        full_moves,
        current_objective: co_residency_objective(input, primary, weight),
        predicted_objective: co_residency_objective(input, &new_primary, weight),
        baseline_objective,
        new_primary,
        new_secondary,
        new_active: target_active.to_vec(),
    }
}

/// Scores the expensive alternative: a fresh minimax assignment over the
/// `M'` target slots, with its dense disk labels matched to active slots by
/// greedy maximum overlap with the current layout (the fewest moves any
/// relabeling of the fresh assignment could achieve greedily — the
/// baseline's best case). Returns `(buckets moved, objective)`.
fn full_redecluster_baseline(
    input: &DeclusterInput,
    primary: &[u32],
    target_active: &[bool],
    active: &[usize],
    cfg: &RepairConfig,
) -> (usize, f64) {
    let n = input.n_buckets();
    let m = active.len();
    let fresh = DeclusterMethod::Minimax(cfg.weight).assign(input, m, cfg.seed);
    let mut slot_index = vec![usize::MAX; target_active.len()];
    for (k, &s) in active.iter().enumerate() {
        slot_index[s] = k;
    }
    let mut overlap = vec![vec![0usize; m]; m];
    for pos in 0..n {
        let k = slot_index[primary[pos] as usize];
        if k != usize::MAX {
            overlap[fresh.disk_at(pos) as usize][k] += 1;
        }
    }
    let mut pairs: Vec<(usize, usize, usize)> = (0..m)
        .flat_map(|dense| (0..m).map(move |k| (dense, k)))
        .map(|(dense, k)| (overlap[dense][k], dense, k))
        .collect();
    pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut dense_to_slot = vec![usize::MAX; m];
    let mut slot_used = vec![false; m];
    for (_, dense, k) in pairs {
        if dense_to_slot[dense] == usize::MAX && !slot_used[k] {
            dense_to_slot[dense] = active[k];
            slot_used[k] = true;
        }
    }
    let moved = (0..n)
        .filter(|&pos| dense_to_slot[fresh.disk_at(pos) as usize] as u32 != primary[pos])
        .count();
    (
        moved,
        co_residency_objective(input, fresh.disks(), cfg.weight),
    )
}

/// Plans a grow: all current disks stay active and `add` fresh slots join.
/// The returned plan's slot space has `current.n_disks() + add` slots.
pub fn plan_grow(
    input: &DeclusterInput,
    current: &ReplicatedAssignment,
    add: usize,
    cfg: &RepairConfig,
) -> RebalancePlan {
    let m = current.n_disks();
    let target = vec![true; m + add];
    let sec: Vec<u32> = (0..input.n_buckets())
        .map(|pos| current.secondary_at(pos))
        .collect();
    plan_rebalance(input, current.primary().disks(), Some(&sec), &target, cfg)
}

/// Plans a shrink: slot `remove` drains and deactivates, all other disks
/// stay. Requires at least three disks (the survivors must still hold two
/// distinct copies of every bucket).
///
/// # Panics
/// Panics if `remove` is out of range or fewer than three disks exist.
pub fn plan_shrink(
    input: &DeclusterInput,
    current: &ReplicatedAssignment,
    remove: u32,
    cfg: &RepairConfig,
) -> RebalancePlan {
    let m = current.n_disks();
    assert!((remove as usize) < m, "slot {remove} out of range for {m}");
    assert!(m >= 3, "shrinking below two disks breaks replication");
    let mut target = vec![true; m];
    target[remove as usize] = false;
    let sec: Vec<u32> = (0..input.n_buckets())
        .map(|pos| current.secondary_at(pos))
        .collect();
    plan_rebalance(input, current.primary().disks(), Some(&sec), &target, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_core::Assignment;
    use pargrid_gridfile::CartesianProductFile;

    fn instance(nx: u32, ny: u32) -> DeclusterInput {
        DeclusterInput::from_cartesian(&CartesianProductFile::new(&[nx, ny]))
    }

    fn replicated(input: &DeclusterInput, m: usize) -> ReplicatedAssignment {
        DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(input, m, 7)
    }

    fn check_plan(input: &DeclusterInput, plan: &RebalancePlan) {
        let n = input.n_buckets();
        let m = plan.new_active.iter().filter(|&&a| a).count();
        let cap = n.div_ceil(m);
        let floor = n / m;
        let mut load = vec![0usize; plan.new_active.len()];
        for &d in &plan.new_primary {
            assert!(plan.new_active[d as usize], "primary on inactive slot");
            load[d as usize] += 1;
        }
        for (d, &l) in load.iter().enumerate() {
            if plan.new_active[d] {
                assert!(
                    (floor..=cap).contains(&l),
                    "slot {d} load {l} not in [{floor},{cap}]"
                );
            } else {
                assert_eq!(l, 0);
            }
        }
        if let Some(sec) = &plan.new_secondary {
            let tcap = (2 * n).div_ceil(m);
            let tfloor = (2 * n) / m;
            let mut total = load;
            for (pos, &s) in sec.iter().enumerate() {
                assert!(plan.new_active[s as usize], "secondary on inactive slot");
                assert_ne!(s, plan.new_primary[pos], "secondary equals primary");
                total[s as usize] += 1;
            }
            for (d, &t) in total.iter().enumerate() {
                if plan.new_active[d] {
                    assert!(
                        (tfloor..=tcap).contains(&t),
                        "slot {d} total {t} not in [{tfloor},{tcap}]"
                    );
                }
            }
        }
    }

    #[test]
    fn grow_restores_balance_with_bounded_movement() {
        let input = instance(9, 9);
        let ra = replicated(&input, 8);
        let plan = plan_grow(&input, &ra, 1, &RepairConfig::default());
        check_plan(&input, &plan);
        assert!(plan.full_moves > 0);
        assert!(
            plan.movement_ratio() <= 0.35,
            "incremental {} vs full {} ({}x)",
            plan.primary_moves,
            plan.full_moves,
            plan.movement_ratio()
        );
        // The new slot actually received data.
        assert!(plan.new_primary.contains(&8));
    }

    #[test]
    fn shrink_drains_the_removed_slot() {
        let input = instance(8, 8);
        let ra = replicated(&input, 5);
        let plan = plan_shrink(&input, &ra, 2, &RepairConfig::default());
        check_plan(&input, &plan);
        assert!(plan.new_primary.iter().all(|&d| d != 2));
        assert!(plan.new_secondary.as_ref().unwrap().iter().all(|&d| d != 2));
        // Every bucket previously on slot 2 (either copy) appears in moves.
        for pos in 0..input.n_buckets() {
            if ra.primary().disk_at(pos) == 2 {
                let id = input.buckets[pos].id;
                assert!(plan
                    .moves
                    .iter()
                    .any(|mv| mv.bucket == id && mv.copy == CopyKind::Primary));
            }
        }
    }

    #[test]
    fn quality_knob_trades_moves_for_objective() {
        let input = instance(10, 10);
        let ra = replicated(&input, 6);
        let cheap = plan_grow(
            &input,
            &ra,
            1,
            &RepairConfig {
                quality: 0.0,
                ..RepairConfig::default()
            },
        );
        let rich = plan_grow(
            &input,
            &ra,
            1,
            &RepairConfig {
                quality: 0.5,
                ..RepairConfig::default()
            },
        );
        check_plan(&input, &cheap);
        check_plan(&input, &rich);
        assert!(rich.primary_moves >= cheap.primary_moves);
        assert!(rich.predicted_objective <= cheap.predicted_objective + 1e-12);
    }

    #[test]
    fn identity_target_moves_nothing_at_zero_quality() {
        let input = instance(6, 6);
        let ra = replicated(&input, 4);
        let target = vec![true; 4];
        let sec: Vec<u32> = (0..input.n_buckets()).map(|p| ra.secondary_at(p)).collect();
        let plan = plan_rebalance(
            &input,
            ra.primary().disks(),
            Some(&sec),
            &target,
            &RepairConfig {
                quality: 0.0,
                ..RepairConfig::default()
            },
        );
        assert_eq!(plan.n_moves(), 0, "balanced input needs no moves");
        assert_eq!(plan.new_primary, ra.primary().disks());
    }

    #[test]
    fn plans_are_deterministic() {
        let input = instance(7, 9);
        let ra = replicated(&input, 5);
        let a = plan_grow(&input, &ra, 2, &RepairConfig::default());
        let b = plan_grow(&input, &ra, 2, &RepairConfig::default());
        assert_eq!(a.new_primary, b.new_primary);
        assert_eq!(a.new_secondary, b.new_secondary);
        assert_eq!(a.n_moves(), b.n_moves());
    }

    #[test]
    fn movement_bytes_follow_record_sizes() {
        let input = instance(6, 6);
        let ra = replicated(&input, 3);
        let plan = plan_grow(
            &input,
            &ra,
            1,
            &RepairConfig {
                record_bytes: 64,
                quality: 0.0,
                ..RepairConfig::default()
            },
        );
        // Cartesian instances hold one record per bucket.
        assert_eq!(plan.moved_bytes, 64 * plan.n_moves() as u64);
        assert!(plan.moves.iter().all(|mv| mv.bytes == 64));
    }

    #[test]
    fn skewed_layout_is_repaired_even_without_resize() {
        // All buckets piled on slot 0 of 4: the plan must spread them.
        let input = instance(6, 6);
        let n = input.n_buckets();
        let primary = Assignment::new(&input, 4, vec![0; n]);
        let plan = plan_rebalance(
            &input,
            primary.disks(),
            None,
            &[true; 4],
            &RepairConfig::default(),
        );
        check_plan(&input, &plan);
        assert!(plan.predicted_objective < plan.current_objective);
        assert!(plan.new_secondary.is_none());
    }

    #[test]
    fn objective_prefers_spread_layouts() {
        let input = instance(4, 4);
        let n = input.n_buckets();
        let piled = vec![0u32; n];
        let spread: Vec<u32> = (0..n as u32).collect();
        let w = EdgeWeight::Proximity;
        assert!(
            co_residency_objective(&input, &spread, w) < co_residency_objective(&input, &piled, w)
        );
        assert_eq!(co_residency_objective(&input, &spread, w), 0.0);
    }
}
