//! Plan types: what a rebalance will move and what it predicts.

use pargrid_core::EdgeWeight;

/// Which copy of a bucket a move relocates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyKind {
    /// The primary copy (serves queries on the healthy path).
    Primary,
    /// The chained secondary copy (serves fail-over reads).
    Replica,
}

/// One bucket-copy relocation: copy the pages of `bucket`'s `copy` from
/// slot `from` to slot `to`, then flip catalog ownership.
#[derive(Clone, Copy, Debug)]
pub struct BucketMove {
    /// Grid-file bucket id.
    pub bucket: u32,
    /// Which copy moves.
    pub copy: CopyKind,
    /// Slot currently holding the copy.
    pub from: u32,
    /// Slot that will hold the copy after the move.
    pub to: u32,
    /// Predicted payload bytes (records × record size; page headers excluded).
    pub bytes: u64,
}

/// Tuning for the repair planner.
#[derive(Clone, Copy, Debug)]
pub struct RepairConfig {
    /// Similarity measure for the minimax criterion.
    pub weight: EdgeWeight,
    /// Extra movement budget as a fraction of `N`: after balance is
    /// restored, up to `quality × N` additional moves may be spent on
    /// relocations (and swaps, at two moves each) that strictly improve
    /// the proximity objective. `0.0` = balance-minimal plan.
    pub quality: f64,
    /// Seed for the full re-decluster baseline (minimax refinement).
    pub seed: u64,
    /// Bytes per record, for movement-volume prediction (0 = unknown).
    pub record_bytes: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            weight: EdgeWeight::Proximity,
            quality: 0.25,
            seed: 1,
            record_bytes: 0,
        }
    }
}

/// The output of the planner: ordered moves plus predicted cost/quality,
/// scored against a full re-decluster baseline.
#[derive(Clone, Debug)]
pub struct RebalancePlan {
    /// Bucket-copy relocations, in execution order.
    pub moves: Vec<BucketMove>,
    /// Total predicted payload bytes across all moves.
    pub moved_bytes: u64,
    /// How many moves relocate a primary copy.
    pub primary_moves: usize,
    /// How many moves relocate a secondary copy.
    pub replica_moves: usize,
    /// Primary buckets a full re-decluster would move for the same target
    /// (fresh minimax, relabeled to maximally agree with the current
    /// layout — the baseline's best case).
    pub full_moves: usize,
    /// Proximity objective of the current primary layout (mean over
    /// buckets of the maximum similarity to a co-resident bucket; lower
    /// separates proximate buckets better).
    pub current_objective: f64,
    /// Predicted objective after applying this plan.
    pub predicted_objective: f64,
    /// Objective of the full re-decluster baseline.
    pub baseline_objective: f64,
    /// Post-rebalance primary slot per bucket position.
    pub new_primary: Vec<u32>,
    /// Post-rebalance secondary slot per bucket position (when the input
    /// had a replica layer).
    pub new_secondary: Option<Vec<u32>>,
    /// The target active mask the plan was computed for.
    pub new_active: Vec<bool>,
}

impl RebalancePlan {
    /// Total number of copy relocations.
    pub fn n_moves(&self) -> usize {
        self.moves.len()
    }

    /// Primary moves of this plan as a fraction of the full re-decluster
    /// baseline's (the headline "bounded data movement" metric; `0.0` when
    /// the baseline itself moves nothing).
    pub fn movement_ratio(&self) -> f64 {
        if self.full_moves == 0 {
            0.0
        } else {
            self.primary_moves as f64 / self.full_moves as f64
        }
    }
}
