//! Property tests for elastic repair: arbitrary interleavings of bucket
//! churn (split/merge, placed incrementally the way the engine places
//! them) and cluster resizes (join/leave, repaired by [`plan_rebalance`])
//! keep every structural invariant, and a final repair pass restores the
//! full two-sided balance no matter what the churn did.

use proptest::prelude::*;

use pargrid_core::{place_fresh_bucket, place_fresh_replica};
use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
use pargrid_gridfile::CartesianProductFile;
use pargrid_rebalance::{plan_rebalance, RepairConfig};

/// The cluster-state model the engine maintains, in plan space: a slot
/// universe with an active mask, and positional primary/secondary vectors
/// aligned with `input.buckets`.
struct Model {
    input: DeclusterInput,
    primary: Vec<u32>,
    secondary: Vec<u32>,
    active: Vec<bool>,
    next_id: u32,
}

impl Model {
    fn new(nx: u32, ny: u32, m0: usize, standby: usize) -> Model {
        let input = DeclusterInput::from_cartesian(&CartesianProductFile::new(&[nx, ny]));
        let ra = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, m0, 7);
        let primary = ra.primary().disks().to_vec();
        let secondary: Vec<u32> = (0..input.n_buckets())
            .map(|pos| ra.secondary_at(pos))
            .collect();
        let mut active = vec![true; m0];
        active.extend(std::iter::repeat_n(false, standby));
        let next_id = input.max_id_bound() as u32;
        Model {
            input,
            primary,
            secondary,
            active,
            next_id,
        }
    }

    fn active_slots(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&d| self.active[d]).collect()
    }

    /// Split: clone bucket `pick % n` under a fresh id and place the new
    /// bucket the way the engine's `apply_effect` does — primary by
    /// [`place_fresh_bucket`] over the active slots, replica by
    /// [`place_fresh_replica`] on total load.
    fn split(&mut self, pick: usize) {
        let n = self.input.n_buckets();
        let src = pick % n;
        let mut fresh = self.input.buckets[src].clone();
        fresh.id = self.next_id;
        self.next_id += 1;

        let slots = self.active_slots();
        let dense_of: Vec<usize> = {
            let mut v = vec![usize::MAX; self.active.len()];
            for (k, &s) in slots.iter().enumerate() {
                v[s] = k;
            }
            v
        };
        let residents: Vec<(pargrid_geom::Rect, u32)> = self
            .input
            .buckets
            .iter()
            .zip(&self.primary)
            .map(|(b, &d)| (b.rect, dense_of[d as usize] as u32))
            .collect();
        let pw = slots
            [place_fresh_bucket(&self.input.domain, &residents, &fresh.rect, slots.len()) as usize];
        let mut load = vec![0usize; slots.len()];
        for (&p, &s) in self.primary.iter().zip(&self.secondary) {
            load[dense_of[p as usize]] += 1;
            load[dense_of[s as usize]] += 1;
        }
        let rw = slots[place_fresh_replica(dense_of[pw] as u32, &load) as usize];
        self.input.buckets.push(fresh);
        self.primary.push(pw as u32);
        self.secondary.push(rw as u32);
    }

    /// Merge: drop bucket `pick % n` entirely (the engine frees the bucket
    /// and its copies on a merge).
    fn merge(&mut self, pick: usize) {
        let n = self.input.n_buckets();
        if n <= 8 {
            return;
        }
        let victim = pick % n;
        self.input.buckets.remove(victim);
        self.primary.remove(victim);
        self.secondary.remove(victim);
    }

    /// Resize to `target` via [`plan_rebalance`] and adopt the plan.
    fn resize(&mut self, target: Vec<bool>) {
        let plan = plan_rebalance(
            &self.input,
            &self.primary,
            Some(&self.secondary),
            &target,
            &RepairConfig::default(),
        );
        self.primary = plan.new_primary;
        self.secondary = plan.new_secondary.expect("replicated plan");
        self.active = plan.new_active;
    }

    /// Returns whether a repair actually ran (there was a standby slot to
    /// activate).
    fn join(&mut self, pick: usize) -> bool {
        let standby: Vec<usize> = (0..self.active.len())
            .filter(|&d| !self.active[d])
            .collect();
        if standby.is_empty() {
            return false;
        }
        let mut target = self.active.clone();
        target[standby[pick % standby.len()]] = true;
        self.resize(target);
        true
    }

    /// Returns whether a repair actually ran (enough survivors remained).
    fn leave(&mut self, pick: usize) -> bool {
        let slots = self.active_slots();
        if slots.len() <= 3 {
            return false;
        }
        let mut target = self.active.clone();
        target[slots[pick % slots.len()]] = false;
        self.resize(target);
        true
    }

    /// Structural invariants that must hold after *every* operation: all
    /// copies live on active slots and no bucket's two copies coincide.
    fn check_structural(&self) {
        assert_eq!(self.primary.len(), self.input.n_buckets());
        assert_eq!(self.secondary.len(), self.input.n_buckets());
        for (pos, (&p, &s)) in self.primary.iter().zip(&self.secondary).enumerate() {
            assert!(
                self.active[p as usize],
                "bucket {pos} primary on inactive slot {p}"
            );
            assert!(
                self.active[s as usize],
                "bucket {pos} secondary on inactive slot {s}"
            );
            assert_ne!(p, s, "bucket {pos} has coincident copies on slot {p}");
        }
    }

    fn loads(&self) -> (Vec<usize>, Vec<usize>) {
        let mut prim = vec![0usize; self.active.len()];
        let mut total = vec![0usize; self.active.len()];
        for (&p, &s) in self.primary.iter().zip(&self.secondary) {
            prim[p as usize] += 1;
            total[p as usize] += 1;
            total[s as usize] += 1;
        }
        (prim, total)
    }

    /// Primary balance: load within `[⌊N/M⌋, ⌈N/M⌉]` on every active slot
    /// and zero elsewhere. Minimax guarantees this initially and every
    /// repair re-establishes it.
    fn check_primary_balanced(&self) {
        let n = self.input.n_buckets();
        let m = self.active.iter().filter(|&&a| a).count();
        let (floor, cap) = (n / m, n.div_ceil(m));
        let (prim, _) = self.loads();
        for (d, &load) in prim.iter().enumerate() {
            if self.active[d] {
                assert!(
                    (floor..=cap).contains(&load),
                    "slot {d}: {load} primaries outside [{floor},{cap}]"
                );
            } else {
                assert_eq!(load, 0, "inactive slot {d} owns primaries");
            }
        }
    }

    /// Total-copy balance within `[⌊2N/M⌋, ⌈2N/M⌉]`. This is the *repair's*
    /// guarantee: the upstream chained-declustered assignment can start one
    /// copy off (it places replicas greedily by load), so this is asserted
    /// only after a `plan_rebalance` has run.
    fn check_total_balanced(&self) {
        let n = self.input.n_buckets();
        let m = self.active.iter().filter(|&&a| a).count();
        let (tfloor, tcap) = ((2 * n) / m, (2 * n).div_ceil(m));
        let (_, total) = self.loads();
        for (d, &load) in total.iter().enumerate() {
            if self.active[d] {
                assert!(
                    (tfloor..=tcap).contains(&load),
                    "slot {d}: {load} copies outside [{tfloor},{tcap}]"
                );
            } else {
                assert_eq!(load, 0, "inactive slot {d} owns copies");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn churn_and_resizes_preserve_balance(
        nx in 4u32..=7,
        ny in 4u32..=7,
        m0 in 3usize..=5,
        standby in 1usize..=3,
        ops in prop::collection::vec((0u8..4, any::<u32>()), 1..12),
    ) {
        let mut model = Model::new(nx, ny, m0, standby);
        model.check_structural();
        model.check_primary_balanced();
        for &(kind, pick) in &ops {
            let pick = pick as usize;
            let repaired = match kind {
                0 => {
                    model.split(pick);
                    false
                }
                1 => {
                    model.merge(pick);
                    false
                }
                2 => model.join(pick),
                _ => model.leave(pick),
            };
            model.check_structural();
            if repaired {
                // Every repair restores the two-sided invariant outright.
                model.check_primary_balanced();
                model.check_total_balanced();
            }
        }
        // After arbitrary churn, one repair pass with an unchanged worker
        // set must converge back to full balance.
        let target = model.active.clone();
        model.resize(target);
        model.check_structural();
        model.check_primary_balanced();
        model.check_total_balanced();
    }
}
