//! The dataset container shared by all generators.

use pargrid_geom::{Point, Rect};
use pargrid_gridfile::{GridConfig, GridFile, Record};

/// A generated dataset: named points in a domain, plus the grid-file layout
/// parameters (page and payload size) tuned so the resulting file matches
/// the bucket counts the paper reports.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name as the paper spells it (e.g. `hot.2d`).
    pub name: String,
    /// The data points.
    pub points: Vec<Point>,
    /// The spatial domain.
    pub domain: Rect,
    /// Disk page size in bytes for this dataset's grid file.
    pub page_bytes: usize,
    /// Per-record payload size in bytes.
    pub payload_bytes: usize,
}

impl Dataset {
    /// Creates a dataset.
    pub fn new(
        name: impl Into<String>,
        points: Vec<Point>,
        domain: Rect,
        page_bytes: usize,
        payload_bytes: usize,
    ) -> Self {
        let name = name.into();
        assert!(!points.is_empty(), "dataset {name} has no points");
        let dim = domain.dim();
        assert!(
            points.iter().all(|p| p.dim() == dim),
            "dataset {name} mixes dimensionalities"
        );
        Dataset {
            name,
            points,
            domain,
            page_bytes,
            payload_bytes,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty (never true for generated sets).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.domain.dim()
    }

    /// The grid-file configuration for this dataset.
    pub fn grid_config(&self) -> GridConfig {
        GridConfig::new(self.domain, self.payload_bytes).with_page_bytes(self.page_bytes)
    }

    /// Records with sequential ids.
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| Record::new(i as u64, *p))
    }

    /// Builds the grid file for this dataset.
    pub fn build_grid_file(&self) -> GridFile {
        GridFile::bulk_load(self.grid_config(), self.records())
    }

    /// Histogram of the points' marginal distribution on dimension `k`
    /// with `bins` equal-width bins (used to render Figure 5).
    pub fn marginal_histogram(&self, k: usize, bins: usize) -> Vec<usize> {
        assert!(k < self.dim(), "dimension out of range");
        assert!(bins > 0, "need at least one bin");
        let lo = self.domain.lo().get(k);
        let w = self.domain.side(k) / bins as f64;
        let mut hist = vec![0usize; bins];
        for p in &self.points {
            let b = (((p.get(k) - lo) / w) as usize).min(bins - 1);
            hist[b] += 1;
        }
        hist
    }

    /// 2-D histogram over dimensions `(kx, ky)` — the paper's Figure 5
    /// slice diagrams.
    pub fn slice_histogram(&self, kx: usize, ky: usize, bins: usize) -> Vec<Vec<usize>> {
        assert!(kx < self.dim() && ky < self.dim() && kx != ky);
        let lox = self.domain.lo().get(kx);
        let loy = self.domain.lo().get(ky);
        let wx = self.domain.side(kx) / bins as f64;
        let wy = self.domain.side(ky) / bins as f64;
        let mut hist = vec![vec![0usize; bins]; bins];
        for p in &self.points {
            let bx = (((p.get(kx) - lox) / wx) as usize).min(bins - 1);
            let by = (((p.get(ky) - loy) / wy) as usize).min(bins - 1);
            hist[bx][by] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            "tiny",
            vec![
                Point::new2(0.0, 0.0),
                Point::new2(5.0, 5.0),
                Point::new2(9.9, 9.9),
            ],
            Rect::new2(0.0, 0.0, 10.0, 10.0),
            4096,
            0,
        )
    }

    #[test]
    fn build_and_query() {
        let ds = tiny();
        assert_eq!(ds.len(), 3);
        let gf = ds.build_grid_file();
        assert_eq!(gf.len(), 3);
        gf.check_invariants();
    }

    #[test]
    fn marginal_histogram_sums_to_len() {
        let ds = tiny();
        let h = ds.marginal_histogram(0, 4);
        assert_eq!(h.iter().sum::<usize>(), 3);
        assert_eq!(h, vec![1, 0, 1, 1]);
    }

    #[test]
    fn slice_histogram_sums_to_len() {
        let ds = tiny();
        let h = ds.slice_histogram(0, 1, 2);
        let total: usize = h.iter().flatten().sum();
        assert_eq!(total, 3);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_dataset_rejected() {
        let _ = Dataset::new("x", vec![], Rect::new2(0.0, 0.0, 1.0, 1.0), 4096, 0);
    }
}
