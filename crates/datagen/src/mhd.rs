//! Synthetic magneto-hydro-dynamics (MHD) snapshot dataset.
//!
//! The paper's conclusions (§4) mention an ongoing evaluation on "two large
//! data sets consisting of snapshots from DSMC and MHD respectively" — the
//! MHD case being Tanaka-style simulations of the solar wind around a
//! planet. We provide the structural stand-in so that evaluation can be run
//! here too: sample points follow the density structure of a magnetosphere,
//!
//! * the **solar wind** upstream: near-uniform background with a density
//!   jump across a paraboloid **bow shock**,
//! * the **magnetosheath**: compressed plasma in a shell between the bow
//!   shock and the magnetopause,
//! * a low-density **cavity** inside the magnetopause, and
//! * a dense **magnetotail** stretching downstream.
//!
//! Spatial structure is what grid files and declustering respond to; the
//! exact plasma physics is irrelevant to the paper's metrics.

use crate::dataset::Dataset;
use crate::rng::truncated_normal;
use pargrid_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default record count: same order as the DSMC.3d snapshot.
pub const MHD3D_POINTS: usize = 60_000;

/// Domain: the planet sits at the origin-third of the x axis, the solar
/// wind flows in +x direction.
fn domain3() -> Rect {
    Rect::new(Point::new3(0.0, 0.0, 0.0), Point::new3(24.0, 16.0, 16.0))
}

/// Planet position.
const PLANET: [f64; 3] = [8.0, 8.0, 8.0];
/// Magnetopause stand-off distance.
const MP_RADIUS: f64 = 2.2;
/// Bow-shock stand-off distance.
const BS_RADIUS: f64 = 3.6;

fn dist_to_planet(x: f64, y: f64, z: f64) -> f64 {
    let dx = x - PLANET[0];
    let dy = y - PLANET[1];
    let dz = z - PLANET[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

/// Samples one plasma "macro-particle" of the snapshot at time `t ∈ [0, 1)`
/// (the tail flaps slowly with `t` in the 4-D variant).
fn sample_point<R: Rng + ?Sized>(rng: &mut R, dom: &Rect, t: f64) -> Point {
    loop {
        let u: f64 = rng.random();
        let (x, y, z) = if u < 0.40 {
            // Solar wind background (whole box, rejection below removes the
            // cavity).
            (
                rng.random::<f64>() * dom.side(0),
                rng.random::<f64>() * dom.side(1),
                rng.random::<f64>() * dom.side(2),
            )
        } else if u < 0.75 {
            // Magnetosheath shell between magnetopause and bow shock.
            let r = MP_RADIUS + (BS_RADIUS - MP_RADIUS) * rng.random::<f64>();
            // Biased to the dayside (small x).
            let theta = std::f64::consts::PI * (0.5 + 0.5 * rng.random::<f64>());
            let phi = std::f64::consts::TAU * rng.random::<f64>();
            (
                PLANET[0] + r * theta.cos(),
                PLANET[1] + r * theta.sin() * phi.cos(),
                PLANET[2] + r * theta.sin() * phi.sin(),
            )
        } else {
            // Magnetotail: elongated lobe downstream (+x), flapping with t.
            let flap = 1.5 * (std::f64::consts::TAU * t).sin();
            let x = PLANET[0] + 2.0 + rng.random::<f64>().powi(2) * (dom.side(0) - PLANET[0] - 2.0);
            let y = truncated_normal(rng, PLANET[1] + flap, 1.3, 0.0, dom.side(1));
            let z = truncated_normal(rng, PLANET[2], 1.3, 0.0, dom.side(2));
            (x, y, z)
        };
        // Reject points inside the magnetospheric cavity (low density) with
        // high probability, and anything outside the box.
        if x < 0.0 || x >= dom.side(0) || y < 0.0 || y >= dom.side(1) || z < 0.0 || z >= dom.side(2)
        {
            continue;
        }
        if dist_to_planet(x, y, z) < MP_RADIUS && rng.random::<f64>() < 0.9 {
            continue;
        }
        return Point::new3(x, y, z);
    }
}

/// `MHD.3d`: one magnetosphere snapshot.
pub fn mhd3d(seed: u64) -> Dataset {
    mhd3d_sized(seed, MHD3D_POINTS)
}

/// `MHD.3d` with an explicit record count.
pub fn mhd3d_sized(seed: u64, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let dom = domain3();
    let points = (0..n).map(|_| sample_point(&mut rng, &dom, 0.0)).collect();
    Dataset::new("MHD.3d", points, dom, 4096, 0)
}

/// The 4-D spatio-temporal MHD dataset (snapshot sequence, tail flapping
/// over time) — the second SP-2 evaluation dataset of §4.
pub fn mhd4d(seed: u64, snapshots: usize, n_total: usize) -> Dataset {
    assert!(snapshots > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let dom3 = domain3();
    let dom = Rect::new(
        Point::new4(0.0, 0.0, 0.0, 0.0),
        Point::new4(snapshots as f64, dom3.side(0), dom3.side(1), dom3.side(2)),
    );
    let per_snap = n_total / snapshots;
    let mut points = Vec::with_capacity(per_snap * snapshots);
    for s in 0..snapshots {
        let t = s as f64 / snapshots as f64;
        for _ in 0..per_snap {
            let p = sample_point(&mut rng, &dom3, t);
            points.push(Point::new4(s as f64 + 0.5, p.get(0), p.get(1), p.get(2)));
        }
    }
    Dataset::new("MHD.4d", points, dom, 8192, 14)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_domain() {
        let ds = mhd3d_sized(1, 10_000);
        assert_eq!(ds.len(), 10_000);
        for p in &ds.points {
            assert!(ds.domain.contains_closed(p));
        }
    }

    #[test]
    fn cavity_is_underdense_sheath_overdense() {
        let ds = mhd3d(2);
        let count_in_shell = |lo: f64, hi: f64| {
            ds.points
                .iter()
                .filter(|p| {
                    let r = dist_to_planet(p.get(0), p.get(1), p.get(2));
                    r >= lo && r < hi
                })
                .count() as f64
        };
        let cavity_vol = MP_RADIUS.powi(3);
        let sheath_vol = BS_RADIUS.powi(3) - MP_RADIUS.powi(3);
        let cavity_density = count_in_shell(0.0, MP_RADIUS) / cavity_vol;
        let sheath_density = count_in_shell(MP_RADIUS, BS_RADIUS) / sheath_vol;
        assert!(
            sheath_density > 3.0 * cavity_density,
            "sheath {sheath_density} vs cavity {cavity_density}"
        );
    }

    #[test]
    fn tail_extends_downstream() {
        let ds = mhd3d(3);
        // More points downstream of the planet than upstream at equal
        // volumes (the magnetotail).
        let down = ds
            .points
            .iter()
            .filter(|p| p.get(0) > PLANET[0] + 4.0 && (p.get(1) - PLANET[1]).abs() < 3.0)
            .count();
        let up = ds
            .points
            .iter()
            .filter(|p| p.get(0) < PLANET[0] - 4.0 && (p.get(1) - PLANET[1]).abs() < 3.0)
            .count();
        assert!(down > 2 * up, "down {down} vs up {up}");
    }

    #[test]
    fn grid_file_loads_cleanly() {
        let ds = mhd3d_sized(4, 15_000);
        let gf = ds.build_grid_file();
        gf.check_invariants();
        assert!(gf.stats().n_merged_buckets > 0);
    }

    #[test]
    fn mhd4d_snapshots_populated_and_tail_flaps() {
        let ds = mhd4d(5, 8, 24_000);
        assert_eq!(ds.dim(), 4);
        // Mean y of tail points differs between snapshots 1 and 5 (flapping).
        let tail_mean_y = |s: f64| {
            let ys: Vec<f64> = ds
                .points
                .iter()
                .filter(|p| p.get(0) > s && p.get(0) < s + 1.0 && p.get(1) > PLANET[0] + 4.0)
                .map(|p| p.get(2))
                .collect();
            ys.iter().sum::<f64>() / ys.len().max(1) as f64
        };
        let a = tail_mean_y(1.0);
        let b = tail_mean_y(5.0);
        assert!((a - b).abs() > 0.3, "tail static: {a} vs {b}");
    }
}
