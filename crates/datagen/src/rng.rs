//! Small sampling helpers on top of `rand`.
//!
//! We need only normals and log-normals; implementing Box–Muller here keeps
//! the dependency set to the crates allowed for this project (`rand` core
//! only, no `rand_distr`).

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mu, sigma^2)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * std_normal(rng)
}

/// Samples `N(mu, sigma^2)` truncated (by resampling) to `[lo, hi]`.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    debug_assert!(lo < hi);
    for _ in 0..64 {
        let x = normal(rng, mu, sigma);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    // Pathological parameters: fall back to clamping rather than spinning.
    normal(rng, mu, sigma).clamp(lo, hi)
}

/// Samples `LogNormal(mu, sigma)` (parameters of the underlying normal).
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = truncated_normal(&mut rng, 0.0, 5.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            assert!(lognormal(&mut rng, 0.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(std_normal(&mut a), std_normal(&mut b));
        }
    }
}
