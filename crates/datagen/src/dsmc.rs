//! Synthetic Direct-Simulation-Monte-Carlo particle snapshots.
//!
//! Substitute for the paper's `DSMC.3d` dataset (one snapshot of a 3-D
//! rarefied-gas simulation, 52,857 particle records, non-uniform) and the
//! 4-D spatio-temporal dataset of the SP-2 experiments (59 snapshots,
//! 3 million particles).
//!
//! The generator models the qualitative structure of flow past a blunt body:
//!
//! * a **free-stream** background of uniformly distributed molecules
//!   (the paper notes DSMC.3d has a *larger* uniform portion than `hot.2d`,
//!   which is why index-based curves flatten earlier on it — we keep that
//!   property),
//! * a **compression layer** in front of the body (dense, thin shell),
//! * a **wake** behind the body (elongated Gaussian hump that drifts
//!   downstream over time in the 4-D variant).

use crate::dataset::Dataset;
use crate::rng::truncated_normal;
use pargrid_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Record count of the paper's DSMC.3d snapshot.
pub const DSMC3D_POINTS: usize = 52_857;

/// Domain of the synthetic flow field (dimensionless).
fn domain3() -> Rect {
    Rect::new(Point::new3(0.0, 0.0, 0.0), Point::new3(16.0, 12.0, 8.0))
}

/// Body position (sphere center) within the flow field.
const BODY: [f64; 3] = [5.0, 6.0, 4.0];

/// Samples one particle of the flow structure at time `t in [0, 1)`.
fn sample_particle<R: Rng + ?Sized>(rng: &mut R, dom: &Rect, t: f64) -> Point {
    let u: f64 = rng.random();
    // 55% free stream, 15% compression layer, 30% wake.
    if u < 0.55 {
        Point::new3(
            rng.random::<f64>() * dom.side(0),
            rng.random::<f64>() * dom.side(1),
            rng.random::<f64>() * dom.side(2),
        )
    } else if u < 0.70 {
        // Compression layer: thin dense shell just upstream of the body.
        let x = truncated_normal(rng, BODY[0] - 1.0, 0.35, 0.0, dom.side(0));
        let y = truncated_normal(rng, BODY[1], 1.6, 0.0, dom.side(1));
        let z = truncated_normal(rng, BODY[2], 1.2, 0.0, dom.side(2));
        Point::new3(x, y, z)
    } else {
        // Wake: elongated hump downstream; its centroid drifts with time in
        // the spatio-temporal variant.
        let drift = 4.0 * t;
        let cx = BODY[0] + 3.0 + drift;
        let x = truncated_normal(rng, cx, 2.2, 0.0, dom.side(0));
        let y = truncated_normal(rng, BODY[1], 1.1, 0.0, dom.side(1));
        let z = truncated_normal(rng, BODY[2], 0.9, 0.0, dom.side(2));
        Point::new3(x, y, z)
    }
}

/// `DSMC.3d` substitute: one snapshot, ≈52,857 non-uniformly distributed
/// particles in 3-D.
pub fn dsmc3d(seed: u64) -> Dataset {
    dsmc3d_sized(seed, DSMC3D_POINTS)
}

/// `DSMC.3d` substitute with an explicit record count (for scaling studies).
pub fn dsmc3d_sized(seed: u64, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let dom = domain3();
    let points = (0..n)
        .map(|_| sample_particle(&mut rng, &dom, 0.0))
        .collect();
    // 4 KB pages, 32-byte records (8 id + 24 coords): capacity 128.
    // 52,857 / (128 * 0.7) ≈ 590 buckets — the same regime as the paper's
    // 444 buckets over 1,536 subspaces.
    Dataset::new("DSMC.3d", points, dom, 4096, 0)
}

/// The SP-2 experiment's 4-D spatio-temporal dataset: `snapshots` time steps
/// of the flow, `n_total` particles overall. The temporal coordinate is the
/// snapshot index.
///
/// The paper used 59 snapshots and 3 million particles (163 MB, 8 KB
/// buckets, 19,956 buckets over 160,524 subspaces). Use
/// [`dsmc4d_paper_scale`] for that; the default benchmarks run a scaled-down
/// version to keep CI time reasonable.
pub fn dsmc4d(seed: u64, snapshots: usize, n_total: usize) -> Dataset {
    assert!(snapshots > 0, "need at least one snapshot");
    let mut rng = StdRng::seed_from_u64(seed);
    let dom3 = domain3();
    let dom = Rect::new(
        Point::new4(0.0, 0.0, 0.0, 0.0),
        Point::new4(snapshots as f64, dom3.side(0), dom3.side(1), dom3.side(2)),
    );
    let per_snap = n_total / snapshots;
    let mut points = Vec::with_capacity(per_snap * snapshots);
    for s in 0..snapshots {
        let t = s as f64 / snapshots as f64;
        for _ in 0..per_snap {
            let p = sample_particle(&mut rng, &dom3, t);
            // Temporal coordinate: mid-snapshot, so scale cuts fall between
            // snapshots the way the paper's 7 temporal partitions do.
            points.push(Point::new4(s as f64 + 0.5, p.get(0), p.get(1), p.get(2)));
        }
    }
    // 8 KB pages as on the SP-2; 40-byte records (8 id + 32 coords) plus a
    // 14-byte payload ≈ 54 bytes → ~151 records/bucket, the paper's regime
    // (3M records / 19,956 buckets ≈ 150).
    Dataset::new("DSMC.4d", points, dom, 8192, 14)
}

/// The full-scale 4-D dataset of the paper's Tables 4 and 5
/// (59 snapshots, 3 million records). Takes a few seconds to generate and
/// several hundred MB to hold; gate behind an explicit opt-in.
pub fn dsmc4d_paper_scale(seed: u64) -> Dataset {
    dsmc4d(seed, 59, 3_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsmc3d_size_and_domain() {
        let ds = dsmc3d(1);
        assert_eq!(ds.len(), DSMC3D_POINTS);
        assert_eq!(ds.dim(), 3);
        for p in &ds.points {
            assert!(ds.domain.contains_closed(p));
        }
    }

    #[test]
    fn dsmc3d_is_nonuniform_with_uniform_background() {
        let ds = dsmc3d(2);
        // Wake region should be denser than a same-size corner region.
        let wake = Rect::new(Point::new3(7.0, 5.0, 3.0), Point::new3(10.0, 7.0, 5.0));
        let corner = Rect::new(Point::new3(13.0, 0.0, 0.0), Point::new3(16.0, 2.0, 2.0));
        let in_wake = ds.points.iter().filter(|p| wake.contains_closed(p)).count();
        let in_corner = ds
            .points
            .iter()
            .filter(|p| corner.contains_closed(p))
            .count();
        assert!(
            in_wake > 4 * in_corner,
            "wake {in_wake} vs corner {in_corner}"
        );
        // But the corner is not empty: free-stream background exists.
        assert!(in_corner > 50, "corner unexpectedly empty: {in_corner}");
    }

    #[test]
    fn dsmc3d_grid_file_bucket_regime() {
        let ds = dsmc3d(42);
        let gf = ds.build_grid_file();
        let st = gf.stats();
        // Paper: 1,536 subspaces merged into 444 buckets. Same order of
        // magnitude expected (our RNG and splits differ).
        assert!(
            (300..=900).contains(&st.n_buckets),
            "bucket count {} out of regime",
            st.n_buckets
        );
        assert!(st.n_merged_buckets > 0);
        gf.check_invariants();
    }

    #[test]
    fn dsmc4d_structure() {
        let ds = dsmc4d(7, 10, 20_000);
        assert_eq!(ds.dim(), 4);
        assert_eq!(ds.len(), 20_000);
        // Every snapshot slot is populated.
        for s in 0..10 {
            let n = ds
                .points
                .iter()
                .filter(|p| p.get(0) > s as f64 && p.get(0) < (s + 1) as f64)
                .count();
            assert_eq!(n, 2_000, "snapshot {s}");
        }
    }

    #[test]
    fn dsmc4d_wake_drifts_downstream() {
        let ds = dsmc4d(7, 8, 40_000);
        // Mean x of late snapshots exceeds mean x of early snapshots
        // because the wake hump moves downstream.
        let mean_x = |lo: f64, hi: f64| {
            let sel: Vec<f64> = ds
                .points
                .iter()
                .filter(|p| p.get(0) >= lo && p.get(0) < hi)
                .map(|p| p.get(1))
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        assert!(mean_x(6.0, 8.0) > mean_x(0.0, 2.0) + 0.2);
    }

    #[test]
    fn deterministic() {
        assert_eq!(dsmc3d_sized(9, 1000).points, dsmc3d_sized(9, 1000).points);
    }
}
