//! Synthetic dataset generators reproducing the paper's benchmark inputs.
//!
//! Three 2-D synthetic sets follow §2.2 exactly (`uniform.2d`, `hot.2d`,
//! `correl.2d`: 10,000 points in `[0, 2000]^2`). The paper's two *real*
//! datasets are not redistributable, so this crate generates structural
//! stand-ins (see `DESIGN.md` §3 for the substitution argument):
//!
//! * [`dsmc::dsmc3d`] — a rarefied-gas particle snapshot: free-stream
//!   background plus a wake density hump behind a body, ≈52,857 points.
//! * [`stock::stock3d`] — a synthetic market: 383 stocks over ~530 trading
//!   days, geometric-random-walk prices, ≈127,000 quotes over
//!   (stock id, price, date).
//! * [`dsmc::dsmc4d`] — the SP-2 experiment's spatio-temporal dataset:
//!   59 snapshots of a drifting wake.
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use pargrid_datagen::hot2d;
//!
//! let dataset = hot2d(42);
//! assert_eq!(dataset.len(), 10_000);
//! // Same seed, same data.
//! assert_eq!(dataset.points, hot2d(42).points);
//! // Loads into a grid file shaped like the paper's (≈241 buckets).
//! let grid = dataset.build_grid_file();
//! assert!((150..350).contains(&grid.stats().n_buckets));
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod dsmc;
pub mod mhd;
pub mod nd;
pub mod rng;
pub mod stock;
pub mod synthetic2d;

pub use dataset::Dataset;
pub use dsmc::{dsmc3d, dsmc3d_sized, dsmc4d, dsmc4d_paper_scale};
pub use mhd::{mhd3d, mhd3d_sized, mhd4d};
pub use nd::{hot_nd, uniform5d, uniform6d, uniform_nd};
pub use stock::{stock3d, stock3d_sized};
pub use synthetic2d::{correl2d, hot2d, uniform2d};
