//! The paper's three synthetic 2-D datasets (§2.2).
//!
//! Each contains 10,000 points in `[0, 2000] x [0, 2000]` and is stored in a
//! grid file with 4 KB buckets. The payload size (40 bytes → 64 records per
//! bucket) is chosen so the resulting grid files have on the order of 250
//! buckets with few merged buckets on uniform data, matching the counts the
//! paper quotes (252 / 241 / 242, with only 4 merged for `uniform.2d`).

use crate::dataset::Dataset;
use crate::rng::truncated_normal;
use pargrid_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_POINTS: usize = 10_000;
const DOMAIN_HI: f64 = 2000.0;
/// 4 KB page / (8 id + 16 coords + 40 payload) = 64 records per bucket.
/// A 16x16 grid of 10,000 uniform points averages ~39 records per cell with
/// Poisson spread up to ~60, so capacity 64 keeps the uniform grid at 16x16
/// with almost no merged buckets — the paper's "4 out of 252" regime.
const PAYLOAD_2D: usize = 40;

fn domain() -> Rect {
    Rect::new2(0.0, 0.0, DOMAIN_HI, DOMAIN_HI)
}

/// `uniform.2d`: 10,000 uniformly distributed points.
pub fn uniform2d(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..N_POINTS)
        .map(|_| {
            Point::new2(
                rng.random::<f64>() * DOMAIN_HI,
                rng.random::<f64>() * DOMAIN_HI,
            )
        })
        .collect();
    Dataset::new("uniform.2d", points, domain(), 4096, PAYLOAD_2D)
}

/// `hot.2d`: a hot spot in the center — 5,000 uniform points overlaid with
/// 5,000 normally distributed points around the domain center.
pub fn hot2d(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(N_POINTS);
    for _ in 0..N_POINTS / 2 {
        points.push(Point::new2(
            rng.random::<f64>() * DOMAIN_HI,
            rng.random::<f64>() * DOMAIN_HI,
        ));
    }
    let center = DOMAIN_HI / 2.0;
    let sigma = DOMAIN_HI / 10.0; // concentrated spot, like Figure 2 (center)
    for _ in 0..N_POINTS / 2 {
        points.push(Point::new2(
            truncated_normal(&mut rng, center, sigma, 0.0, DOMAIN_HI),
            truncated_normal(&mut rng, center, sigma, 0.0, DOMAIN_HI),
        ));
    }
    Dataset::new("hot.2d", points, domain(), 4096, PAYLOAD_2D)
}

/// `correl.2d`: correlated attributes — points normally distributed along
/// the diagonal `y = x`.
pub fn correl2d(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let center = DOMAIN_HI / 2.0;
    let along_sigma = DOMAIN_HI / 4.0; // spread along the diagonal
    let across_sigma = DOMAIN_HI / 25.0; // tightness of the band
    let points = (0..N_POINTS)
        .map(|_| {
            let t = truncated_normal(&mut rng, center, along_sigma, 0.0, DOMAIN_HI);
            let x = truncated_normal(&mut rng, t, across_sigma, 0.0, DOMAIN_HI);
            let y = truncated_normal(&mut rng, t, across_sigma, 0.0, DOMAIN_HI);
            Point::new2(x, y)
        })
        .collect();
    Dataset::new("correl.2d", points, domain(), 4096, PAYLOAD_2D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_domains() {
        for ds in [uniform2d(1), hot2d(1), correl2d(1)] {
            assert_eq!(ds.len(), N_POINTS);
            assert_eq!(ds.dim(), 2);
            for p in &ds.points {
                assert!(ds.domain.contains_closed(p), "{p:?} outside domain");
            }
            assert_eq!(ds.grid_config().bucket_capacity(), 64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uniform2d(7).points, uniform2d(7).points);
        assert_ne!(uniform2d(7).points, uniform2d(8).points);
    }

    #[test]
    fn hot2d_has_central_hotspot() {
        let ds = hot2d(3);
        let center_box = Rect::new2(800.0, 800.0, 1200.0, 1200.0);
        let inside = ds
            .points
            .iter()
            .filter(|p| center_box.contains_closed(p))
            .count();
        // Center box is 4% of the area; uniform data would put ~400 points
        // there. The hotspot should multiply that several-fold.
        assert!(inside > 2000, "only {inside} points in the hot spot");
    }

    #[test]
    fn correl2d_hugs_the_diagonal() {
        let ds = correl2d(3);
        let near_diag = ds
            .points
            .iter()
            .filter(|p| (p.get(0) - p.get(1)).abs() < 300.0)
            .count();
        assert!(
            near_diag as f64 > 0.95 * ds.len() as f64,
            "only {near_diag} points near the diagonal"
        );
    }

    #[test]
    fn grid_files_have_paper_scale_bucket_counts() {
        // The paper reports 252 / 241 / 242 buckets. Our generator will not
        // match exactly (different RNG), but must land in the same regime.
        for (ds, lo, hi) in [
            (uniform2d(42), 200, 420),
            (hot2d(42), 200, 420),
            (correl2d(42), 200, 420),
        ] {
            let gf = ds.build_grid_file();
            let st = gf.stats();
            assert!(
                (lo..=hi).contains(&st.n_buckets),
                "{}: {} buckets (cells {:?})",
                ds.name,
                st.n_buckets,
                st.cells_per_dim
            );
        }
    }

    #[test]
    fn skewed_sets_have_merged_buckets_uniform_mostly_not() {
        let gf_u = uniform2d(42).build_grid_file();
        let gf_h = hot2d(42).build_grid_file();
        let st_u = gf_u.stats();
        let st_h = gf_h.stats();
        // The paper: 4/252 merged for uniform, 169/241 for hot.
        let frac_u = st_u.n_merged_buckets as f64 / st_u.n_buckets as f64;
        let frac_h = st_h.n_merged_buckets as f64 / st_h.n_buckets as f64;
        assert!(frac_u < 0.35, "uniform merged fraction {frac_u}");
        assert!(frac_h > 0.3, "hot merged fraction {frac_h}");
        assert!(frac_h > frac_u);
    }
}
