//! Synthetic stock-market dataset.
//!
//! Substitute for the paper's `stock.3d` (MIT AI lab experimental stock
//! data: 383 stocks from 08/30/93 to 09/15/95, 127,026 quote records, keys =
//! (stock id, closing price, date)). The structural properties the paper's
//! analysis relies on (§3.3):
//!
//! * the (date, stock id) and (date, price) slices look uniform,
//! * the (stock id, price) slice is a series of per-stock **hot spots** —
//!   each stock's price random-walks inside a band around its base price,
//! * correlations similar to `hot.2d` + `correl.2d`.
//!
//! A geometric random walk per stock with log-normally distributed base
//! prices reproduces all three.

use crate::dataset::Dataset;
use crate::rng::{lognormal, std_normal};
use pargrid_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct stocks, matching the paper.
pub const N_STOCKS: usize = 383;
/// Trading days between 08/30/93 and 09/15/95.
pub const N_DAYS: usize = 530;
/// Price ceiling of the synthetic exchange (quotes are clamped under it).
pub const PRICE_CAP: f64 = 400.0;

/// `stock.3d` substitute with the paper's shape: ≈127,000 quotes.
pub fn stock3d(seed: u64) -> Dataset {
    stock3d_sized(seed, N_STOCKS, N_DAYS)
}

/// `stock.3d` substitute with explicit stock and day counts.
pub fn stock3d_sized(seed: u64, n_stocks: usize, n_days: usize) -> Dataset {
    assert!(n_stocks > 0 && n_days > 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n_stocks * n_days * 2 / 3);
    for stock in 0..n_stocks {
        // Base price: log-normal around $25, like real exchanges' spread
        // between penny stocks and blue chips.
        let mut price = lognormal(&mut rng, 25.0f64.ln(), 0.8).min(PRICE_CAP * 0.8);
        // Listing period: not every stock trades the whole window — the
        // paper's record count (127,026 < 383 * 530) implies the same.
        let start = rng.random_range(0..n_days / 3);
        let len_frac: f64 = rng.random::<f64>() * 0.5 + 0.5; // 50%..100%
        let end = (start + ((n_days - start) as f64 * len_frac) as usize).min(n_days);
        for day in start..end {
            // Daily geometric step, sigma = 2%.
            price = (price * (0.02 * std_normal(&mut rng)).exp()).clamp(0.5, PRICE_CAP);
            points.push(Point::new3(stock as f64 + 0.5, price, day as f64 + 0.5));
        }
    }
    let domain = Rect::new(
        Point::new3(0.0, 0.0, 0.0),
        Point::new3(n_stocks as f64, PRICE_CAP, n_days as f64),
    );
    // 8 KB pages; 32-byte records + 22-byte payload = 54 bytes →
    // ~151 records per bucket; ≈127k records / (151 * 0.7) ≈ 1,200 buckets,
    // matching the paper's 1,218 buckets over 6,336 subspaces.
    Dataset::new("stock.3d", points, domain, 8192, 22)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_count_near_paper() {
        let ds = stock3d(1);
        // The paper had 127,026 records; require the same regime.
        assert!(
            (90_000..=180_000).contains(&ds.len()),
            "record count {}",
            ds.len()
        );
        assert_eq!(ds.dim(), 3);
        for p in &ds.points {
            assert!(ds.domain.contains_closed(p));
        }
    }

    #[test]
    fn per_stock_prices_form_bands() {
        let ds = stock3d(5);
        // For a handful of stocks, the price spread must be far narrower
        // than the global price range — the per-stock hot spots of Fig. 5.
        for stock in [3usize, 50, 200, 380] {
            let prices: Vec<f64> = ds
                .points
                .iter()
                .filter(|p| p.get(0) as usize == stock)
                .map(|p| p.get(1))
                .collect();
            if prices.len() < 10 {
                continue;
            }
            let min = prices.iter().cloned().fold(f64::MAX, f64::min);
            let max = prices.iter().cloned().fold(f64::MIN, f64::max);
            assert!(
                max - min < PRICE_CAP * 0.5,
                "stock {stock} band too wide: {min}..{max}"
            );
        }
    }

    #[test]
    fn date_slice_roughly_uniform() {
        let ds = stock3d(5);
        let h = ds.marginal_histogram(2, 10);
        // Later deciles have at least as many listings (stocks only start
        // during the first third), and no decile is empty.
        assert!(h.iter().all(|&c| c > 0));
        let first = h[0] as f64;
        let last = h[9] as f64;
        assert!(last > first * 0.8, "dates collapsed: {h:?}");
    }

    #[test]
    fn grid_file_bucket_regime() {
        let ds = stock3d(42);
        let gf = ds.build_grid_file();
        let st = gf.stats();
        // Paper: 6,336 subspaces merged into 1,218 buckets.
        assert!(
            (700..=2_200).contains(&st.n_buckets),
            "bucket count {} out of regime (cells {:?})",
            st.n_buckets,
            st.cells_per_dim
        );
        assert!(st.n_merged_buckets > 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            stock3d_sized(9, 20, 50).points,
            stock3d_sized(9, 20, 50).points
        );
    }
}
