//! High-dimensional datasets for the frontier experiments.
//!
//! The paper stops at 4 dimensions (the SP-2 spatio-temporal set); the
//! declustering lower-bound literature predicts the gap from optimal grows
//! like `(log M)^((d-1)/2)`, so the interesting regime is *higher* `d`.
//! These generators produce 5–6-dimensional point sets sized to land in the
//! same few-hundred-bucket regime as the 2-D sets, keeping every scheme —
//! including the `O(N^2)` proximity-based ones — tractable.

use crate::dataset::Dataset;
use crate::rng::truncated_normal;
use pargrid_geom::{Point, Rect, MAX_DIM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N_POINTS: usize = 20_000;
const DOMAIN_HI: f64 = 2000.0;

fn domain_nd(dim: usize) -> Rect {
    let lo = [0.0; MAX_DIM];
    let hi = [DOMAIN_HI; MAX_DIM];
    Rect::new(Point::new(&lo[..dim]), Point::new(&hi[..dim]))
}

/// Payload sized so a 4 KB page holds 64 records regardless of `dim`
/// (record = 8-byte id + 8 bytes per coordinate + payload).
fn payload_for(dim: usize) -> usize {
    64usize.saturating_sub(8 + 8 * dim)
}

/// `uniform.{d}d`: 20,000 uniformly distributed points in `[0, 2000]^dim`.
///
/// # Panics
/// Panics unless `2 <= dim <= MAX_DIM`.
pub fn uniform_nd(dim: usize, seed: u64) -> Dataset {
    assert!((2..=MAX_DIM).contains(&dim), "dim must be in 2..={MAX_DIM}");
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..N_POINTS)
        .map(|_| {
            let mut c = [0.0; MAX_DIM];
            for slot in c.iter_mut().take(dim) {
                *slot = rng.random::<f64>() * DOMAIN_HI;
            }
            Point::new(&c[..dim])
        })
        .collect();
    Dataset::new(
        format!("uniform.{dim}d"),
        points,
        domain_nd(dim),
        4096,
        payload_for(dim),
    )
}

/// `hot.{d}d`: half uniform background, half a Gaussian hotspot at the
/// domain center — the high-dimensional analogue of `hot.2d`.
///
/// # Panics
/// Panics unless `2 <= dim <= MAX_DIM`.
pub fn hot_nd(dim: usize, seed: u64) -> Dataset {
    assert!((2..=MAX_DIM).contains(&dim), "dim must be in 2..={MAX_DIM}");
    let mut rng = StdRng::seed_from_u64(seed);
    let center = DOMAIN_HI / 2.0;
    let sigma = DOMAIN_HI / 10.0;
    let mut points = Vec::with_capacity(N_POINTS);
    for i in 0..N_POINTS {
        let mut c = [0.0; MAX_DIM];
        for slot in c.iter_mut().take(dim) {
            *slot = if i < N_POINTS / 2 {
                rng.random::<f64>() * DOMAIN_HI
            } else {
                truncated_normal(&mut rng, center, sigma, 0.0, DOMAIN_HI)
            };
        }
        points.push(Point::new(&c[..dim]));
    }
    Dataset::new(
        format!("hot.{dim}d"),
        points,
        domain_nd(dim),
        4096,
        payload_for(dim),
    )
}

/// `uniform.5d` — the frontier suite's high-dimensional workhorse.
pub fn uniform5d(seed: u64) -> Dataset {
    uniform_nd(5, seed)
}

/// `uniform.6d` — the maximum dimensionality the geometry layer supports.
pub fn uniform6d(seed: u64) -> Dataset {
    uniform_nd(6, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_domains_and_determinism() {
        for dim in [2, 5, 6] {
            let ds = uniform_nd(dim, 9);
            assert_eq!(ds.len(), N_POINTS);
            assert_eq!(ds.dim(), dim);
            assert!(ds.points.iter().all(|p| ds.domain.contains_closed(p)));
            assert_eq!(ds.points, uniform_nd(dim, 9).points);
            assert_ne!(ds.points, uniform_nd(dim, 10).points);
        }
    }

    #[test]
    fn grid_files_stay_in_the_tractable_regime() {
        for ds in [uniform5d(42), uniform6d(42), hot_nd(5, 42)] {
            let gf = ds.build_grid_file();
            let st = gf.stats();
            assert!(
                (100..=2000).contains(&st.n_buckets),
                "{}: {} buckets",
                ds.name,
                st.n_buckets
            );
            gf.check_invariants();
        }
    }

    #[test]
    fn hot_nd_concentrates_mass_centrally() {
        let ds = hot_nd(5, 3);
        let central = ds
            .points
            .iter()
            .filter(|p| (0..5).all(|k| (p.get(k) - 1000.0).abs() < 300.0))
            .count();
        // The central box holds (0.3)^5 ≈ 0.24% of the volume; uniform data
        // would put ~49 points there, the hotspot thousands.
        assert!(central > 1000, "only {central} central points");
    }

    #[test]
    #[should_panic(expected = "dim must be")]
    fn rejects_one_dimensional_request() {
        let _ = uniform_nd(1, 0);
    }
}
