//! The paper's **minimax spanning tree** declustering algorithm
//! (Algorithm 2, §3.1).
//!
//! The grid-file declustering problem is mapped to M-way graph partitioning
//! of the complete bucket graph, edges weighted by co-access probability
//! (the proximity index). The algorithm extends Prim's MST construction:
//!
//! 1. **Random seeding** — pick M mutually distinct random buckets as the
//!    roots of M trees (one per disk).
//! 2. **Expanding** — grow the trees round-robin. For every unassigned
//!    bucket `x` and tree `K`, maintain `MAX_x(K)`, the maximum edge weight
//!    between `x` and the members of `A_K`; tree `K` takes the bucket with
//!    the **minimum** such maximum (the *minimax* criterion: the bucket
//!    least likely to be co-accessed with anything already on that disk).
//!
//! Round-robin growth guarantees perfect balance: every disk receives at
//! most `ceil(N / M)` buckets. The cost is `O(N^2)` similarity evaluations
//! and `O(N * M)` memory for the `MAX` table.

use crate::assignment::Assignment;
use crate::input::DeclusterInput;
use crate::weights::EdgeWeight;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs the minimax spanning-tree algorithm.
///
/// `seed` drives the random seeding phase; the expansion is deterministic
/// given the seeds.
pub fn minimax_assign(
    input: &DeclusterInput,
    m: usize,
    weight: EdgeWeight,
    seed: u64,
) -> Assignment {
    assert!(m >= 1, "need at least one disk");
    let n = input.n_buckets();
    let mut disks = vec![u32::MAX; n];
    if n == 0 {
        return Assignment::new(input, m, disks);
    }
    if m >= n {
        // Degenerate: every bucket gets its own disk.
        for (p, d) in disks.iter_mut().enumerate() {
            *d = p as u32;
        }
        return Assignment::new(input, m, disks);
    }

    // Phase 1: random seeding — M distinct seed buckets.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let seeds = &order[..m];

    // MAX table, row-major: max_tab[x * m + k] = MAX_x(k).
    // Initialized from the seeds (Phase 2 step 1).
    let mut max_tab = vec![0.0f64; n * m];
    let mut unassigned: Vec<usize> = Vec::with_capacity(n - m);
    for x in 0..n {
        if seeds.contains(&x) {
            continue;
        }
        for (k, &s) in seeds.iter().enumerate() {
            max_tab[x * m + k] = weight.similarity(input, x, s);
        }
        unassigned.push(x);
    }
    for (k, &s) in seeds.iter().enumerate() {
        disks[s] = k as u32;
    }

    // Phase 2 steps 2-5: round-robin expansion.
    let mut tree = 0usize; // K
    while !unassigned.is_empty() {
        // Find y minimizing MAX_y(tree).
        let (best_idx, &y) = unassigned
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                max_tab[a * m + tree]
                    .partial_cmp(&max_tab[b * m + tree])
                    .expect("similarities are never NaN")
            })
            .expect("unassigned is non-empty");
        disks[y] = tree as u32;
        unassigned.swap_remove(best_idx);

        // Update MAX_x(tree) for the remaining vertices.
        for &x in &unassigned {
            let c = weight.similarity(input, y, x);
            let slot = &mut max_tab[x * m + tree];
            if c > *slot {
                *slot = c;
            }
        }
        tree = (tree + 1) % m;
    }

    Assignment::new(input, m, disks)
}

/// Multithreaded minimax: identical algorithm, with the `O(N)` inner
/// operations (the `MAX` scan and the `MAX` update) data-parallel over
/// `threads` chunks via scoped threads.
///
/// Tie-breaking differs from [`minimax_assign`] (candidates are scanned in
/// bucket-position order rather than insertion order), so assignments are
/// deterministic per seed but not bit-identical to the serial variant;
/// quality and the balance guarantee are the same.
pub fn minimax_assign_parallel(
    input: &DeclusterInput,
    m: usize,
    weight: EdgeWeight,
    seed: u64,
    threads: usize,
) -> Assignment {
    assert!(m >= 1, "need at least one disk");
    assert!(threads >= 1, "need at least one thread");
    let n = input.n_buckets();
    let mut disks = vec![u32::MAX; n];
    if n == 0 {
        return Assignment::new(input, m, disks);
    }
    if m >= n {
        for (p, d) in disks.iter_mut().enumerate() {
            *d = p as u32;
        }
        return Assignment::new(input, m, disks);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let seeds = &order[..m];

    // Transposed MAX table: one column per tree, full length n; `assigned`
    // marks rows no longer in B. Full-range scans keep chunks contiguous
    // for `chunks_mut`, at the same O(N^2) total as the serial variant.
    let mut assigned = vec![false; n];
    let mut tabs: Vec<Vec<f64>> = vec![vec![0.0; n]; m];
    for (k, &s) in seeds.iter().enumerate() {
        disks[s] = k as u32;
        assigned[s] = true;
    }
    let chunk = n.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (k, tab) in tabs.iter_mut().enumerate() {
            let s = seeds[k];
            for (mut start, slice) in tab
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, c)| (i * chunk, c))
            {
                let assigned = &assigned;
                scope.spawn(move || {
                    for v in slice.iter_mut() {
                        if !assigned[start] {
                            *v = weight.similarity(input, start, s);
                        }
                        start += 1;
                    }
                });
            }
        }
    });

    let mut remaining = n - m;
    let mut tree = 0usize;
    while remaining > 0 {
        // Parallel arg-min over unassigned rows of tabs[tree].
        let tab = &tabs[tree];
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    break;
                }
                let assigned = &assigned;
                handles.push(scope.spawn(move || {
                    let mut arg = usize::MAX;
                    let mut val = f64::INFINITY;
                    for x in lo..hi {
                        if !assigned[x] && tab[x] < val {
                            val = tab[x];
                            arg = x;
                        }
                    }
                    (arg, val)
                }));
            }
            for h in handles {
                best.push(h.join().expect("worker thread panicked"));
            }
        });
        let (y, _) = best
            .into_iter()
            .filter(|&(arg, _)| arg != usize::MAX)
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(a.0.cmp(&b.0)))
            .expect("some bucket remains");
        disks[y] = tree as u32;
        assigned[y] = true;
        remaining -= 1;

        // Parallel MAX update for the tree that just grew.
        let tab = &mut tabs[tree];
        std::thread::scope(|scope| {
            for (mut start, slice) in tab
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, c)| (i * chunk, c))
            {
                let assigned = &assigned;
                scope.spawn(move || {
                    for v in slice.iter_mut() {
                        if !assigned[start] {
                            let c = weight.similarity(input, y, start);
                            if c > *v {
                                *v = c;
                            }
                        }
                        start += 1;
                    }
                });
            }
        });
        tree = (tree + 1) % m;
    }
    Assignment::new(input, m, disks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_gridfile::CartesianProductFile;

    fn grid_instance(w: u32, h: u32) -> DeclusterInput {
        DeclusterInput::from_cartesian(&CartesianProductFile::new(&[w, h]))
    }

    #[test]
    fn perfect_balance_guarantee() {
        for (w, h, m) in [(8, 8, 4), (8, 8, 7), (10, 10, 16), (5, 5, 3)] {
            let input = grid_instance(w, h);
            let a = minimax_assign(&input, m, EdgeWeight::Proximity, 42);
            assert!(
                a.is_perfectly_balanced(),
                "{w}x{h} over {m} disks: counts {:?}",
                a.bucket_counts()
            );
        }
    }

    #[test]
    fn uses_every_disk() {
        let input = grid_instance(8, 8);
        let a = minimax_assign(&input, 8, EdgeWeight::Proximity, 1);
        let counts = a.bucket_counts();
        assert!(counts.iter().all(|&c| c == 8), "{counts:?}");
    }

    #[test]
    fn adjacent_cells_rarely_share_a_disk() {
        // The defining quality property: grid neighbors (the most likely
        // co-accessed pairs) land on different disks almost always.
        let w = 12u32;
        let input = grid_instance(w, w);
        let a = minimax_assign(&input, 8, EdgeWeight::Proximity, 7);
        let idx = |x: u32, y: u32| (x * w + y) as usize; // row-major ids
        let mut same = 0;
        let mut total = 0;
        for x in 0..w {
            for y in 0..w {
                if x + 1 < w {
                    total += 1;
                    if a.disk_at(idx(x, y)) == a.disk_at(idx(x + 1, y)) {
                        same += 1;
                    }
                }
                if y + 1 < w {
                    total += 1;
                    if a.disk_at(idx(x, y)) == a.disk_at(idx(x, y + 1)) {
                        same += 1;
                    }
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(
            frac < 0.08,
            "{same}/{total} adjacent pairs share a disk ({frac})"
        );
    }

    #[test]
    fn degenerate_cases() {
        let input = grid_instance(2, 2);
        // One disk: all buckets on it.
        let a = minimax_assign(&input, 1, EdgeWeight::Proximity, 0);
        assert!(a.disks().iter().all(|&d| d == 0));
        // More disks than buckets: injective assignment.
        let a = minimax_assign(&input, 16, EdgeWeight::Proximity, 0);
        let mut seen = a.disks().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let input = grid_instance(6, 6);
        let a = minimax_assign(&input, 4, EdgeWeight::Proximity, 9);
        let b = minimax_assign(&input, 4, EdgeWeight::Proximity, 9);
        assert_eq!(a.disks(), b.disks());
    }

    #[test]
    fn works_with_euclidean_weight() {
        let input = grid_instance(6, 6);
        let a = minimax_assign(&input, 4, EdgeWeight::EuclideanCenter, 3);
        assert!(a.is_perfectly_balanced());
    }

    #[test]
    fn parallel_variant_is_balanced_and_deterministic() {
        let input = grid_instance(10, 10);
        for threads in [1usize, 2, 4, 7] {
            let a = minimax_assign_parallel(&input, 8, EdgeWeight::Proximity, 5, threads);
            assert!(a.is_perfectly_balanced(), "threads={threads}");
            // Same result regardless of thread count (scan-order selection).
            let b = minimax_assign_parallel(&input, 8, EdgeWeight::Proximity, 5, 3);
            assert_eq!(a.disks(), b.disks(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_variant_quality_matches_serial() {
        // Not bit-identical (different tie-breaking) but the same quality
        // class: count adjacent same-disk pairs for both.
        let w = 12u32;
        let input = grid_instance(w, w);
        let count_adjacent_same = |a: &Assignment| {
            let idx = |x: u32, y: u32| (x * w + y) as usize;
            let mut same = 0;
            for x in 0..w {
                for y in 0..w {
                    if x + 1 < w && a.disk_at(idx(x, y)) == a.disk_at(idx(x + 1, y)) {
                        same += 1;
                    }
                    if y + 1 < w && a.disk_at(idx(x, y)) == a.disk_at(idx(x, y + 1)) {
                        same += 1;
                    }
                }
            }
            same
        };
        let serial = minimax_assign(&input, 8, EdgeWeight::Proximity, 7);
        let parallel = minimax_assign_parallel(&input, 8, EdgeWeight::Proximity, 7, 4);
        let s = count_adjacent_same(&serial);
        let p = count_adjacent_same(&parallel);
        assert!(p <= s + 6, "parallel {p} much worse than serial {s}");
    }

    #[test]
    fn parallel_degenerate_cases() {
        let input = grid_instance(2, 2);
        let a = minimax_assign_parallel(&input, 1, EdgeWeight::Proximity, 0, 4);
        assert!(a.disks().iter().all(|&d| d == 0));
        let a = minimax_assign_parallel(&input, 16, EdgeWeight::Proximity, 0, 4);
        let mut seen = a.disks().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4);
    }
}
