//! Edge weights for the proximity-based algorithms.
//!
//! The bucket graph is complete; an edge weight estimates the probability
//! that a range query touches both endpoint buckets. The paper uses the
//! Kamel–Faloutsos proximity index and argues Euclidean center distance is
//! inadequate for partially-overlapping box regions; both are provided so
//! the claim can be measured (ablation A3).

use crate::input::DeclusterInput;
use pargrid_geom::proximity::{center_distance, proximity_index};

/// Similarity measure between two buckets (larger = more likely co-accessed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeWeight {
    /// The Kamel–Faloutsos proximity index (the paper's choice).
    Proximity,
    /// `1 / (1 + Euclidean distance between centers)` — the rejected
    /// alternative, kept for ablation.
    EuclideanCenter,
}

impl EdgeWeight {
    /// Short label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            EdgeWeight::Proximity => "prox",
            EdgeWeight::EuclideanCenter => "euclid",
        }
    }

    /// Similarity between buckets at positions `a` and `b` of the instance.
    #[inline]
    pub fn similarity(&self, input: &DeclusterInput, a: usize, b: usize) -> f64 {
        let ra = &input.buckets[a].rect;
        let rb = &input.buckets[b].rect;
        match self {
            EdgeWeight::Proximity => proximity_index(ra, rb, &input.domain),
            EdgeWeight::EuclideanCenter => {
                // Normalize distance by the domain diagonal so the weight is
                // scale-free like the proximity index.
                let mut diag2 = 0.0;
                for k in 0..input.domain.dim() {
                    let s = input.domain.side(k);
                    diag2 += s * s;
                }
                1.0 / (1.0 + center_distance(ra, rb) / diag2.sqrt())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_gridfile::CartesianProductFile;

    #[test]
    fn both_weights_rank_neighbors_above_distant_cells() {
        let input =
            crate::input::DeclusterInput::from_cartesian(&CartesianProductFile::new(&[8, 8]));
        // Bucket ids are row-major; (0,0)=0, (0,1)=1, (7,7)=63.
        for w in [EdgeWeight::Proximity, EdgeWeight::EuclideanCenter] {
            let near = w.similarity(&input, 0, 1);
            let far = w.similarity(&input, 0, 63);
            assert!(near > far, "{w:?}: near {near} <= far {far}");
        }
    }

    #[test]
    fn similarity_is_symmetric() {
        let input =
            crate::input::DeclusterInput::from_cartesian(&CartesianProductFile::new(&[5, 5]));
        for w in [EdgeWeight::Proximity, EdgeWeight::EuclideanCenter] {
            for (a, b) in [(0, 3), (7, 20), (11, 24)] {
                assert_eq!(w.similarity(&input, a, b), w.similarity(&input, b, a));
            }
        }
    }
}
