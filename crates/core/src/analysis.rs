//! Analytic models of DM and FX scalability (paper §2.3, Theorems 1–2).
//!
//! The theorems are stated for 2-D square range queries over Cartesian
//! product files. This module provides the closed forms plus brute-force
//! counterparts; the test suite checks that they agree exactly, which is the
//! strongest reproduction of the analytic study we can run.
//!
//! Conventions: `l` is the query side in cells, `m` the number of disks,
//! and response time is the maximum number of buckets any one disk serves.
//! DM's response to an `l x l` window is position-independent (shifting the
//! window only permutes the residues), so a single window suffices; FX's
//! response depends on the window offset, so its functions take or average
//! over offsets.

use crate::index_based::CellMapper;

/// Optimal (perfectly parallel) response time for an `l x l` query over `m`
/// disks: `ceil(l^2 / m)`.
pub fn optimal_response_2d(l: u64, m: u64) -> u64 {
    assert!(l >= 1 && m >= 1);
    (l * l).div_ceil(m)
}

/// `beta = l mod m`, the quantity Theorem 1 is phrased in.
pub fn dm_beta(l: u64, m: u64) -> u64 {
    l % m
}

/// The optimality condition of Theorem 1(i):
/// `M <= l  and  (beta = 0  or  beta > M(1 - 1/beta))`.
///
/// The theorem states it with `M < l`, but `M = l` gives `beta = 0` and a
/// response of exactly `l = l^2/M`, so we read the bound as inclusive; the
/// brute-force cross-check in the tests confirms this reading.
pub fn dm_theorem1_condition(l: u64, m: u64) -> bool {
    assert!(l >= 1 && m >= 1);
    if m > l {
        return false;
    }
    let beta = dm_beta(l, m);
    beta == 0 || (beta as f64) > m as f64 * (1.0 - 1.0 / beta as f64)
}

/// Whether disk modulo is strictly optimal for every `l x l` square range
/// query on `m` disks (response equals `ceil(l^2 / m)`).
///
/// Slightly wider than [`dm_theorem1_condition`]: for `m` just above `l`
/// (precisely, `m(l - 1) < l^2`) the saturated response `l` still coincides
/// with the optimum, an edge the theorem's `M < l` guard leaves out.
pub fn dm_strictly_optimal_2d(l: u64, m: u64) -> bool {
    dm_response_2d(l, m) == optimal_response_2d(l, m)
}

/// Theorem 1(ii): closed-form DM response time for an `l x l` query.
pub fn dm_response_2d(l: u64, m: u64) -> u64 {
    assert!(l >= 1 && m >= 1);
    if m > l {
        return l;
    }
    let beta = dm_beta(l, m);
    let opt = optimal_response_2d(l, m);
    if beta == 0 || (beta as f64) > m as f64 * (1.0 - 1.0 / beta as f64) {
        opt
    } else {
        opt + beta - (beta * beta).div_ceil(m)
    }
}

/// Brute-force DM response: exact residue counting over one window
/// (position-independent, see module docs).
pub fn dm_response_brute_2d(l: u64, m: u64) -> u64 {
    assert!(l >= 1 && m >= 1);
    let mut counts = vec![0u64; m as usize];
    for i in 0..l {
        for j in 0..l {
            counts[((i + j) % m) as usize] += 1;
        }
    }
    counts.into_iter().max().expect("m >= 1")
}

/// Brute-force FX response for the window with low corner `(a, b)`.
pub fn fx_response_at_2d(l: u64, m: u64, a: u64, b: u64) -> u64 {
    assert!(l >= 1 && m >= 1);
    let mut counts = vec![0u64; m as usize];
    for i in a..a + l {
        for j in b..b + l {
            counts[((i ^ j) % m) as usize] += 1;
        }
    }
    counts.into_iter().max().expect("m >= 1")
}

/// Expected FX response over all window positions inside a `2^grid_bits`
/// square grid — the `R_FX(M)` of Theorem 2.
pub fn fx_expected_response_2d(l: u64, m: u64, grid_bits: u32) -> f64 {
    let side = 1u64 << grid_bits;
    assert!(l <= side, "window larger than grid");
    let span = side - l + 1;
    let mut total = 0u64;
    for a in 0..span {
        for b in 0..span {
            total += fx_response_at_2d(l, m, a, b);
        }
    }
    total as f64 / (span * span) as f64
}

/// Expected HCAM response over all window positions inside a `2^grid_bits`
/// square grid — the empirical counterpart of the HCAM scalability analysis
/// the paper lists as work in progress (§2.3). No closed form is known; this
/// function supplies the measured curve the analysis would have to match.
pub fn hcam_expected_response_2d(l: u64, m: u64, grid_bits: u32) -> f64 {
    use crate::index_based::IndexScheme;
    let side = 1u64 << grid_bits;
    assert!(l <= side, "window larger than grid");
    let mapper = IndexScheme::Hilbert.cell_mapper(&[side as u32, side as u32]);
    let span = side - l + 1;
    let mut total = 0u64;
    for a in 0..span {
        for b in 0..span {
            total += window_response(
                &mapper,
                &[a as u32, b as u32],
                &[l as u32, l as u32],
                m as u32,
            );
        }
    }
    total as f64 / (span * span) as f64
}

/// Response time of an arbitrary per-cell mapping on a `d`-dimensional
/// window of a Cartesian product file — lets every closed form be
/// cross-checked through the same code path as the actual algorithms.
pub fn window_response(mapper: &CellMapper, lo: &[u32], len: &[u32], m: u32) -> u64 {
    assert_eq!(lo.len(), len.len());
    let d = lo.len();
    let mut counts = vec![0u64; m as usize];
    let mut cur = vec![0u32; d];
    cur.copy_from_slice(lo);
    'outer: loop {
        counts[mapper.disk_of_cell(&cur, m) as usize] += 1;
        let mut k = d;
        loop {
            if k == 0 {
                break 'outer;
            }
            k -= 1;
            cur[k] += 1;
            if cur[k] < lo[k] + len[k] {
                break;
            }
            cur[k] = lo[k];
        }
    }
    counts.into_iter().max().expect("m >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_based::IndexScheme;

    #[test]
    fn theorem1_closed_form_matches_brute_force() {
        // The centerpiece of the analytic reproduction: exact agreement for
        // every (l, m) in a broad sweep.
        for l in 1..=40u64 {
            for m in 1..=48u64 {
                assert_eq!(
                    dm_response_2d(l, m),
                    dm_response_brute_2d(l, m),
                    "l={l}, m={m}"
                );
            }
        }
    }

    #[test]
    fn theorem1_optimality_condition_matches_brute_force() {
        for l in 1..=30u64 {
            for m in 1..=40u64 {
                let strict = dm_response_brute_2d(l, m) == optimal_response_2d(l, m);
                assert_eq!(
                    dm_strictly_optimal_2d(l, m),
                    strict,
                    "l={l}, m={m}: brute {} vs condition",
                    dm_response_brute_2d(l, m)
                );
                // The theorem's own condition is sufficient (never claims
                // optimality that brute force refutes)...
                if dm_theorem1_condition(l, m) {
                    assert!(
                        strict,
                        "theorem condition wrongly claims optimality l={l} m={m}"
                    );
                }
                // ...and within its stated regime (m <= l) it is also
                // necessary.
                if m <= l && strict {
                    assert!(
                        dm_theorem1_condition(l, m),
                        "theorem condition misses optimal case l={l} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn dm_saturates_beyond_l_disks() {
        // The scalability limit the paper demonstrates: for m > l the
        // response is stuck at l no matter how many disks are added.
        let l = 10;
        for m in 11..=64 {
            assert_eq!(dm_response_2d(l, m), l);
        }
        // And optimal keeps dropping, so the gap grows.
        assert!(optimal_response_2d(l, 64) < l);
    }

    #[test]
    fn dm_position_independence() {
        // Shifting the window never changes the DM response (justifies the
        // single-window brute force).
        let mapper = IndexScheme::DiskModulo.cell_mapper(&[64, 64]);
        for (l, m) in [(5u32, 3u32), (8, 5), (7, 11)] {
            let base = window_response(&mapper, &[0, 0], &[l, l], m);
            for (a, b) in [(1u32, 0u32), (3, 7), (10, 2), (19, 23)] {
                assert_eq!(window_response(&mapper, &[a, b], &[l, l], m), base);
            }
            assert_eq!(base, dm_response_brute_2d(l as u64, m as u64));
        }
    }

    #[test]
    fn theorem2_part1_fx_optimal_when_disks_at_most_query_side() {
        // R_FX(2^n) = 2^(m + (m - n)) = 2^(2m - n) for n <= m, at every
        // window position.
        for m_exp in 1..=4u32 {
            for n_exp in 0..=m_exp {
                let l = 1u64 << m_exp;
                let m = 1u64 << n_exp;
                let expected = 1u64 << (2 * m_exp - n_exp);
                for (a, b) in [(0u64, 0u64), (1, 3), (5, 2), (7, 7)] {
                    assert_eq!(
                        fx_response_at_2d(l, m, a, b),
                        expected,
                        "l=2^{m_exp}, m=2^{n_exp}, offset ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem2_part2_fx_bounds_when_disks_exceed_query_side() {
        // 2^(m - (n - m)) <= R_FX(2^n) <= 2^m for n > m.
        for m_exp in 1..=3u32 {
            for n_exp in (m_exp + 1)..=6u32 {
                let l = 1u64 << m_exp;
                let m = 1u64 << n_exp;
                let lower = if 2 * m_exp >= n_exp {
                    1u64 << (2 * m_exp - n_exp)
                } else {
                    1 // response is at least 1 whenever the window is non-empty
                };
                let upper = 1u64 << m_exp;
                let r = fx_expected_response_2d(l, m, 7);
                assert!(
                    r >= lower as f64 - 1e-9 && r <= upper as f64 + 1e-9,
                    "l=2^{m_exp}, m=2^{n_exp}: {r} outside [{lower}, {upper}]"
                );
            }
        }
    }

    #[test]
    fn theorem2_part3_fx_scaling_ratio() {
        // R_FX(2^(n+1)) >= (3/4) R_FX(2^n) for n > m: doubling the disks
        // buys at most a 25% improvement once saturated.
        for m_exp in 1..=3u32 {
            let l = 1u64 << m_exp;
            for n_exp in (m_exp + 1)..=5u32 {
                let r_n = fx_expected_response_2d(l, 1 << n_exp, 7);
                let r_n1 = fx_expected_response_2d(l, 1 << (n_exp + 1), 7);
                assert!(
                    r_n1 >= 0.75 * r_n - 1e-9,
                    "l=2^{m_exp}: R({}) = {r_n1} < 3/4 R({}) = {}",
                    1 << (n_exp + 1),
                    1 << n_exp,
                    0.75 * r_n
                );
            }
        }
    }

    #[test]
    fn fx_saturation_is_real() {
        // FX stops improving once m exceeds the query side: with l = 4 the
        // expected response stays near 4 for m in {8, 16, 32}, far above
        // optimal.
        let l = 4u64;
        let r8 = fx_expected_response_2d(l, 8, 7);
        let r32 = fx_expected_response_2d(l, 32, 7);
        assert!(r32 > 0.8 * r8, "r8 {r8}, r32 {r32}");
        assert!(r32 > optimal_response_2d(l, 32) as f64 * 2.0);
    }

    #[test]
    fn window_response_agrees_with_fx_brute() {
        let mapper = IndexScheme::FieldwiseXor.cell_mapper(&[64, 64]);
        for (l, m, a, b) in [(4u32, 8u32, 3u32, 5u32), (8, 4, 0, 0), (5, 7, 9, 2)] {
            assert_eq!(
                window_response(&mapper, &[a, b], &[l, l], m),
                fx_response_at_2d(l as u64, m as u64, a as u64, b as u64)
            );
        }
    }

    #[test]
    fn hcam_keeps_scaling_where_dm_fx_saturate() {
        // The paper's open question, answered empirically: for a fixed 4x4
        // query, DM and FX are pinned once m > 4, while HCAM's expected
        // response keeps falling as disks double.
        let l = 4u64;
        let r8 = hcam_expected_response_2d(l, 8, 6);
        let r16 = hcam_expected_response_2d(l, 16, 6);
        let r32 = hcam_expected_response_2d(l, 32, 6);
        assert!(r16 < 0.95 * r8, "8 -> 16 disks: {r8} -> {r16}");
        assert!(r32 < 0.95 * r16, "16 -> 32 disks: {r16} -> {r32}");
        // And it beats both saturated schemes outright at 32 disks.
        assert_eq!(dm_response_2d(l, 32), l);
        assert!(r32 < l as f64);
        assert!(r32 < fx_expected_response_2d(l, 32, 6));
    }

    #[test]
    fn hcam_not_strictly_optimal_but_close() {
        // HCAM trades strict small-m optimality for scalability: at m = 2 it
        // is slightly above DM's optimum, within 25%.
        let l = 4u64;
        let r2 = hcam_expected_response_2d(l, 2, 6);
        let opt = optimal_response_2d(l, 2) as f64;
        assert!(r2 >= opt);
        assert!(r2 < 1.25 * opt, "r2 = {r2} vs opt {opt}");
    }

    #[test]
    fn optimal_response_examples() {
        assert_eq!(optimal_response_2d(4, 4), 4);
        assert_eq!(optimal_response_2d(4, 16), 1);
        assert_eq!(optimal_response_2d(5, 4), 7); // ceil(25/4)
        assert_eq!(optimal_response_2d(1, 10), 1);
    }
}
