//! Latin-hypercube (low-discrepancy) declustering.
//!
//! Doerr, Hebbinghaus & Werth ("Improved bounds and schemes for the
//! declustering problem", 2006) study declustering schemes built from latin
//! squares: an `m x m` table whose rows and columns are both permutations of
//! the disks, so every row query and every column query of the cell grid is
//! answered perfectly in parallel, and whose *discrepancy* controls the
//! additive error on arbitrary rectangles.
//!
//! We realize the family as a **Korobov lattice**: cell `(i_1, ..., i_d)`
//! goes to disk `(sum_k a^(k-1) * i_k) mod m`, where the multiplier `a` is
//! the integer nearest `m / phi` (the golden section) that is coprime to
//! `m`. Coprimality makes every axis-aligned 2-D slice of the table a latin
//! square; the golden-section choice gives the classic Fibonacci
//! low-discrepancy structure — consecutive cells along any axis land on
//! disks that are maximally spread around the modular circle, which is
//! exactly what thin-slab and diagonal range queries need. Unlike the fixed
//! odd coefficients of generalized disk modulo, the coefficients here are
//! derived from `m` itself, so the permutation structure holds for every
//! disk count.

/// Greatest common divisor (Euclid).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The golden-section multiplier for an `m`-disk farm: the integer closest
/// to `m / phi` that lies in `[1, m-1]` and is coprime to `m` (ties broken
/// toward the smaller candidate). For `m <= 2` the only choice is `1`.
pub fn golden_multiplier(m: u32) -> u64 {
    if m <= 2 {
        return 1;
    }
    let m = m as u64;
    let target = (m as f64 * 0.618_033_988_749_894_9).round() as i64;
    for delta in 0..m as i64 {
        for cand in [target - delta, target + delta] {
            if (1..m as i64).contains(&cand) && gcd(cand as u64, m) == 1 {
                return cand as u64;
            }
        }
    }
    1 // unreachable: 1 is always coprime to m
}

/// The per-dimension Korobov coefficients `(1, a, a^2, ..., a^(d-1)) mod m`
/// for the golden-section multiplier `a`; unused trailing slots are zero.
pub fn korobov_coeffs(m: u32, dim: usize) -> [u64; pargrid_geom::MAX_DIM] {
    let a = golden_multiplier(m);
    let modulus = (m as u64).max(1);
    let mut coeffs = [0u64; pargrid_geom::MAX_DIM];
    let mut c = 1u64 % modulus;
    for slot in coeffs.iter_mut().take(dim.min(pargrid_geom::MAX_DIM)) {
        *slot = c;
        c = c * a % modulus;
    }
    coeffs
}

/// The full `m x m` latin square `L[i][j] = (i + a*j) mod m` — the 2-D slice
/// structure of the Korobov mapping, exposed for tests and analysis.
pub fn latin_square(m: u32) -> Vec<Vec<u32>> {
    let a = golden_multiplier(m);
    (0..m as u64)
        .map(|i| {
            (0..m as u64)
                .map(|j| ((i + a * j) % m as u64) as u32)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_is_coprime_and_near_golden() {
        for m in 2..=64u32 {
            let a = golden_multiplier(m);
            assert!(a >= 1 && a < m.max(2) as u64, "m={m}, a={a}");
            assert_eq!(gcd(a, m as u64), 1, "m={m}, a={a}");
            if m > 4 {
                let ideal = m as f64 * 0.618_033_988_749_894_9;
                assert!(
                    (a as f64 - ideal).abs() <= 3.0,
                    "m={m}: a={a} drifted from golden target {ideal:.1}"
                );
            }
        }
    }

    #[test]
    fn fibonacci_disk_counts_get_fibonacci_multipliers() {
        // round(F_n / phi) = F_{n-1}, and consecutive Fibonacci numbers are
        // coprime — the textbook case of the construction.
        assert_eq!(golden_multiplier(8), 5);
        assert_eq!(golden_multiplier(13), 8);
        assert_eq!(golden_multiplier(21), 13);
    }

    #[test]
    fn squares_are_latin() {
        for m in [2u32, 3, 5, 8, 12, 16, 30] {
            let sq = latin_square(m);
            for (i, sq_row) in sq.iter().enumerate() {
                let mut row: Vec<u32> = sq_row.clone();
                let mut col: Vec<u32> = (0..m as usize).map(|j| sq[j][i]).collect();
                row.sort_unstable();
                col.sort_unstable();
                let want: Vec<u32> = (0..m).collect();
                assert_eq!(row, want, "row {i} of m={m} is not a permutation");
                assert_eq!(col, want, "column {i} of m={m} is not a permutation");
            }
        }
    }

    #[test]
    fn coeffs_start_at_one_and_stay_reduced() {
        for m in [2u32, 7, 16, 32] {
            let c = korobov_coeffs(m, 6);
            assert_eq!(c[0], 1 % m as u64);
            assert!(c.iter().all(|&x| x < m as u64));
            assert_eq!(c[2], c[1] * c[1] % m as u64, "geometric progression");
        }
    }
}
