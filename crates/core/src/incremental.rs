//! Incremental declustering for growing datasets.
//!
//! The paper's motivating workloads are long-running simulations that
//! *periodically* append snapshots (§1); rerunning the `O(N^2)` minimax
//! algorithm from scratch after every append — and migrating every bucket
//! it reassigns — is exactly the cost a production deployment would refuse
//! to pay. This module extends an existing assignment to cover a grown grid
//! file **without moving any already-placed bucket**:
//!
//! * surviving buckets keep their disk;
//! * each new bucket is placed with the **same minimax criterion** applied
//!   incrementally — it goes to the disk minimizing the maximum proximity
//!   between the bucket and that disk's current residents — subject to a
//!   balance cap of `ceil(N/M)` buckets per disk.
//!
//! The cost is `O(N_new * N)` similarities instead of `O(N^2)`, and zero
//! migration. Ablation A7 measures the response-time gap between this and a
//! fresh minimax run.

use crate::assignment::Assignment;
use crate::input::DeclusterInput;
use crate::weights::EdgeWeight;

/// Extends `old_assignment` (over `old_input`) to the grown instance
/// `new_input`. Buckets are matched by id; every bucket of the old instance
/// must still exist in the new one (grid files never renumber live buckets
/// on insertion).
///
/// # Panics
/// Panics if an old bucket id is missing from the new instance or the disk
/// counts disagree.
pub fn extend_assignment(
    old_input: &DeclusterInput,
    old_assignment: &Assignment,
    new_input: &DeclusterInput,
    weight: EdgeWeight,
) -> Assignment {
    let m = old_assignment.n_disks();
    let n = new_input.n_buckets();
    assert!(
        n >= old_input.n_buckets(),
        "new instance is smaller than the old one"
    );

    // Map old bucket ids to their disks.
    let old_bound = old_input.max_id_bound();
    let mut disk_of_old_id = vec![u32::MAX; old_bound];
    for (pos, b) in old_input.buckets.iter().enumerate() {
        disk_of_old_id[b.id as usize] = old_assignment.disk_at(pos);
    }

    let cap = n.div_ceil(m);
    let mut disks = vec![u32::MAX; n];
    let mut load = vec![0usize; m];
    // Residents per disk (positions in the new instance), for the minimax
    // criterion.
    let mut residents: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut fresh = Vec::new();
    for (pos, b) in new_input.buckets.iter().enumerate() {
        let prior = disk_of_old_id
            .get(b.id as usize)
            .copied()
            .unwrap_or(u32::MAX);
        if prior != u32::MAX {
            disks[pos] = prior;
            load[prior as usize] += 1;
            residents[prior as usize].push(pos);
        } else {
            fresh.push(pos);
        }
    }
    assert_eq!(
        fresh.len(),
        n - old_input.n_buckets(),
        "every old bucket id must survive"
    );

    // Place new buckets one at a time: disk with the minimum of maximum
    // proximity to its residents, among disks under the balance cap.
    for &pos in &fresh {
        let mut best_disk = u32::MAX;
        let mut best_score = f64::INFINITY;
        for d in 0..m {
            if load[d] >= cap {
                continue;
            }
            let score = residents[d]
                .iter()
                .map(|&r| weight.similarity(new_input, pos, r))
                .fold(0.0f64, f64::max);
            if score < best_score {
                best_score = score;
                best_disk = d as u32;
            }
        }
        // All disks at the cap can only happen transiently when the old
        // assignment was itself above the new cap; fall back to least load.
        if best_disk == u32::MAX {
            best_disk = (0..m).min_by_key(|&d| load[d]).expect("m >= 1") as u32;
        }
        disks[pos] = best_disk;
        load[best_disk as usize] += 1;
        residents[best_disk as usize].push(pos);
    }

    Assignment::new(new_input, m, disks)
}

/// Places one fresh bucket against a live placement — the online analogue of
/// [`extend_assignment`] used by the mutable engine when a bucket split
/// creates a new bucket mid-serve.
///
/// `residents` is the current placement as `(rect, disk)` pairs; `fresh` is
/// the new bucket's spatial box. The fresh bucket goes to the disk
/// minimizing the maximum [proximity](pargrid_geom::proximity::proximity_index)
/// to that disk's residents, among disks under the post-insert balance cap
/// `ceil((n+1)/M)` — the Doerr-style invariant the declustering schemes all
/// preserve. Falls back to the least-loaded disk when every disk sits at the
/// cap (possible only if the prior placement was itself over-cap).
///
/// # Panics
/// Panics if `m == 0` or a resident names a disk `>= m`.
pub fn place_fresh_bucket(
    domain: &pargrid_geom::Rect,
    residents: &[(pargrid_geom::Rect, u32)],
    fresh: &pargrid_geom::Rect,
    m: usize,
) -> u32 {
    use pargrid_geom::proximity::proximity_index;
    assert!(m >= 1, "need at least one disk");
    let cap = (residents.len() + 1).div_ceil(m);
    let mut load = vec![0usize; m];
    // Max proximity to each disk's residents; empty disks score 0.0,
    // matching `extend_assignment`'s `fold(0.0, f64::max)`.
    let mut worst = vec![0.0f64; m];
    for (rect, disk) in residents {
        let d = *disk as usize;
        assert!(d < m, "resident on disk {d} of {m}");
        load[d] += 1;
        let s = proximity_index(fresh, rect, domain);
        if s > worst[d] {
            worst[d] = s;
        }
    }
    let mut best_disk = u32::MAX;
    let mut best_score = f64::INFINITY;
    for d in 0..m {
        if load[d] >= cap {
            continue;
        }
        if worst[d] < best_score {
            best_score = worst[d];
            best_disk = d as u32;
        }
    }
    if best_disk == u32::MAX {
        best_disk = (0..m).min_by_key(|&d| load[d]).expect("m >= 1") as u32;
    }
    best_disk
}

/// Places the chained replica for one fresh bucket, mirroring
/// [`ReplicatedAssignment::chained`](crate::replicate::ReplicatedAssignment):
/// prefer the next disk in the chain after `primary`, yield to a strictly
/// less-loaded disk (`load` counts total primary + secondary copies), never
/// land on the primary itself.
///
/// # Panics
/// Panics if `load.len() < 2` or `primary` is out of range.
pub fn place_fresh_replica(primary: u32, load: &[usize]) -> u32 {
    let m = load.len();
    assert!(m >= 2, "replication needs at least two disks");
    let p = primary as usize;
    assert!(p < m, "primary disk {p} of {m}");
    let mut best = (p + 1) % m;
    for off in 2..m {
        let d = (p + off) % m;
        if load[d] < load[best] {
            best = d;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::DeclusterMethod;
    use pargrid_geom::{Point, Rect};
    use pargrid_gridfile::{GridConfig, GridFile, Record};

    fn grow_file(n_initial: u64, n_extra: u64) -> (DeclusterInput, DeclusterInput) {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 6);
        let mut x = 11u64;
        let mut gen = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (
                ((x >> 16) % 10000) as f64 / 100.0,
                ((x >> 40) % 10000) as f64 / 100.0,
            )
        };
        let mut gf = GridFile::new(cfg);
        for i in 0..n_initial {
            let (a, b) = gen();
            gf.insert(Record::new(i, Point::new2(a, b)));
        }
        let old = DeclusterInput::from_grid_file(&gf);
        for i in 0..n_extra {
            let (a, b) = gen();
            gf.insert(Record::new(n_initial + i, Point::new2(a, b)));
        }
        let new = DeclusterInput::from_grid_file(&gf);
        (old, new)
    }

    #[test]
    fn old_buckets_never_move() {
        let (old, new) = grow_file(400, 400);
        let m = 8;
        let base = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&old, m, 3);
        let ext = extend_assignment(&old, &base, &new, EdgeWeight::Proximity);
        for (pos, b) in old.buckets.iter().enumerate() {
            assert_eq!(
                base.disk_at(pos),
                ext.disk_of_id(b.id),
                "bucket {} migrated",
                b.id
            );
        }
    }

    #[test]
    fn extension_is_balanced() {
        let (old, new) = grow_file(300, 600);
        let m = 7;
        let base = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&old, m, 3);
        let ext = extend_assignment(&old, &base, &new, EdgeWeight::Proximity);
        assert!(
            ext.is_perfectly_balanced(),
            "counts {:?}",
            ext.bucket_counts()
        );
    }

    #[test]
    fn no_growth_is_identity() {
        let (old, _) = grow_file(300, 0);
        let m = 4;
        let base = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&old, m, 9);
        let ext = extend_assignment(&old, &base, &old, EdgeWeight::Proximity);
        assert_eq!(base.disks(), ext.disks());
    }

    #[test]
    fn live_placement_matches_extend_assignment_stepwise() {
        // Growing an instance one bucket at a time, the live helper must
        // reproduce extend_assignment exactly: same criterion, same balance
        // cap `ceil((n+1)/M)`, same tie-breaks.
        use crate::input::BucketInfo;
        use pargrid_gridfile::CellRegion;
        let domain = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let m = 5;
        let mut x = 17u64;
        let mut mk = |id: u32| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 16) % 9000) as f64 / 100.0;
            let b = ((x >> 40) % 9000) as f64 / 100.0;
            let w = 1.0 + ((x >> 8) % 800) as f64 / 100.0;
            BucketInfo {
                id,
                region: CellRegion::new(&[0, 0], &[0, 0]),
                rect: Rect::new2(a, b, (a + w).min(100.0), (b + w).min(100.0)),
                n_records: 4,
            }
        };
        let input_of = |buckets: Vec<BucketInfo>| DeclusterInput {
            cells_per_dim: vec![1, 1],
            domain,
            buckets,
        };
        let seed: Vec<BucketInfo> = (0..40).map(&mut mk).collect();
        let mut cur = input_of(seed);
        let mut assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&cur, m, 3);
        for id in 40..120u32 {
            let fresh = mk(id);
            let residents: Vec<(Rect, u32)> = cur
                .buckets
                .iter()
                .enumerate()
                .map(|(pos, b)| (b.rect, assignment.disk_at(pos)))
                .collect();
            let live = place_fresh_bucket(&domain, &residents, &fresh.rect, m);

            let mut grown_buckets = cur.buckets.clone();
            grown_buckets.push(fresh);
            let grown = input_of(grown_buckets);
            let ext = extend_assignment(&cur, &assignment, &grown, EdgeWeight::Proximity);
            assert_eq!(
                live,
                ext.disk_at(grown.n_buckets() - 1),
                "fresh bucket {id} diverged"
            );
            cur = grown;
            assignment = ext;
        }
    }

    #[test]
    fn live_placement_respects_balance_cap() {
        let domain = Rect::new2(0.0, 0.0, 100.0, 100.0);
        let m = 4;
        let mut residents: Vec<(Rect, u32)> = Vec::new();
        let mut x = 5u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 16) % 9000) as f64 / 100.0;
            let b = ((x >> 40) % 9000) as f64 / 100.0;
            let r = Rect::new2(a, b, a + 5.0, b + 5.0);
            let d = place_fresh_bucket(&domain, &residents, &r, m);
            residents.push((r, d));
            let mut load = vec![0usize; m];
            for (_, disk) in &residents {
                load[*disk as usize] += 1;
            }
            let cap = residents.len().div_ceil(m);
            assert!(load.iter().all(|&l| l <= cap), "load {load:?} cap {cap}");
        }
    }

    #[test]
    fn live_replica_mirrors_chained_convention() {
        // Balanced load: plain chain (primary + 1). Unbalanced: the
        // strictly least-loaded non-primary disk wins.
        assert_eq!(place_fresh_replica(2, &[5, 5, 5, 5]), 3);
        assert_eq!(place_fresh_replica(3, &[5, 5, 5, 5]), 0);
        assert_eq!(place_fresh_replica(0, &[9, 4, 2, 4]), 2);
        // Never the primary, even when it is least loaded.
        for p in 0..4u32 {
            let mut load = [7usize; 4];
            load[p as usize] = 0;
            assert_ne!(place_fresh_replica(p, &load), p);
        }
    }

    #[test]
    fn quality_close_to_fresh_minimax() {
        // The incremental extension should separate closest pairs nearly as
        // well as running minimax from scratch.
        use pargrid_sim_free::count_closest_same;
        let (old, new) = grow_file(400, 400);
        let m = 8;
        let base = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&old, m, 3);
        let ext = extend_assignment(&old, &base, &new, EdgeWeight::Proximity);
        let fresh = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&new, m, 3);
        let (ext_bad, total) = count_closest_same(&new, &ext);
        let (fresh_bad, _) = count_closest_same(&new, &fresh);
        assert!(
            ext_bad <= fresh_bad + total / 20,
            "incremental {ext_bad} vs fresh {fresh_bad} (of {total})"
        );
    }

    /// Tiny local reimplementation of the closest-pair metric (the real one
    /// lives in `pargrid-sim`, which depends on this crate).
    mod pargrid_sim_free {
        use super::*;

        pub fn count_closest_same(input: &DeclusterInput, a: &Assignment) -> (usize, usize) {
            let n = input.n_buckets();
            let w = EdgeWeight::Proximity;
            let mut same = 0;
            let mut total = 0;
            for u in 0..n {
                let mut best = f64::NEG_INFINITY;
                let mut best_v = usize::MAX;
                for v in 0..n {
                    if v != u {
                        let s = w.similarity(input, u, v);
                        if s > best {
                            best = s;
                            best_v = v;
                        }
                    }
                }
                total += 1;
                if a.disk_at(u) == a.disk_at(best_v) {
                    same += 1;
                }
            }
            (same, total)
        }
    }
}
