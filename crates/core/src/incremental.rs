//! Incremental declustering for growing datasets.
//!
//! The paper's motivating workloads are long-running simulations that
//! *periodically* append snapshots (§1); rerunning the `O(N^2)` minimax
//! algorithm from scratch after every append — and migrating every bucket
//! it reassigns — is exactly the cost a production deployment would refuse
//! to pay. This module extends an existing assignment to cover a grown grid
//! file **without moving any already-placed bucket**:
//!
//! * surviving buckets keep their disk;
//! * each new bucket is placed with the **same minimax criterion** applied
//!   incrementally — it goes to the disk minimizing the maximum proximity
//!   between the bucket and that disk's current residents — subject to a
//!   balance cap of `ceil(N/M)` buckets per disk.
//!
//! The cost is `O(N_new * N)` similarities instead of `O(N^2)`, and zero
//! migration. Ablation A7 measures the response-time gap between this and a
//! fresh minimax run.

use crate::assignment::Assignment;
use crate::input::DeclusterInput;
use crate::weights::EdgeWeight;

/// Extends `old_assignment` (over `old_input`) to the grown instance
/// `new_input`. Buckets are matched by id; every bucket of the old instance
/// must still exist in the new one (grid files never renumber live buckets
/// on insertion).
///
/// # Panics
/// Panics if an old bucket id is missing from the new instance or the disk
/// counts disagree.
pub fn extend_assignment(
    old_input: &DeclusterInput,
    old_assignment: &Assignment,
    new_input: &DeclusterInput,
    weight: EdgeWeight,
) -> Assignment {
    let m = old_assignment.n_disks();
    let n = new_input.n_buckets();
    assert!(
        n >= old_input.n_buckets(),
        "new instance is smaller than the old one"
    );

    // Map old bucket ids to their disks.
    let old_bound = old_input.max_id_bound();
    let mut disk_of_old_id = vec![u32::MAX; old_bound];
    for (pos, b) in old_input.buckets.iter().enumerate() {
        disk_of_old_id[b.id as usize] = old_assignment.disk_at(pos);
    }

    let cap = n.div_ceil(m);
    let mut disks = vec![u32::MAX; n];
    let mut load = vec![0usize; m];
    // Residents per disk (positions in the new instance), for the minimax
    // criterion.
    let mut residents: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut fresh = Vec::new();
    for (pos, b) in new_input.buckets.iter().enumerate() {
        let prior = disk_of_old_id
            .get(b.id as usize)
            .copied()
            .unwrap_or(u32::MAX);
        if prior != u32::MAX {
            disks[pos] = prior;
            load[prior as usize] += 1;
            residents[prior as usize].push(pos);
        } else {
            fresh.push(pos);
        }
    }
    assert_eq!(
        fresh.len(),
        n - old_input.n_buckets(),
        "every old bucket id must survive"
    );

    // Place new buckets one at a time: disk with the minimum of maximum
    // proximity to its residents, among disks under the balance cap.
    for &pos in &fresh {
        let mut best_disk = u32::MAX;
        let mut best_score = f64::INFINITY;
        for d in 0..m {
            if load[d] >= cap {
                continue;
            }
            let score = residents[d]
                .iter()
                .map(|&r| weight.similarity(new_input, pos, r))
                .fold(0.0f64, f64::max);
            if score < best_score {
                best_score = score;
                best_disk = d as u32;
            }
        }
        // All disks at the cap can only happen transiently when the old
        // assignment was itself above the new cap; fall back to least load.
        if best_disk == u32::MAX {
            best_disk = (0..m).min_by_key(|&d| load[d]).expect("m >= 1") as u32;
        }
        disks[pos] = best_disk;
        load[best_disk as usize] += 1;
        residents[best_disk as usize].push(pos);
    }

    Assignment::new(new_input, m, disks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::DeclusterMethod;
    use pargrid_geom::{Point, Rect};
    use pargrid_gridfile::{GridConfig, GridFile, Record};

    fn grow_file(n_initial: u64, n_extra: u64) -> (DeclusterInput, DeclusterInput) {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 6);
        let mut x = 11u64;
        let mut gen = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (
                ((x >> 16) % 10000) as f64 / 100.0,
                ((x >> 40) % 10000) as f64 / 100.0,
            )
        };
        let mut gf = GridFile::new(cfg);
        for i in 0..n_initial {
            let (a, b) = gen();
            gf.insert(Record::new(i, Point::new2(a, b)));
        }
        let old = DeclusterInput::from_grid_file(&gf);
        for i in 0..n_extra {
            let (a, b) = gen();
            gf.insert(Record::new(n_initial + i, Point::new2(a, b)));
        }
        let new = DeclusterInput::from_grid_file(&gf);
        (old, new)
    }

    #[test]
    fn old_buckets_never_move() {
        let (old, new) = grow_file(400, 400);
        let m = 8;
        let base = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&old, m, 3);
        let ext = extend_assignment(&old, &base, &new, EdgeWeight::Proximity);
        for (pos, b) in old.buckets.iter().enumerate() {
            assert_eq!(
                base.disk_at(pos),
                ext.disk_of_id(b.id),
                "bucket {} migrated",
                b.id
            );
        }
    }

    #[test]
    fn extension_is_balanced() {
        let (old, new) = grow_file(300, 600);
        let m = 7;
        let base = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&old, m, 3);
        let ext = extend_assignment(&old, &base, &new, EdgeWeight::Proximity);
        assert!(
            ext.is_perfectly_balanced(),
            "counts {:?}",
            ext.bucket_counts()
        );
    }

    #[test]
    fn no_growth_is_identity() {
        let (old, _) = grow_file(300, 0);
        let m = 4;
        let base = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&old, m, 9);
        let ext = extend_assignment(&old, &base, &old, EdgeWeight::Proximity);
        assert_eq!(base.disks(), ext.disks());
    }

    #[test]
    fn quality_close_to_fresh_minimax() {
        // The incremental extension should separate closest pairs nearly as
        // well as running minimax from scratch.
        use pargrid_sim_free::count_closest_same;
        let (old, new) = grow_file(400, 400);
        let m = 8;
        let base = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&old, m, 3);
        let ext = extend_assignment(&old, &base, &new, EdgeWeight::Proximity);
        let fresh = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&new, m, 3);
        let (ext_bad, total) = count_closest_same(&new, &ext);
        let (fresh_bad, _) = count_closest_same(&new, &fresh);
        assert!(
            ext_bad <= fresh_bad + total / 20,
            "incremental {ext_bad} vs fresh {fresh_bad} (of {total})"
        );
    }

    /// Tiny local reimplementation of the closest-pair metric (the real one
    /// lives in `pargrid-sim`, which depends on this crate).
    mod pargrid_sim_free {
        use super::*;

        pub fn count_closest_same(input: &DeclusterInput, a: &Assignment) -> (usize, usize) {
            let n = input.n_buckets();
            let w = EdgeWeight::Proximity;
            let mut same = 0;
            let mut total = 0;
            for u in 0..n {
                let mut best = f64::NEG_INFINITY;
                let mut best_v = usize::MAX;
                for v in 0..n {
                    if v != u {
                        let s = w.similarity(input, u, v);
                        if s > best {
                            best = s;
                            best_v = v;
                        }
                    }
                }
                total += 1;
                if a.disk_at(u) == a.disk_at(best_v) {
                    same += 1;
                }
            }
            (same, total)
        }
    }
}
