//! Conflict-resolution heuristics for index-based schemes on grid files
//! (paper §2.1).
//!
//! A merged bucket's cells may map to several disks; the heuristics pick one:
//!
//! * **Random selection** — uniform choice among the candidate disks.
//! * **Most frequent** — the disk that the largest number of the bucket's
//!   cells map to (ties broken randomly).
//! * **Data balance** (Algorithm 1) — unambiguous buckets first; then each
//!   conflicted bucket goes to its candidate disk currently holding the
//!   fewest buckets.
//! * **Area balance** — like data balance but balancing the total spatial
//!   volume per disk instead of the bucket count.

use crate::assignment::Assignment;
use crate::index_based::{candidate_sets, IndexScheme};
use crate::input::DeclusterInput;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four heuristics of §2.1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConflictPolicy {
    /// Uniform random choice among candidates.
    Random,
    /// Candidate disk covering the most cells of the bucket.
    MostFrequent,
    /// Algorithm 1: greedily even out the bucket count per disk.
    DataBalance,
    /// Greedily even out the spatial volume per disk.
    AreaBalance,
}

impl ConflictPolicy {
    /// Short label used in result tables (`R`, `F`, `D`, `A`).
    pub fn label(&self) -> &'static str {
        match self {
            ConflictPolicy::Random => "R",
            ConflictPolicy::MostFrequent => "F",
            ConflictPolicy::DataBalance => "D",
            ConflictPolicy::AreaBalance => "A",
        }
    }
}

/// Runs an index-based scheme plus conflict resolution on a grid-file
/// instance. `seed` feeds the random choices of `Random`/`MostFrequent`.
pub fn index_based_assign(
    input: &DeclusterInput,
    m: usize,
    scheme: IndexScheme,
    policy: ConflictPolicy,
    seed: u64,
) -> Assignment {
    assert!(m >= 1, "need at least one disk");
    let cs = candidate_sets(input, scheme, m as u32);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = input.n_buckets();
    let mut disks = vec![u32::MAX; n];

    match policy {
        ConflictPolicy::Random => {
            for (p, cands) in cs.candidates.iter().enumerate() {
                disks[p] = if cands.len() == 1 {
                    cands[0].0
                } else {
                    cands[rng.random_range(0..cands.len())].0
                };
            }
        }
        ConflictPolicy::MostFrequent => {
            for (p, cands) in cs.candidates.iter().enumerate() {
                let best = cands.iter().map(|&(_, c)| c).max().expect("non-empty");
                let top: Vec<u32> = cands
                    .iter()
                    .filter(|&&(_, c)| c == best)
                    .map(|&(d, _)| d)
                    .collect();
                disks[p] = if top.len() == 1 {
                    top[0]
                } else {
                    top[rng.random_range(0..top.len())]
                };
            }
        }
        ConflictPolicy::DataBalance => {
            // Algorithm 1, step 2: unambiguous buckets first.
            let mut load = vec![0u64; m];
            for (p, cands) in cs.candidates.iter().enumerate() {
                if cands.len() == 1 {
                    disks[p] = cands[0].0;
                    load[cands[0].0 as usize] += 1;
                }
            }
            // Step 3: each conflicted bucket to its least-loaded candidate.
            for (p, cands) in cs.candidates.iter().enumerate() {
                if cands.len() > 1 {
                    let d = cands
                        .iter()
                        .map(|&(d, _)| d)
                        .min_by_key(|&d| load[d as usize])
                        .expect("non-empty");
                    disks[p] = d;
                    load[d as usize] += 1;
                }
            }
        }
        ConflictPolicy::AreaBalance => {
            // Same structure, accumulating spatial volume instead of counts.
            let mut load = vec![0.0f64; m];
            for (p, cands) in cs.candidates.iter().enumerate() {
                if cands.len() == 1 {
                    disks[p] = cands[0].0;
                    load[cands[0].0 as usize] += input.buckets[p].rect.volume();
                }
            }
            for (p, cands) in cs.candidates.iter().enumerate() {
                if cands.len() > 1 {
                    let d = cands
                        .iter()
                        .map(|&(d, _)| d)
                        .min_by(|&a, &b| {
                            load[a as usize]
                                .partial_cmp(&load[b as usize])
                                .expect("volumes are never NaN")
                        })
                        .expect("non-empty");
                    disks[p] = d;
                    load[d as usize] += input.buckets[p].rect.volume();
                }
            }
        }
    }
    debug_assert!(disks.iter().all(|&d| d != u32::MAX));
    Assignment::new(input, m, disks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_geom::{Point, Rect};
    use pargrid_gridfile::{CartesianProductFile, GridConfig, GridFile, Record};

    fn merged_instance() -> DeclusterInput {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4);
        let mut recs = Vec::new();
        let mut x = 77u64;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Heavy center cluster + sparse background.
            let (a, b) = if i % 4 == 0 {
                (
                    ((x >> 16) % 10000) as f64 / 100.0,
                    ((x >> 40) % 10000) as f64 / 100.0,
                )
            } else {
                (
                    40.0 + ((x >> 16) % 2000) as f64 / 100.0,
                    40.0 + ((x >> 40) % 2000) as f64 / 100.0,
                )
            };
            recs.push(Record::new(i, Point::new2(a, b)));
        }
        DeclusterInput::from_grid_file(&GridFile::bulk_load(cfg, recs))
    }

    #[test]
    fn all_policies_produce_valid_assignments() {
        let input = merged_instance();
        for scheme in [
            IndexScheme::DiskModulo,
            IndexScheme::FieldwiseXor,
            IndexScheme::Hilbert,
        ] {
            for policy in [
                ConflictPolicy::Random,
                ConflictPolicy::MostFrequent,
                ConflictPolicy::DataBalance,
                ConflictPolicy::AreaBalance,
            ] {
                let a = index_based_assign(&input, 8, scheme, policy, 42);
                assert_eq!(a.disks().len(), input.n_buckets());
                assert!(a.disks().iter().all(|&d| d < 8));
            }
        }
    }

    #[test]
    fn unambiguous_buckets_keep_their_disk_under_every_policy() {
        // On a Cartesian product file there are no conflicts, so all four
        // policies must yield the identical assignment.
        let input = DeclusterInput::from_cartesian(&CartesianProductFile::new(&[8, 8]));
        let base = index_based_assign(
            &input,
            4,
            IndexScheme::DiskModulo,
            ConflictPolicy::Random,
            1,
        );
        for policy in [
            ConflictPolicy::MostFrequent,
            ConflictPolicy::DataBalance,
            ConflictPolicy::AreaBalance,
        ] {
            let a = index_based_assign(&input, 4, IndexScheme::DiskModulo, policy, 99);
            assert_eq!(a.disks(), base.disks());
        }
    }

    #[test]
    fn data_balance_beats_random_on_balance_degree() {
        let input = merged_instance();
        let mut rand_deg = 0.0;
        let mut bal_deg = 0.0;
        for seed in 0..5 {
            rand_deg += index_based_assign(
                &input,
                8,
                IndexScheme::FieldwiseXor,
                ConflictPolicy::Random,
                seed,
            )
            .data_balance_degree();
            bal_deg += index_based_assign(
                &input,
                8,
                IndexScheme::FieldwiseXor,
                ConflictPolicy::DataBalance,
                seed,
            )
            .data_balance_degree();
        }
        assert!(
            bal_deg <= rand_deg + 1e-9,
            "data balance {bal_deg} vs random {rand_deg}"
        );
    }

    #[test]
    fn most_frequent_picks_majority_disk() {
        let input = merged_instance();
        let cs = candidate_sets(&input, IndexScheme::DiskModulo, 4);
        let a = index_based_assign(
            &input,
            4,
            IndexScheme::DiskModulo,
            ConflictPolicy::MostFrequent,
            7,
        );
        for (p, cands) in cs.candidates.iter().enumerate() {
            let max = cands.iter().map(|&(_, c)| c).max().expect("non-empty");
            let chosen_count = cands
                .iter()
                .find(|&&(d, _)| d == a.disk_at(p))
                .map(|&(_, c)| c)
                .expect("chosen disk must be a candidate");
            assert_eq!(chosen_count, max);
        }
    }

    #[test]
    fn assignments_are_deterministic_per_seed() {
        let input = merged_instance();
        let a = index_based_assign(&input, 6, IndexScheme::Hilbert, ConflictPolicy::Random, 5);
        let b = index_based_assign(&input, 6, IndexScheme::Hilbert, ConflictPolicy::Random, 5);
        assert_eq!(a.disks(), b.disks());
    }
}
