//! Minimal-spanning-tree declustering — the other similarity-based baseline
//! of Fang, Lee & Chang (VLDB '86).
//!
//! A maximum-similarity spanning tree connects each bucket to a near
//! neighbor. Fang et al. then assign tree-adjacent vertices to different
//! groups; for `M = 2` this is exactly 2-coloring the tree by depth parity.
//! We implement the natural M-way generalization (depth mod M along a BFS of
//! the tree), which preserves the defining property — tree neighbors never
//! share a disk for M >= 2 — but, exactly as the paper criticizes, does
//! **not** guarantee balanced partitions: the tree's level populations are
//! whatever the data makes them. The imbalance is measurable with
//! [`crate::Assignment::data_balance_degree`] (ablation A3).

use crate::assignment::Assignment;
use crate::input::DeclusterInput;
use crate::weights::EdgeWeight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs MST declustering (depth-mod-M coloring of a maximum-similarity
/// spanning tree).
pub fn mst_assign(input: &DeclusterInput, m: usize, weight: EdgeWeight, seed: u64) -> Assignment {
    assert!(m >= 1, "need at least one disk");
    let n = input.n_buckets();
    let mut disks = vec![u32::MAX; n];
    if n == 0 {
        return Assignment::new(input, m, disks);
    }

    let (parent, order) = maximum_similarity_tree(input, weight, seed);

    // Depth mod M along the tree: `order` is a valid BFS/Prim order, so a
    // parent's depth is always known before its children's.
    let mut depth = vec![0u32; n];
    for &v in &order {
        if let Some(p) = parent[v] {
            depth[v] = depth[p] + 1;
        }
        disks[v] = depth[v] % m as u32;
    }
    Assignment::new(input, m, disks)
}

/// Prim's algorithm on similarities (maximum spanning tree). Returns the
/// parent of each vertex (root has `None`) and the insertion order.
pub(crate) fn maximum_similarity_tree(
    input: &DeclusterInput,
    weight: EdgeWeight,
    seed: u64,
) -> (Vec<Option<usize>>, Vec<usize>) {
    let n = input.n_buckets();
    let mut rng = StdRng::seed_from_u64(seed);
    let root = rng.random_range(0..n);

    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut best_sim = vec![f64::NEG_INFINITY; n];
    let mut best_link = vec![root; n];
    let mut in_tree = vec![false; n];
    let mut order = Vec::with_capacity(n);

    in_tree[root] = true;
    order.push(root);
    for (x, slot) in best_sim.iter_mut().enumerate() {
        if x != root {
            *slot = weight.similarity(input, root, x);
        }
    }
    for _ in 1..n {
        let v = (0..n)
            .filter(|&x| !in_tree[x])
            .max_by(|&a, &b| {
                best_sim[a]
                    .partial_cmp(&best_sim[b])
                    .expect("similarities are never NaN")
            })
            .expect("some vertex remains");
        in_tree[v] = true;
        parent[v] = Some(best_link[v]);
        order.push(v);
        for x in 0..n {
            if !in_tree[x] {
                let s = weight.similarity(input, v, x);
                if s > best_sim[x] {
                    best_sim[x] = s;
                    best_link[x] = v;
                }
            }
        }
    }
    (parent, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_gridfile::CartesianProductFile;

    fn grid_instance(w: u32, h: u32) -> DeclusterInput {
        DeclusterInput::from_cartesian(&CartesianProductFile::new(&[w, h]))
    }

    #[test]
    fn tree_is_spanning() {
        let input = grid_instance(6, 6);
        let (parent, order) = maximum_similarity_tree(&input, EdgeWeight::Proximity, 2);
        assert_eq!(order.len(), 36);
        assert_eq!(parent.iter().filter(|p| p.is_none()).count(), 1);
        // Acyclic & connected: following parents always reaches the root.
        let root = order[0];
        for v in 0..36 {
            let mut cur = v;
            let mut steps = 0;
            while let Some(p) = parent[cur] {
                cur = p;
                steps += 1;
                assert!(steps <= 36, "cycle detected");
            }
            assert_eq!(cur, root);
        }
    }

    #[test]
    fn tree_neighbors_on_distinct_disks() {
        let input = grid_instance(8, 8);
        let (parent, _) = maximum_similarity_tree(&input, EdgeWeight::Proximity, 5);
        let a = mst_assign(&input, 4, EdgeWeight::Proximity, 5);
        for (v, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                assert_ne!(a.disk_at(v), a.disk_at(*p));
            }
        }
    }

    #[test]
    fn balance_not_guaranteed_but_valid() {
        // The paper's criticism: MST partitions can be (very) unbalanced.
        // We only require validity here; the ablation experiment quantifies
        // the imbalance.
        let input = grid_instance(10, 10);
        let a = mst_assign(&input, 8, EdgeWeight::Proximity, 3);
        assert_eq!(a.disks().len(), 100);
        assert!(a.disks().iter().all(|&d| d < 8));
        assert!(a.data_balance_degree() >= 1.0);
    }
}
