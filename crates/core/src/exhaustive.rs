//! Exhaustive (provably optimal) declustering for tiny instances.
//!
//! The declustering problem is NP-complete (a Max-Cut variant, §3.1), so no
//! algorithm in this crate is optimal in general. For instances small enough
//! to enumerate, this module finds the assignment minimizing the intra-disk
//! proximity mass — the objective minimax greedily attacks — by branch and
//! bound. That gives the test suite a ground truth: how far from optimal is
//! minimax on instances where optimal is knowable at all?

use crate::assignment::Assignment;
use crate::input::DeclusterInput;
use crate::weights::EdgeWeight;

/// Hard cap on the search size (`m^n` grows fast).
const MAX_STATES: u64 = 20_000_000;

/// Finds the assignment minimizing total same-disk similarity by exhaustive
/// branch-and-bound search. Only feasible for tiny instances.
///
/// # Panics
/// Panics if `m^n` exceeds the internal state cap (≈2·10^7).
pub fn optimal_assignment(input: &DeclusterInput, m: usize, weight: EdgeWeight) -> Assignment {
    assert!(m >= 1);
    let n = input.n_buckets();
    let states = (m as u64).checked_pow(n as u32).unwrap_or(u64::MAX);
    assert!(
        states <= MAX_STATES,
        "instance too large for exhaustive search ({m}^{n} states)"
    );

    // Precompute the similarity matrix (n is tiny).
    let sim: Vec<Vec<f64>> = (0..n)
        .map(|u| (0..n).map(|v| weight.similarity(input, u, v)).collect())
        .collect();

    // Seed the bound with the round-robin baseline so pruning bites early.
    let mut best: Vec<u32> = (0..n).map(|i| (i % m) as u32).collect();
    let mut best_cost = 0.0;
    for u in 0..n {
        for v in (u + 1)..n {
            if best[u] == best[v] {
                best_cost += sim[u][v];
            }
        }
    }

    let mut current = vec![0u32; n];
    // Depth-first with incremental cost and symmetry breaking: bucket `i`
    // may only open disk `i` (first unused disk), killing the m! relabeling
    // symmetry.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        depth: usize,
        cost_so_far: f64,
        max_disk_used: u32,
        n: usize,
        m: usize,
        sim: &[Vec<f64>],
        current: &mut Vec<u32>,
        best: &mut Vec<u32>,
        best_cost: &mut f64,
    ) {
        if cost_so_far >= *best_cost {
            return; // prune: costs only grow
        }
        if depth == n {
            *best_cost = cost_so_far;
            best.copy_from_slice(current);
            return;
        }
        let open_limit = (max_disk_used + 1).min(m as u32 - 1);
        for d in 0..=open_limit {
            let mut added = 0.0;
            for prev in 0..depth {
                if current[prev] == d {
                    added += sim[prev][depth];
                }
            }
            current[depth] = d;
            dfs(
                depth + 1,
                cost_so_far + added,
                max_disk_used.max(d),
                n,
                m,
                sim,
                current,
                best,
                best_cost,
            );
        }
    }
    dfs(
        0,
        0.0,
        0,
        n,
        m,
        &sim,
        &mut current,
        &mut best,
        &mut best_cost,
    );
    Assignment::new(input, m, best)
}

/// Total same-disk similarity of an assignment (the objective above).
pub fn intra_cost(input: &DeclusterInput, a: &Assignment, weight: EdgeWeight) -> f64 {
    let n = input.n_buckets();
    let mut cost = 0.0;
    for u in 0..n {
        for v in (u + 1)..n {
            if a.disk_at(u) == a.disk_at(v) {
                cost += weight.similarity(input, u, v);
            }
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::DeclusterMethod;
    use pargrid_gridfile::CartesianProductFile;

    fn tiny(w: u32, h: u32) -> DeclusterInput {
        DeclusterInput::from_cartesian(&CartesianProductFile::new(&[w, h]))
    }

    #[test]
    fn two_disks_on_2x2_is_a_checkerboard() {
        // The optimal 2-way split of a 2x2 grid pairs diagonal cells
        // (diagonal neighbors are the least similar pairs).
        let input = tiny(2, 2);
        let opt = optimal_assignment(&input, 2, EdgeWeight::Proximity);
        // Row-major ids: (0,0)=0,(0,1)=1,(1,0)=2,(1,1)=3.
        assert_eq!(opt.disk_at(0), opt.disk_at(3));
        assert_eq!(opt.disk_at(1), opt.disk_at(2));
        assert_ne!(opt.disk_at(0), opt.disk_at(1));
    }

    #[test]
    fn optimal_is_a_lower_bound_for_every_heuristic() {
        let input = tiny(3, 3);
        for m in [2usize, 3] {
            let opt_cost = intra_cost(
                &input,
                &optimal_assignment(&input, m, EdgeWeight::Proximity),
                EdgeWeight::Proximity,
            );
            for method in DeclusterMethod::paper_five() {
                let a = method.assign(&input, m, 1);
                let c = intra_cost(&input, &a, EdgeWeight::Proximity);
                assert!(
                    c >= opt_cost - 1e-9,
                    "{} beat the optimum?! {c} < {opt_cost}",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn minimax_is_near_optimal_on_tiny_instances() {
        // The headline check: on every instance small enough to solve
        // exactly, minimax lands within 25% of the optimal objective.
        for (w, h, m) in [(3u32, 3u32, 2usize), (3, 3, 3), (4, 3, 2), (4, 2, 3)] {
            let input = tiny(w, h);
            let opt = intra_cost(
                &input,
                &optimal_assignment(&input, m, EdgeWeight::Proximity),
                EdgeWeight::Proximity,
            );
            // Best of a few seeds, as one would run it in practice.
            let mm = (0..4)
                .map(|s| {
                    intra_cost(
                        &input,
                        &DeclusterMethod::Minimax(EdgeWeight::Proximity).assign(&input, m, s),
                        EdgeWeight::Proximity,
                    )
                })
                .fold(f64::INFINITY, f64::min);
            assert!(
                mm <= opt * 1.25 + 1e-9,
                "{w}x{h}/{m}: minimax {mm} vs optimal {opt}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_instance_rejected() {
        let input = tiny(8, 8);
        let _ = optimal_assignment(&input, 8, EdgeWeight::Proximity);
    }
}
