//! Index-based declustering schemes (paper §2).
//!
//! These schemes assign each grid **cell** to a disk from its integer
//! coordinates alone:
//!
//! * **Disk modulo (DM)** — Du & Sobolewski: `(i_1 + ... + i_d) mod M`.
//! * **Fieldwise XOR (FX)** — Kim & Pramanik: `(i_1 ^ ... ^ i_d) mod M`.
//! * **Curve allocation (HCAM et al.)** — Faloutsos & Bhagwat: linearize the
//!   cells with a space-filling curve and deal round-robin:
//!   `H(i_1, ..., i_d) mod M`.
//!
//! On a grid file, a *merged* bucket covers several cells whose per-cell
//! disks may differ; the scheme therefore produces a **candidate multiset**
//! per bucket, which a [`crate::conflict::ConflictPolicy`] resolves.

use crate::input::DeclusterInput;
use crate::latin::korobov_coeffs;
use pargrid_geom::{
    curves::bits_for_sides, GrayCurve, HilbertCurve, OnionCurve, ScanCurve, SpaceFillingCurve,
    ZOrderCurve,
};

/// Which per-cell mapping to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexScheme {
    /// Disk modulo: `(sum of coords) mod M`.
    DiskModulo,
    /// Fieldwise XOR: `(xor of coords) mod M`.
    FieldwiseXor,
    /// Hilbert curve allocation (the paper's HCAM).
    Hilbert,
    /// Z-order curve allocation (ablation).
    ZOrder,
    /// Gray-code curve allocation (ablation).
    GrayCode,
    /// Row-major scan allocation (ablation).
    Scan,
    /// Generalized disk modulo (Du & Sobolewski): `(sum a_k * i_k) mod M`
    /// with fixed odd coefficients `a = (1, 3, 5, 7, 11, 13)`. Breaking the
    /// unit-coefficient symmetry spreads diagonal runs that plain DM maps to
    /// one disk (ablation).
    GeneralizedDiskModulo,
    /// Onion-curve allocation (Xu, Nguyen & Tirthapura): linearize the cells
    /// shell by shell and deal round-robin, like HCAM but with the onion
    /// curve's near-optimal clustering.
    Onion,
    /// Latin-hypercube / low-discrepancy allocation (Doerr, Hebbinghaus &
    /// Werth): `(sum a^(k-1) * i_k) mod M` with the golden-section Korobov
    /// multiplier `a` coprime to `M`, so every 2-D slice of the cell table
    /// is a latin square (see [`crate::latin`]).
    LatinHypercube,
}

/// The coefficient vector used by [`IndexScheme::GeneralizedDiskModulo`].
pub const GDM_COEFFS: [u64; pargrid_geom::MAX_DIM] = [1, 3, 5, 7, 11, 13];

impl IndexScheme {
    /// Short label used in result tables (`DM`, `FX`, `HCAM`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            IndexScheme::DiskModulo => "DM",
            IndexScheme::FieldwiseXor => "FX",
            IndexScheme::Hilbert => "HCAM",
            IndexScheme::ZOrder => "ZCAM",
            IndexScheme::GrayCode => "GCAM",
            IndexScheme::Scan => "SCAN",
            IndexScheme::GeneralizedDiskModulo => "GDM",
            IndexScheme::Onion => "ONION",
            IndexScheme::LatinHypercube => "LATIN",
        }
    }

    /// Builds the per-cell disk mapping for a grid with the given cell
    /// counts. Curve schemes embed the grid in the enclosing power-of-two
    /// cube, the standard HCAM treatment.
    pub fn cell_mapper(&self, cells_per_dim: &[u32]) -> CellMapper {
        let dim = cells_per_dim.len();
        match self {
            IndexScheme::DiskModulo => CellMapper::Sum,
            IndexScheme::FieldwiseXor => CellMapper::Xor,
            IndexScheme::GeneralizedDiskModulo => CellMapper::LinearSum(GDM_COEFFS),
            IndexScheme::LatinHypercube => CellMapper::Korobov,
            _ => {
                let sides: Vec<usize> = cells_per_dim.iter().map(|&c| c as usize).collect();
                let bits = bits_for_sides(&sides);
                let curve: Box<dyn SpaceFillingCurve + Send + Sync> = match self {
                    IndexScheme::Hilbert => Box::new(HilbertCurve::new(dim, bits)),
                    IndexScheme::ZOrder => Box::new(ZOrderCurve::new(dim, bits)),
                    IndexScheme::GrayCode => Box::new(GrayCurve::new(dim, bits)),
                    IndexScheme::Scan => Box::new(ScanCurve::new(dim, bits)),
                    IndexScheme::Onion => Box::new(OnionCurve::new(dim, bits)),
                    _ => unreachable!("non-curve schemes handled above"),
                };
                CellMapper::Curve(curve)
            }
        }
    }
}

/// A concrete per-cell disk mapping.
pub enum CellMapper {
    /// Disk modulo.
    Sum,
    /// Fieldwise XOR.
    Xor,
    /// Generalized disk modulo with per-dimension coefficients.
    LinearSum([u64; pargrid_geom::MAX_DIM]),
    /// Latin-hypercube linear sum whose coefficients `(1, a, a^2, ...)` are
    /// derived from the disk count at lookup time (the golden-section
    /// Korobov multiplier must be coprime to `m`, so it cannot be fixed
    /// ahead of time like [`CellMapper::LinearSum`]).
    Korobov,
    /// Space-filling curve round-robin.
    Curve(Box<dyn SpaceFillingCurve + Send + Sync>),
}

impl CellMapper {
    /// The disk assigned to a cell for an `m`-disk farm.
    pub fn disk_of_cell(&self, cell: &[u32], m: u32) -> u32 {
        debug_assert!(m >= 1);
        match self {
            CellMapper::Sum => {
                let s: u64 = cell.iter().map(|&c| c as u64).sum();
                (s % m as u64) as u32
            }
            CellMapper::Xor => {
                let x = cell.iter().fold(0u32, |acc, &c| acc ^ c);
                x % m
            }
            CellMapper::LinearSum(coeffs) => {
                let s: u64 = cell.iter().zip(coeffs).map(|(&c, &a)| c as u64 * a).sum();
                (s % m as u64) as u32
            }
            CellMapper::Korobov => {
                let coeffs = korobov_coeffs(m, cell.len());
                let s: u64 = cell
                    .iter()
                    .zip(&coeffs)
                    .map(|(&c, &a)| c as u64 % m as u64 * a)
                    .sum();
                (s % m as u64) as u32
            }
            CellMapper::Curve(curve) => (curve.index_of(cell) % m as u128) as u32,
        }
    }
}

/// Per-bucket candidate disks with multiplicities.
///
/// `candidates[p]` lists, for the bucket at input position `p`, the distinct
/// disks its cells map to and how many of its cells map to each — the input
/// to conflict resolution.
pub struct CandidateSets {
    /// `(disk, cell_count)` per bucket position, sorted by disk.
    pub candidates: Vec<Vec<(u32, u32)>>,
}

/// Computes the candidate multiset of every bucket under a scheme.
pub fn candidate_sets(input: &DeclusterInput, scheme: IndexScheme, m: u32) -> CandidateSets {
    let mapper = scheme.cell_mapper(&input.cells_per_dim);
    let mut candidates = Vec::with_capacity(input.n_buckets());
    let mut counts: Vec<u32> = vec![0; m as usize];
    for b in &input.buckets {
        counts.fill(0);
        b.region.for_each_cell(|cell| {
            counts[mapper.disk_of_cell(cell, m) as usize] += 1;
        });
        let set: Vec<(u32, u32)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(d, &c)| (d as u32, c))
            .collect();
        debug_assert!(!set.is_empty());
        candidates.push(set);
    }
    CandidateSets { candidates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DeclusterInput;
    use pargrid_gridfile::CartesianProductFile;

    #[test]
    fn dm_is_coordinate_sum() {
        let m = IndexScheme::DiskModulo.cell_mapper(&[8, 8]);
        assert_eq!(m.disk_of_cell(&[3, 4], 5), 2);
        assert_eq!(m.disk_of_cell(&[0, 0], 5), 0);
        assert_eq!(m.disk_of_cell(&[4, 1], 5), 0);
    }

    #[test]
    fn fx_is_coordinate_xor() {
        let m = IndexScheme::FieldwiseXor.cell_mapper(&[8, 8]);
        assert_eq!(m.disk_of_cell(&[3, 5], 8), 6);
        assert_eq!(m.disk_of_cell(&[7, 7], 8), 0);
    }

    #[test]
    fn hcam_deals_round_robin_along_the_curve() {
        let mapper = IndexScheme::Hilbert.cell_mapper(&[4, 4]);
        let curve = HilbertCurve::new(2, 2);
        let mut c = [0u32; 2];
        for i in 0..16u128 {
            curve.coords_of(i, &mut c);
            assert_eq!(mapper.disk_of_cell(&c, 3), (i % 3) as u32);
        }
    }

    #[test]
    fn curve_mapper_handles_non_power_of_two_grids() {
        // 5x3 grid embeds in an 8x8 curve; all cells must map somewhere.
        let mapper = IndexScheme::Hilbert.cell_mapper(&[5, 3]);
        for x in 0..5 {
            for y in 0..3 {
                let d = mapper.disk_of_cell(&[x, y], 4);
                assert!(d < 4);
            }
        }
    }

    #[test]
    fn gdm_with_unit_coefficient_on_dim0() {
        // GDM's first coefficient is 1, so on 1-D grids it equals DM.
        let gdm = IndexScheme::GeneralizedDiskModulo.cell_mapper(&[32]);
        let dm = IndexScheme::DiskModulo.cell_mapper(&[32]);
        for i in 0..32u32 {
            assert_eq!(gdm.disk_of_cell(&[i], 5), dm.disk_of_cell(&[i], 5));
        }
    }

    #[test]
    fn gdm_breaks_antidiagonal_collisions() {
        // DM maps the whole antidiagonal i + j = c to one disk; GDM's
        // coefficients (1, 3) spread it.
        let gdm = IndexScheme::GeneralizedDiskModulo.cell_mapper(&[8, 8]);
        let mut disks: Vec<u32> = (0..8).map(|i| gdm.disk_of_cell(&[i, 7 - i], 8)).collect();
        disks.sort_unstable();
        disks.dedup();
        assert!(disks.len() > 1, "antidiagonal still collapsed: {disks:?}");
    }

    #[test]
    fn gdm_is_optimal_for_single_unspecified_partial_match() {
        // Coefficient 1 on some dimension keeps the Du-Sobolewski line
        // optimality for that dimension; other lines advance by an odd
        // stride, which is coprime to any power-of-two disk count.
        use crate::partial_match::{for_each_partial_match_query, is_optimal_for};
        let sides = [8u32, 8, 8];
        let gdm = IndexScheme::GeneralizedDiskModulo.cell_mapper(&sides);
        for m in [2u32, 4, 8] {
            for_each_partial_match_query(&sides, u64::MAX, |q| {
                if q.iter().filter(|v| v.is_none()).count() == 1 {
                    assert!(is_optimal_for(&gdm, &sides, q, m), "m={m}, q={q:?}");
                }
            });
        }
    }

    #[test]
    fn cartesian_file_has_singleton_candidates() {
        let input = DeclusterInput::from_cartesian(&CartesianProductFile::new(&[4, 4]));
        for scheme in [
            IndexScheme::DiskModulo,
            IndexScheme::FieldwiseXor,
            IndexScheme::Hilbert,
        ] {
            let cs = candidate_sets(&input, scheme, 4);
            assert!(cs.candidates.iter().all(|c| c.len() == 1));
        }
    }

    #[test]
    fn dm_on_cartesian_uses_all_disks_evenly() {
        let input = DeclusterInput::from_cartesian(&CartesianProductFile::new(&[6, 6]));
        let cs = candidate_sets(&input, IndexScheme::DiskModulo, 6);
        let mut per_disk = [0u32; 6];
        for c in &cs.candidates {
            per_disk[c[0].0 as usize] += 1;
        }
        assert_eq!(per_disk, [6; 6]);
    }

    #[test]
    fn candidate_multiplicities_sum_to_cell_count() {
        // Build a grid file instance with merged buckets.
        use pargrid_geom::{Point, Rect};
        use pargrid_gridfile::{GridConfig, GridFile, Record};
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4);
        let mut recs = Vec::new();
        let mut x = 3u64;
        for i in 0..300u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // clustered: forces merged buckets elsewhere
            let a = 10.0 + ((x >> 16) % 2000) as f64 / 100.0;
            let b = 10.0 + ((x >> 40) % 2000) as f64 / 100.0;
            recs.push(Record::new(i, Point::new2(a, b)));
        }
        let gf = GridFile::bulk_load(cfg, recs);
        let input = DeclusterInput::from_grid_file(&gf);
        let cs = candidate_sets(&input, IndexScheme::DiskModulo, 4);
        for (b, cands) in input.buckets.iter().zip(&cs.candidates) {
            let total: u64 = cands.iter().map(|&(_, c)| c as u64).sum();
            assert_eq!(total, b.region.cell_count());
        }
        // At least one bucket has a real conflict.
        assert!(cs.candidates.iter().any(|c| c.len() > 1));
    }
}
