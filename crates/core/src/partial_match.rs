//! Analytic study of **partial-match** queries — the query class DM and FX
//! were originally designed for (paper §2, citing Du & Sobolewski and
//! Kim & Pramanik).
//!
//! A partial-match query fixes some attributes to single values and leaves
//! the rest unspecified; on a Cartesian product file it touches the
//! sub-grid obtained by fixing the specified coordinates. Two classical
//! results the paper builds on, both machine-checkable here:
//!
//! * **Du & Sobolewski:** disk modulo is strictly optimal for every
//!   partial-match query with exactly **one** unspecified attribute
//!   (it visits one full axis line: consecutive coordinate sums hit
//!   consecutive residues, so the buckets spread perfectly).
//! * **Kim & Pramanik:** when the number of disks and every field size are
//!   powers of two, the set of partial-match queries on which FX is optimal
//!   is a **superset** of DM's.

use crate::index_based::CellMapper;
use pargrid_geom::MAX_DIM;

/// A partial-match query over an integer grid: `Some(i)` fixes that
/// attribute to interval `i`, `None` leaves it unspecified.
pub type PartialMatchQuery = Vec<Option<u32>>;

/// Response time of a per-cell mapping on a partial-match query over a grid
/// with the given `sides`: the maximum number of touched cells on one disk.
pub fn partial_match_response(
    mapper: &CellMapper,
    sides: &[u32],
    query: &[Option<u32>],
    m: u32,
) -> u64 {
    assert_eq!(sides.len(), query.len());
    let d = sides.len();
    assert!(d <= MAX_DIM);
    let mut counts = vec![0u64; m as usize];
    let mut cur = [0u32; MAX_DIM];
    for (k, q) in query.iter().enumerate() {
        if let Some(v) = q {
            assert!(*v < sides[k], "fixed coordinate out of range");
            cur[k] = *v;
        }
    }
    // Odometer over the unspecified dimensions only.
    let free: Vec<usize> = (0..d).filter(|&k| query[k].is_none()).collect();
    loop {
        counts[mapper.disk_of_cell(&cur[..d], m) as usize] += 1;
        let mut advanced = false;
        for &k in free.iter().rev() {
            cur[k] += 1;
            if cur[k] < sides[k] {
                advanced = true;
                break;
            }
            cur[k] = 0;
        }
        if !advanced {
            break;
        }
    }
    counts.into_iter().max().expect("m >= 1")
}

/// Number of cells a partial-match query touches.
pub fn partial_match_cells(sides: &[u32], query: &[Option<u32>]) -> u64 {
    sides
        .iter()
        .zip(query)
        .map(|(&s, q)| if q.is_none() { s as u64 } else { 1 })
        .product()
}

/// The optimal (perfectly parallel) response: `ceil(cells / m)`.
pub fn partial_match_optimal(sides: &[u32], query: &[Option<u32>], m: u32) -> u64 {
    partial_match_cells(sides, query).div_ceil(m as u64)
}

/// Whether the mapping answers the query with optimal response time.
pub fn is_optimal_for(mapper: &CellMapper, sides: &[u32], query: &[Option<u32>], m: u32) -> bool {
    partial_match_response(mapper, sides, query, m) == partial_match_optimal(sides, query, m)
}

/// Enumerates every partial-match query of a (small) grid with at least one
/// unspecified attribute and at most `max_cells` touched cells, invoking `f`
/// on each. Used to compare the optimal-query *sets* of two mappings.
pub fn for_each_partial_match_query<F: FnMut(&[Option<u32>])>(
    sides: &[u32],
    max_cells: u64,
    mut f: F,
) {
    let d = sides.len();
    // Iterate over specification patterns (bitmask: 1 = specified), skipping
    // the all-specified pattern (exact match, not partial).
    for mask in 0..(1u32 << d) - 1 {
        // Odometer over the specified dimensions' values.
        let spec: Vec<usize> = (0..d).filter(|&k| mask >> k & 1 == 1).collect();
        let mut query: PartialMatchQuery = (0..d)
            .map(|k| (mask >> k & 1 == 1).then_some(0u32))
            .collect();
        if partial_match_cells(sides, &query) > max_cells {
            continue;
        }
        loop {
            f(&query);
            let mut advanced = false;
            for &k in spec.iter().rev() {
                let v = query[k].expect("specified dim") + 1;
                if v < sides[k] {
                    query[k] = Some(v);
                    advanced = true;
                    break;
                }
                query[k] = Some(0);
            }
            if !advanced {
                break;
            }
        }
    }
}

/// Counts, over all partial-match queries of the grid, how many each mapping
/// answers optimally, and how many FX answers optimally while DM does not
/// (and vice versa). Returns `(n_queries, dm_optimal, fx_optimal,
/// fx_only, dm_only)`.
pub fn compare_dm_fx_partial_match(sides: &[u32], m: u32) -> (u64, u64, u64, u64, u64) {
    let dm = crate::index_based::IndexScheme::DiskModulo.cell_mapper(sides);
    let fx = crate::index_based::IndexScheme::FieldwiseXor.cell_mapper(sides);
    let mut n = 0;
    let mut dm_opt = 0;
    let mut fx_opt = 0;
    let mut fx_only = 0;
    let mut dm_only = 0;
    for_each_partial_match_query(sides, u64::MAX, |q| {
        n += 1;
        let d_ok = is_optimal_for(&dm, sides, q, m);
        let f_ok = is_optimal_for(&fx, sides, q, m);
        dm_opt += u64::from(d_ok);
        fx_opt += u64::from(f_ok);
        fx_only += u64::from(f_ok && !d_ok);
        dm_only += u64::from(d_ok && !f_ok);
    });
    (n, dm_opt, fx_opt, fx_only, dm_only)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_based::IndexScheme;

    #[test]
    fn cell_counting() {
        assert_eq!(partial_match_cells(&[4, 5, 6], &[None, Some(2), None]), 24);
        assert_eq!(partial_match_cells(&[4, 5], &[None, None]), 20);
        assert_eq!(partial_match_optimal(&[4, 5], &[Some(1), None], 3), 2);
    }

    #[test]
    fn response_counts_line_queries() {
        // DM on a line query: consecutive sums hit consecutive residues.
        let dm = IndexScheme::DiskModulo.cell_mapper(&[8, 8]);
        let r = partial_match_response(&dm, &[8, 8], &[Some(3), None], 4);
        assert_eq!(r, 2); // 8 cells over 4 disks, perfectly
    }

    #[test]
    fn du_sobolewski_dm_optimal_one_unspecified() {
        // DM is strictly optimal for every partial-match query with exactly
        // one unspecified attribute — checked exhaustively on several grids
        // and disk counts.
        for sides in [vec![6u32, 9], vec![5, 7, 4], vec![8, 8, 8]] {
            let dm = IndexScheme::DiskModulo.cell_mapper(&sides);
            for m in 2..=8u32 {
                for_each_partial_match_query(&sides, u64::MAX, |q| {
                    let unspecified = q.iter().filter(|v| v.is_none()).count();
                    if unspecified == 1 {
                        assert!(
                            is_optimal_for(&dm, &sides, q, m),
                            "DM not optimal: sides {sides:?}, m={m}, q={q:?}"
                        );
                    }
                });
            }
        }
    }

    #[test]
    fn kim_pramanik_fx_superset_on_power_of_two_grids() {
        // With power-of-two disks and field sizes, FX's optimal query set
        // contains DM's.
        for (sides, m) in [
            (vec![8u32, 8], 4u32),
            (vec![8, 8], 8),
            (vec![4, 4, 4], 4),
            (vec![16, 8], 8),
        ] {
            let (n, dm_opt, fx_opt, _fx_only, dm_only) = compare_dm_fx_partial_match(&sides, m);
            assert!(n > 0);
            assert_eq!(
                dm_only, 0,
                "sides {sides:?}, m={m}: DM optimal on {dm_only} queries FX misses"
            );
            assert!(fx_opt >= dm_opt);
        }
    }

    #[test]
    fn both_universally_optimal_in_fully_aligned_regime() {
        // A sharper statement our enumeration reveals: with power-of-two
        // field sizes all at least the (power-of-two) disk count, every
        // unspecified field contributes a residue-uniform factor, so *both*
        // DM and FX are optimal on every partial-match query — the
        // Kim-Pramanik superset is an equality here, and FX's strict
        // advantage must come from configurations outside this regime.
        for (sides, m) in [(vec![8u32, 8], 4u32), (vec![8, 8], 8), (vec![16, 8], 8)] {
            let (n, dm_opt, fx_opt, fx_only, dm_only) = compare_dm_fx_partial_match(&sides, m);
            assert_eq!(dm_opt, n, "sides {sides:?}, m={m}");
            assert_eq!(fx_opt, n, "sides {sides:?}, m={m}");
            assert_eq!((fx_only, dm_only), (0, 0));
        }
    }

    #[test]
    fn superset_fails_off_powers_of_two() {
        // The Kim-Pramanik condition is needed: with a non-power-of-two
        // disk count DM can win queries FX loses.
        let mut dm_only_total = 0;
        for sides in [vec![6u32, 6], vec![9, 9], vec![6, 9]] {
            for m in [3u32, 5, 6] {
                let (_, _, _, _, dm_only) = compare_dm_fx_partial_match(&sides, m);
                dm_only_total += dm_only;
            }
        }
        assert!(
            dm_only_total > 0,
            "expected DM-only optimal queries off powers of two"
        );
    }

    #[test]
    fn enumeration_counts_queries() {
        // 2x2 grid: masks {00, 01, 10} -> 1 + 2 + 2 queries.
        let mut n = 0;
        for_each_partial_match_query(&[2, 2], u64::MAX, |_| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn max_cells_filters() {
        let mut n = 0;
        for_each_partial_match_query(&[4, 4], 4, |q| {
            assert!(partial_match_cells(&[4, 4], q) <= 4);
            n += 1;
        });
        // Only the one-unspecified queries (4 cells each): 4 + 4.
        assert_eq!(n, 8);
    }
}
