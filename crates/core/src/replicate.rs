//! Replicated declustering: a chained secondary copy of every bucket.
//!
//! The paper's minimax assignment optimizes the §2.2 response time — the
//! *maximum* per-disk load of a query — which composes naturally with
//! replication: when a disk fails, its buckets' load falls over to their
//! replicas instead of becoming unavailable. This module pairs any primary
//! [`Assignment`] with a **chained-declustered** secondary placement in the
//! style of Hsiao/DeWitt: each bucket's replica prefers the next disk in the
//! chain (`primary + 1 mod M`), falling back to the least-loaded other disk
//! so that the *total* (primary + secondary) data balance stays within
//! `ceil(2N / M)` buckets per disk whenever the primary assignment itself is
//! balanced.

use crate::assignment::Assignment;
use crate::input::DeclusterInput;

/// A primary assignment plus one chained-declustered replica per bucket.
///
/// Invariants: `secondary(b) != primary(b)` for every bucket, and both
/// placements index the same disks (`0..n_disks`). Requires at least two
/// disks.
#[derive(Clone, Debug)]
pub struct ReplicatedAssignment {
    primary: Assignment,
    /// Secondary disk per bucket position (aligned with the input order).
    secondary: Vec<u32>,
    /// Bucket id -> secondary disk, dense table (`u32::MAX` = no bucket).
    secondary_by_id: Vec<u32>,
}

impl ReplicatedAssignment {
    /// Places a chained secondary for every bucket of `primary`.
    ///
    /// Buckets are visited in input order; each secondary prefers the next
    /// disk in the chain after its primary but yields to a strictly
    /// less-loaded disk (by total primary + secondary count), keeping the
    /// combined placement balanced. Deterministic: no randomness involved.
    ///
    /// # Panics
    /// Panics if `primary` has fewer than two disks.
    pub fn chained(input: &DeclusterInput, primary: Assignment) -> Self {
        let m = primary.n_disks();
        assert!(m >= 2, "replication needs at least two disks");
        // Total load per disk: primaries are fixed, secondaries accrue.
        let mut load: Vec<usize> = primary.bucket_counts();
        let mut secondary = Vec::with_capacity(input.n_buckets());
        for pos in 0..input.n_buckets() {
            let p = primary.disk_at(pos) as usize;
            // Scan the chain starting right after the primary; take the
            // least-loaded disk, preferring earlier chain positions on ties
            // (offset 1 — plain chained declustering — wins when balanced).
            let mut best = (p + 1) % m;
            for off in 2..m {
                let d = (p + off) % m;
                if load[d] < load[best] {
                    best = d;
                }
            }
            load[best] += 1;
            secondary.push(best as u32);
        }
        let mut secondary_by_id = vec![u32::MAX; input.max_id_bound()];
        for (pos, b) in input.buckets.iter().enumerate() {
            secondary_by_id[b.id as usize] = secondary[pos];
        }
        ReplicatedAssignment {
            primary,
            secondary,
            secondary_by_id,
        }
    }

    /// The primary assignment.
    #[inline]
    pub fn primary(&self) -> &Assignment {
        &self.primary
    }

    /// Number of disks.
    #[inline]
    pub fn n_disks(&self) -> usize {
        self.primary.n_disks()
    }

    /// Secondary disk of the bucket at input position `pos`.
    #[inline]
    pub fn secondary_at(&self, pos: usize) -> u32 {
        self.secondary[pos]
    }

    /// Secondary disk of the bucket with grid-file id `id`.
    ///
    /// # Panics
    /// Panics if no bucket with that id exists in the instance.
    #[inline]
    pub fn secondary_of_id(&self, id: u32) -> u32 {
        self.try_secondary_of_id(id)
            .unwrap_or_else(|| panic!("bucket id {id} not in assignment"))
    }

    /// Secondary disk of the bucket with grid-file id `id`, or `None` when
    /// no such bucket exists — the non-panicking replica lookup used by
    /// callers probing untrusted ids (fault planners, repair paths).
    #[inline]
    pub fn try_secondary_of_id(&self, id: u32) -> Option<u32> {
        match self.secondary_by_id.get(id as usize) {
            Some(&d) if d != u32::MAX => Some(d),
            _ => None,
        }
    }

    /// Both copies of the bucket with grid-file id `id`: `(primary,
    /// secondary)` disks, or `None` when no such bucket exists.
    #[inline]
    pub fn copies_of_id(&self, id: u32) -> Option<(u32, u32)> {
        let s = self.try_secondary_of_id(id)?;
        Some((self.primary.disk_of_id(id), s))
    }

    /// The copy of bucket `id` that is *not* on `disk`: the secondary when
    /// `disk` is the primary, the primary when `disk` is the secondary,
    /// `None` when the bucket is unknown or `disk` holds neither copy.
    #[inline]
    pub fn other_copy_of_id(&self, id: u32, disk: u32) -> Option<u32> {
        let (p, s) = self.copies_of_id(id)?;
        if disk == p {
            Some(s)
        } else if disk == s {
            Some(p)
        } else {
            None
        }
    }

    /// Combined (primary + secondary) bucket count per disk.
    pub fn total_counts(&self) -> Vec<usize> {
        let mut counts = self.primary.bucket_counts();
        for &d in &self.secondary {
            counts[d as usize] += 1;
        }
        counts
    }

    /// Whether no disk holds more than `ceil(2N / M)` copies in total — the
    /// replicated analogue of [`Assignment::is_perfectly_balanced`].
    pub fn is_perfectly_balanced(&self) -> bool {
        let cap = (2 * self.secondary.len()).div_ceil(self.n_disks());
        self.total_counts().iter().all(|&c| c <= cap)
    }

    /// The degree of data balance over total copies: `C_max * M / C_sum`.
    pub fn data_balance_degree(&self) -> f64 {
        let counts = self.total_counts();
        let max = *counts.iter().max().expect("at least one disk") as f64;
        let sum: usize = counts.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        max * self.n_disks() as f64 / sum as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::DeclusterMethod;
    use crate::weights::EdgeWeight;
    use pargrid_gridfile::CartesianProductFile;

    fn instance(nx: u32, ny: u32) -> DeclusterInput {
        DeclusterInput::from_cartesian(&CartesianProductFile::new(&[nx, ny]))
    }

    #[test]
    fn secondary_never_equals_primary() {
        for m in 2..=7 {
            let input = instance(6, 6);
            let ra =
                DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, m, 42);
            for pos in 0..input.n_buckets() {
                assert_ne!(
                    ra.primary().disk_at(pos),
                    ra.secondary_at(pos),
                    "m={m} pos={pos}"
                );
            }
        }
    }

    #[test]
    fn copy_lookup_api_is_consistent_and_total() {
        let input = instance(6, 6);
        let ra = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, 4, 7);
        for b in &input.buckets {
            let (p, s) = ra.copies_of_id(b.id).expect("known bucket");
            assert_eq!(p, ra.primary().disk_of_id(b.id));
            assert_eq!(s, ra.secondary_of_id(b.id));
            assert_ne!(p, s);
            assert_eq!(ra.other_copy_of_id(b.id, p), Some(s));
            assert_eq!(ra.other_copy_of_id(b.id, s), Some(p));
            // A disk holding neither copy has no "other" copy.
            let neither = (0..4).find(|&d| d != p && d != s).expect("4 disks");
            assert_eq!(ra.other_copy_of_id(b.id, neither), None);
        }
        // Unknown ids are None, not a panic.
        let unknown = input.max_id_bound() as u32 + 10;
        assert_eq!(ra.try_secondary_of_id(unknown), None);
        assert_eq!(ra.copies_of_id(unknown), None);
        assert_eq!(ra.other_copy_of_id(unknown, 0), None);
    }

    #[test]
    fn total_copies_stay_balanced() {
        for m in [2, 3, 4, 5, 8] {
            let input = instance(8, 8);
            let ra =
                DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, m, 7);
            assert!(
                ra.is_perfectly_balanced(),
                "m={m} counts={:?}",
                ra.total_counts()
            );
            let total: usize = ra.total_counts().iter().sum();
            assert_eq!(total, 2 * input.n_buckets());
        }
    }

    #[test]
    fn balanced_primary_uses_plain_chain() {
        // A perfectly even round-robin primary needs no balance correction:
        // every secondary is the plain chained disk `primary + 1 mod M`.
        let input = instance(4, 4);
        let n = input.n_buckets();
        let primary = Assignment::new(&input, 4, (0..n).map(|i| (i % 4) as u32).collect());
        let ra = ReplicatedAssignment::chained(&input, primary);
        for pos in 0..n {
            assert_eq!(ra.secondary_at(pos), (ra.primary().disk_at(pos) + 1) % 4);
        }
    }

    #[test]
    fn id_lookup_matches_positions() {
        let input = instance(5, 5);
        let ra = DeclusterMethod::Minimax(EdgeWeight::Proximity).assign_replicated(&input, 4, 3);
        for (pos, b) in input.buckets.iter().enumerate() {
            assert_eq!(ra.secondary_of_id(b.id), ra.secondary_at(pos));
            assert_eq!(ra.primary().disk_of_id(b.id), ra.primary().disk_at(pos));
        }
        assert!(ra.data_balance_degree() >= 1.0 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two disks")]
    fn single_disk_rejected() {
        let input = instance(2, 2);
        let primary = Assignment::new(&input, 1, vec![0; 4]);
        let _ = ReplicatedAssignment::chained(&input, primary);
    }
}
