//! The declustering problem instance.

use pargrid_geom::Rect;
use pargrid_gridfile::{CartesianProductFile, CellRegion, GridFile};

/// One bucket of the instance.
#[derive(Clone, Debug)]
pub struct BucketInfo {
    /// The grid file's bucket id (used to join assignments back to queries).
    pub id: u32,
    /// The box of grid cells the bucket covers.
    pub region: CellRegion,
    /// The spatial box the bucket covers.
    pub rect: Rect,
    /// Records stored in the bucket.
    pub n_records: usize,
}

/// A declustering problem: the grid geometry plus every bucket.
#[derive(Clone, Debug)]
pub struct DeclusterInput {
    /// Cells along each dimension of the grid.
    pub cells_per_dim: Vec<u32>,
    /// The spatial domain (needed by the proximity index).
    pub domain: Rect,
    /// The buckets to distribute.
    pub buckets: Vec<BucketInfo>,
}

impl DeclusterInput {
    /// Builds the instance for a grid file.
    pub fn from_grid_file(gf: &GridFile) -> Self {
        let buckets = gf
            .live_buckets()
            .map(|(id, region, n_records)| BucketInfo {
                id,
                region: *region,
                rect: gf.region_rect(region),
                n_records,
            })
            .collect();
        DeclusterInput {
            cells_per_dim: gf.cells_per_dim(),
            domain: gf.config().domain,
            buckets,
        }
    }

    /// Builds the instance for a Cartesian product file: one single-cell
    /// bucket per grid cell, ids in row-major order, unit-cube geometry.
    pub fn from_cartesian(cpf: &CartesianProductFile) -> Self {
        let d = cpf.dim();
        let sides = cpf.sides();
        let mut buckets = Vec::with_capacity(cpf.n_cells() as usize);
        let lo = vec![0u32; d];
        let full = CellRegion::new(&lo, &sides.iter().map(|&s| s - 1).collect::<Vec<_>>());
        let mut id = 0u32;
        full.for_each_cell(|cell| {
            let mut rlo = [0.0; pargrid_geom::MAX_DIM];
            let mut rhi = [0.0; pargrid_geom::MAX_DIM];
            for k in 0..d {
                rlo[k] = cell[k] as f64;
                rhi[k] = cell[k] as f64 + 1.0;
            }
            buckets.push(BucketInfo {
                id,
                region: CellRegion::single(cell),
                rect: Rect::new(
                    pargrid_geom::Point::new(&rlo[..d]),
                    pargrid_geom::Point::new(&rhi[..d]),
                ),
                n_records: 1,
            });
            id += 1;
        });
        let mut dlo = [0.0; pargrid_geom::MAX_DIM];
        let mut dhi = [0.0; pargrid_geom::MAX_DIM];
        for k in 0..d {
            dlo[k] = 0.0;
            dhi[k] = sides[k] as f64;
        }
        DeclusterInput {
            cells_per_dim: sides.to_vec(),
            domain: Rect::new(
                pargrid_geom::Point::new(&dlo[..d]),
                pargrid_geom::Point::new(&dhi[..d]),
            ),
            buckets,
        }
    }

    /// Dimensionality of the grid.
    pub fn dim(&self) -> usize {
        self.cells_per_dim.len()
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Largest bucket id plus one (size for id-indexed lookup tables).
    pub fn max_id_bound(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.id as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_geom::Point;
    use pargrid_gridfile::{GridConfig, Record};

    #[test]
    fn from_grid_file_covers_all_buckets() {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4);
        let gf = GridFile::bulk_load(
            cfg,
            (0..100)
                .map(|i| Record::new(i, Point::new2((i % 10) as f64 * 9.0, (i / 10) as f64 * 9.0))),
        );
        let input = DeclusterInput::from_grid_file(&gf);
        assert_eq!(input.n_buckets(), gf.n_buckets());
        assert_eq!(input.dim(), 2);
        let total_cells: u64 = input.buckets.iter().map(|b| b.region.cell_count()).sum();
        assert_eq!(total_cells, gf.stats().n_cells);
        // Every bucket rect sits inside the domain.
        for b in &input.buckets {
            assert!(input.domain.contains_rect(&b.rect));
        }
    }

    #[test]
    fn from_cartesian_is_one_bucket_per_cell() {
        let cpf = CartesianProductFile::new(&[4, 3]);
        let input = DeclusterInput::from_cartesian(&cpf);
        assert_eq!(input.n_buckets(), 12);
        assert!(input.buckets.iter().all(|b| b.region.is_single_cell()));
        // Ids are dense row-major.
        assert_eq!(input.max_id_bound(), 12);
    }
}
