//! Declustering algorithms for parallel grid files.
//!
//! This crate is the paper's primary contribution. Given a grid file whose
//! buckets must be distributed over `M` disks, it implements:
//!
//! * **Index-based schemes** extended from Cartesian product files
//!   ([`index_based`]): *disk modulo* (DM), *fieldwise XOR* (FX) and
//!   space-filling-curve allocation (HCAM with the Hilbert curve, plus
//!   Z-order/Gray/scan ablation variants) — each needing a
//!   **conflict-resolution heuristic** ([`conflict`]) because a merged
//!   bucket's cells may be assigned to different disks: *random selection*,
//!   *most frequent*, *data balance* and *area balance* (Algorithm 1).
//! * **Proximity-based schemes**: the paper's **`minimax` spanning-tree
//!   algorithm** (Algorithm 2, [`minimax`]), the *short spanning path* (SSP)
//!   baseline of Fang et al. ([`ssp`]), an MST-based baseline ([`mst`]) and a
//!   Kernighan–Lin max-cut ablation ([`kl`]).
//! * **Analytic models** ([`analysis`]): the closed forms of Theorem 1 (DM
//!   response time and strict-optimality condition for 2-D square queries)
//!   and the bounds of Theorem 2 (FX), cross-validated against brute-force
//!   enumeration in the test suite.
//!
//! The uniform entry point is [`DeclusterMethod::assign`], which consumes a
//! [`DeclusterInput`] (built from a [`pargrid_gridfile::GridFile`] or a
//! Cartesian product file) and yields an [`Assignment`] of buckets to disks.

//!
//! ```
//! use pargrid_core::{DeclusterInput, DeclusterMethod, EdgeWeight};
//! use pargrid_gridfile::CartesianProductFile;
//!
//! // Decluster an 8x8 Cartesian product file over 4 disks with minimax.
//! let file = CartesianProductFile::new(&[8, 8]);
//! let input = DeclusterInput::from_cartesian(&file);
//! let assignment = DeclusterMethod::Minimax(EdgeWeight::Proximity)
//!     .assign(&input, 4, 42);
//!
//! // Perfect balance is guaranteed: at most ceil(64/4) buckets per disk.
//! assert!(assignment.is_perfectly_balanced());
//! assert_eq!(assignment.bucket_counts(), vec![16, 16, 16, 16]);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod assignment;
pub mod conflict;
pub mod exhaustive;
pub mod incremental;
pub mod index_based;
pub mod input;
pub mod kl;
pub mod latin;
pub mod method;
pub mod minimax;
pub mod mst;
pub mod partial_match;
pub mod replicate;
pub mod ssp;
pub mod weights;

pub use assignment::Assignment;
pub use conflict::ConflictPolicy;
pub use incremental::{place_fresh_bucket, place_fresh_replica};
pub use index_based::IndexScheme;
pub use input::{BucketInfo, DeclusterInput};
pub use method::{DeclusterMethod, SchemeEntry, SCHEME_REGISTRY};
pub use replicate::ReplicatedAssignment;
pub use weights::EdgeWeight;
