//! Bucket-to-disk assignments.

use crate::input::DeclusterInput;

/// A complete assignment of every bucket of an instance to one of `M` disks.
///
/// Positions are aligned with `DeclusterInput::buckets`; an id-indexed table
/// supports O(1) lookup from grid-file bucket ids (the form queries use).
#[derive(Clone, Debug)]
pub struct Assignment {
    n_disks: usize,
    /// Disk per bucket position (aligned with the input's bucket order).
    disks: Vec<u32>,
    /// Bucket id -> disk, dense table (`u32::MAX` = no such bucket).
    by_id: Vec<u32>,
}

impl Assignment {
    /// Wraps a per-position disk vector produced by an algorithm.
    ///
    /// # Panics
    /// Panics if the vector length does not match the instance or any disk
    /// is out of range.
    pub fn new(input: &DeclusterInput, n_disks: usize, disks: Vec<u32>) -> Self {
        assert_eq!(disks.len(), input.n_buckets(), "assignment length mismatch");
        assert!(n_disks >= 1, "need at least one disk");
        assert!(
            disks.iter().all(|&d| (d as usize) < n_disks),
            "disk out of range"
        );
        let mut by_id = vec![u32::MAX; input.max_id_bound()];
        for (pos, b) in input.buckets.iter().enumerate() {
            assert_eq!(
                by_id[b.id as usize],
                u32::MAX,
                "duplicate bucket id {}",
                b.id
            );
            by_id[b.id as usize] = disks[pos];
        }
        Assignment {
            n_disks,
            disks,
            by_id,
        }
    }

    /// Number of disks.
    #[inline]
    pub fn n_disks(&self) -> usize {
        self.n_disks
    }

    /// Disk of the bucket at input position `pos`.
    #[inline]
    pub fn disk_at(&self, pos: usize) -> u32 {
        self.disks[pos]
    }

    /// Disk of the bucket with grid-file id `id`.
    ///
    /// # Panics
    /// Panics if no bucket with that id exists in the instance.
    #[inline]
    pub fn disk_of_id(&self, id: u32) -> u32 {
        let d = self.by_id[id as usize];
        assert_ne!(d, u32::MAX, "bucket id {id} not in assignment");
        d
    }

    /// Per-position disks.
    #[inline]
    pub fn disks(&self) -> &[u32] {
        &self.disks
    }

    /// Number of buckets on each disk.
    pub fn bucket_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_disks];
        for &d in &self.disks {
            counts[d as usize] += 1;
        }
        counts
    }

    /// The paper's *degree of data balance*: `B_max * M / B_sum`
    /// (1.0 = perfectly even; larger = more skewed).
    pub fn data_balance_degree(&self) -> f64 {
        let counts = self.bucket_counts();
        let max = *counts.iter().max().expect("at least one disk") as f64;
        let sum: usize = counts.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        max * self.n_disks as f64 / sum as f64
    }

    /// Whether no disk holds more than `ceil(N / M)` buckets — the balance
    /// guarantee minimax provides by construction.
    pub fn is_perfectly_balanced(&self) -> bool {
        let n = self.disks.len();
        let cap = n.div_ceil(self.n_disks);
        self.bucket_counts().iter().all(|&c| c <= cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DeclusterInput;
    use pargrid_gridfile::CartesianProductFile;

    fn instance_2x2() -> DeclusterInput {
        DeclusterInput::from_cartesian(&CartesianProductFile::new(&[2, 2]))
    }

    #[test]
    fn roundtrip_lookup() {
        let input = instance_2x2();
        let a = Assignment::new(&input, 2, vec![0, 1, 1, 0]);
        assert_eq!(a.n_disks(), 2);
        assert_eq!(a.disk_at(1), 1);
        assert_eq!(a.disk_of_id(input.buckets[1].id), 1);
        assert_eq!(a.bucket_counts(), vec![2, 2]);
        assert!((a.data_balance_degree() - 1.0).abs() < 1e-12);
        assert!(a.is_perfectly_balanced());
    }

    #[test]
    fn skewed_balance_degree() {
        let input = instance_2x2();
        let a = Assignment::new(&input, 2, vec![0, 0, 0, 1]);
        assert_eq!(a.data_balance_degree(), 1.5);
        assert!(!a.is_perfectly_balanced());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_rejected() {
        let input = instance_2x2();
        let _ = Assignment::new(&input, 2, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn disk_out_of_range_rejected() {
        let input = instance_2x2();
        let _ = Assignment::new(&input, 2, vec![0, 1, 2, 0]);
    }
}
