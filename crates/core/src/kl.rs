//! Kernighan–Lin max-cut declustering (ablation baseline).
//!
//! The paper rejects Kernighan–Lin for declustering because its pass count
//! is unbounded and each pass costs many disk accesses; we implement a
//! bounded variant anyway so that claim is measurable: recursive balanced
//! bisection, each bisection refined by KL swap passes that **maximize** the
//! similarity cut (similar buckets pushed to different sides). Pass count is
//! capped, and swap candidates are restricted to the highest-gain vertices
//! per side, keeping a pass at `O(N^2)` similarity evaluations.

use crate::assignment::Assignment;
use crate::input::DeclusterInput;
use crate::weights::EdgeWeight;

/// Maximum KL refinement passes per bisection.
const MAX_PASSES: usize = 4;
/// Swap candidates examined per side per step.
const CAND: usize = 8;

/// Runs recursive Kernighan–Lin max-cut declustering.
pub fn kl_assign(input: &DeclusterInput, m: usize, weight: EdgeWeight, _seed: u64) -> Assignment {
    assert!(m >= 1, "need at least one disk");
    let n = input.n_buckets();
    let mut disks = vec![0u32; n];
    if n > 0 && m > 1 {
        let vertices: Vec<usize> = (0..n).collect();
        partition_recursive(input, weight, &vertices, 0, m, &mut disks);
    }
    Assignment::new(input, m, disks)
}

/// Splits `vertices` into `m_parts` disks starting at disk id `base`.
fn partition_recursive(
    input: &DeclusterInput,
    weight: EdgeWeight,
    vertices: &[usize],
    base: usize,
    m_parts: usize,
    disks: &mut [u32],
) {
    if m_parts == 1 || vertices.len() <= 1 {
        for &v in vertices {
            disks[v] = base as u32;
        }
        return;
    }
    let m_a = m_parts / 2;
    let m_b = m_parts - m_a;
    // Proportional target size, so uneven m still balances bucket counts.
    let target_a = vertices.len() * m_a / m_parts;
    let (a, b) = kl_bisect(input, weight, vertices, target_a.max(1));
    partition_recursive(input, weight, &a, base, m_a, disks);
    partition_recursive(input, weight, &b, base + m_a, m_b, disks);
}

/// Balanced bisection refined by bounded KL passes maximizing the cut.
fn kl_bisect(
    input: &DeclusterInput,
    weight: EdgeWeight,
    vertices: &[usize],
    target_a: usize,
) -> (Vec<usize>, Vec<usize>) {
    let n = vertices.len();
    // Initial split: alternate, which already separates neighbors in the
    // common case where input order correlates with space.
    let mut side: Vec<bool> = vec![false; n]; // false = A, true = B
    let mut n_a = 0;
    for (i, s) in side.iter_mut().enumerate() {
        if n_a < target_a && (i % 2 == 0 || n - i <= target_a - n_a) {
            n_a += 1;
        } else {
            *s = true;
        }
    }

    // D values for max-cut: D_v = (similarity to own side) - (to other side).
    // A positive D_v means moving v across increases the cut.
    let sim = |x: usize, y: usize| weight.similarity(input, vertices[x], vertices[y]);
    let mut d = vec![0.0f64; n];
    let compute_d = |side: &[bool], d: &mut [f64]| {
        for v in 0..n {
            let mut own = 0.0;
            let mut other = 0.0;
            for u in 0..n {
                if u == v {
                    continue;
                }
                let s = sim(v, u);
                if side[u] == side[v] {
                    own += s;
                } else {
                    other += s;
                }
            }
            d[v] = own - other;
        }
    };

    for _pass in 0..MAX_PASSES {
        compute_d(&side, &mut d);
        let mut locked = vec![false; n];
        let mut swaps: Vec<(usize, usize, f64)> = Vec::new();
        let mut cumulative = Vec::new();
        let mut running = 0.0;
        loop {
            // Top unlocked candidates by D on each side.
            let mut top_a: Vec<usize> = (0..n).filter(|&v| !locked[v] && !side[v]).collect();
            let mut top_b: Vec<usize> = (0..n).filter(|&v| !locked[v] && side[v]).collect();
            if top_a.is_empty() || top_b.is_empty() {
                break;
            }
            top_a.sort_by(|&x, &y| d[y].partial_cmp(&d[x]).expect("D is never NaN"));
            top_b.sort_by(|&x, &y| d[y].partial_cmp(&d[x]).expect("D is never NaN"));
            top_a.truncate(CAND);
            top_b.truncate(CAND);
            let mut best: Option<(usize, usize, f64)> = None;
            for &a in &top_a {
                for &b in &top_b {
                    let gain = d[a] + d[b] - 2.0 * sim(a, b);
                    if best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((a, b, gain));
                    }
                }
            }
            let (a, b, gain) = best.expect("both sides non-empty");
            locked[a] = true;
            locked[b] = true;
            // Tentatively swap and update D values of unlocked vertices.
            side[a] = true;
            side[b] = false;
            for v in 0..n {
                if locked[v] {
                    continue;
                }
                // After swapping a<->b, edges to a and b change side.
                let sa = sim(v, a);
                let sb = sim(v, b);
                // v on A (side false): a was own, now other; b was other, now own.
                // The D delta is symmetric in the usual KL form:
                if !side[v] {
                    d[v] += 2.0 * sb - 2.0 * sa;
                } else {
                    d[v] += 2.0 * sa - 2.0 * sb;
                }
            }
            running += gain;
            swaps.push((a, b, gain));
            cumulative.push(running);
        }
        // Keep the prefix of swaps with the best cumulative gain.
        let (best_prefix, best_gain) = cumulative
            .iter()
            .enumerate()
            .map(|(i, &g)| (i + 1, g))
            .max_by(|(_, x), (_, y)| x.partial_cmp(y).expect("gains are never NaN"))
            .unwrap_or((0, 0.0));
        // Undo swaps beyond the best prefix (or all if no positive gain).
        let keep = if best_gain > 1e-12 { best_prefix } else { 0 };
        for &(a, b, _) in swaps.iter().skip(keep) {
            side[a] = false;
            side[b] = true;
        }
        if keep == 0 {
            break;
        }
    }

    let mut a = Vec::with_capacity(target_a);
    let mut b = Vec::with_capacity(n - target_a);
    for (i, &s) in side.iter().enumerate() {
        if s {
            b.push(vertices[i]);
        } else {
            a.push(vertices[i]);
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_gridfile::CartesianProductFile;

    fn grid_instance(w: u32, h: u32) -> DeclusterInput {
        DeclusterInput::from_cartesian(&CartesianProductFile::new(&[w, h]))
    }

    #[test]
    fn valid_balanced_partitions() {
        for m in [2usize, 3, 4, 8] {
            let input = grid_instance(8, 8);
            let a = kl_assign(&input, m, EdgeWeight::Proximity, 0);
            let counts = a.bucket_counts();
            let max = *counts.iter().max().expect("non-empty");
            let min = *counts.iter().min().expect("non-empty");
            assert!(max - min <= 2, "m={m}: imbalanced counts {counts:?}");
        }
    }

    #[test]
    fn cut_exceeds_alternating_baseline() {
        // KL refinement should separate similar (adjacent) buckets at least
        // as well as its own starting point.
        let input = grid_instance(8, 8);
        let a = kl_assign(&input, 2, EdgeWeight::Proximity, 0);
        let cut = |assign: &dyn Fn(usize) -> u32| {
            let mut c = 0.0;
            for x in 0..64 {
                for y in (x + 1)..64 {
                    if assign(x) != assign(y) {
                        c += EdgeWeight::Proximity.similarity(&input, x, y);
                    }
                }
            }
            c
        };
        let kl_cut = cut(&|v| a.disk_at(v));
        let alt_cut = cut(&|v| (v % 2) as u32);
        assert!(
            kl_cut >= alt_cut - 1e-9,
            "KL {kl_cut} < alternating {alt_cut}"
        );
    }

    #[test]
    fn single_disk() {
        let input = grid_instance(4, 4);
        let a = kl_assign(&input, 1, EdgeWeight::Proximity, 0);
        assert!(a.disks().iter().all(|&d| d == 0));
    }
}
