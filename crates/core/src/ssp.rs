//! Short Spanning Path (SSP) declustering — Fang, Lee & Chang (VLDB '86).
//!
//! Build a *short spanning path* through the bucket graph (a path that tends
//! to connect each bucket to a near neighbor), then deal the buckets to the
//! M disks round-robin along the path. Consecutive path elements are the
//! most similar pairs, and dealing guarantees they land on different disks
//! (for M >= 2) while keeping partitions perfectly balanced.
//!
//! The path is constructed with the standard greedy nearest-neighbor
//! heuristic: start from a random bucket and repeatedly extend the path with
//! the unvisited bucket most similar to the current endpoint — `O(N^2)`
//! similarity evaluations, the same complexity class the paper quotes.

use crate::assignment::Assignment;
use crate::input::DeclusterInput;
use crate::weights::EdgeWeight;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs SSP declustering.
pub fn ssp_assign(input: &DeclusterInput, m: usize, weight: EdgeWeight, seed: u64) -> Assignment {
    assert!(m >= 1, "need at least one disk");
    let n = input.n_buckets();
    let mut disks = vec![u32::MAX; n];
    if n == 0 {
        return Assignment::new(input, m, disks);
    }
    let path = short_spanning_path(input, weight, seed);
    for (i, &v) in path.iter().enumerate() {
        disks[v] = (i % m) as u32;
    }
    Assignment::new(input, m, disks)
}

/// Greedy nearest-neighbor path over the bucket graph.
pub(crate) fn short_spanning_path(
    input: &DeclusterInput,
    weight: EdgeWeight,
    seed: u64,
) -> Vec<usize> {
    let n = input.n_buckets();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut path = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();
    let start = rng.random_range(0..n);
    path.push(remaining.swap_remove(start));
    while !remaining.is_empty() {
        let cur = *path.last().expect("path is non-empty");
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &x)| (i, weight.similarity(input, cur, x)))
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("similarities are never NaN"))
            .expect("remaining is non-empty");
        path.push(remaining.swap_remove(best_idx));
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_gridfile::CartesianProductFile;

    fn grid_instance(w: u32, h: u32) -> DeclusterInput {
        DeclusterInput::from_cartesian(&CartesianProductFile::new(&[w, h]))
    }

    #[test]
    fn path_visits_every_bucket_once() {
        let input = grid_instance(7, 5);
        let path = short_spanning_path(&input, EdgeWeight::Proximity, 3);
        assert_eq!(path.len(), 35);
        let mut sorted = path.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 35);
    }

    #[test]
    fn path_is_locally_greedy() {
        // Each step moves to the most similar unvisited bucket, so the
        // average step similarity must far exceed the average random-pair
        // similarity.
        let input = grid_instance(8, 8);
        let path = short_spanning_path(&input, EdgeWeight::Proximity, 1);
        let step_avg: f64 = path
            .windows(2)
            .map(|w| EdgeWeight::Proximity.similarity(&input, w[0], w[1]))
            .sum::<f64>()
            / (path.len() - 1) as f64;
        let mut rand_avg = 0.0;
        let mut count = 0;
        for a in (0..64).step_by(7) {
            for b in (1..64).step_by(11) {
                if a != b {
                    rand_avg += EdgeWeight::Proximity.similarity(&input, a, b);
                    count += 1;
                }
            }
        }
        rand_avg /= count as f64;
        assert!(step_avg > 1.5 * rand_avg, "{step_avg} vs {rand_avg}");
    }

    #[test]
    fn balanced_partitions() {
        for m in [2usize, 3, 5, 8] {
            let input = grid_instance(9, 7);
            let a = ssp_assign(&input, m, EdgeWeight::Proximity, 11);
            assert!(a.is_perfectly_balanced(), "m={m}: {:?}", a.bucket_counts());
        }
    }

    #[test]
    fn consecutive_path_buckets_on_distinct_disks() {
        let input = grid_instance(6, 6);
        let path = short_spanning_path(&input, EdgeWeight::Proximity, 4);
        let a = ssp_assign(&input, 4, EdgeWeight::Proximity, 4);
        for w in path.windows(2) {
            assert_ne!(a.disk_at(w[0]), a.disk_at(w[1]));
        }
    }

    #[test]
    fn single_disk_degenerates() {
        let input = grid_instance(3, 3);
        let a = ssp_assign(&input, 1, EdgeWeight::Proximity, 0);
        assert!(a.disks().iter().all(|&d| d == 0));
    }
}
