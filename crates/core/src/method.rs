//! The uniform entry point over all declustering algorithms.

use crate::assignment::Assignment;
use crate::conflict::{index_based_assign, ConflictPolicy};
use crate::index_based::IndexScheme;
use crate::input::DeclusterInput;
use crate::kl::kl_assign;
use crate::minimax::minimax_assign;
use crate::mst::mst_assign;
use crate::ssp::ssp_assign;
use crate::weights::EdgeWeight;

/// Any of the declustering algorithms studied in the paper (plus ablations).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeclusterMethod {
    /// An index-based scheme with a conflict-resolution heuristic.
    Index(IndexScheme, ConflictPolicy),
    /// The paper's minimax spanning-tree algorithm (Algorithm 2).
    Minimax(EdgeWeight),
    /// Short spanning path (Fang et al.).
    Ssp(EdgeWeight),
    /// Maximum-similarity spanning tree coloring (Fang et al., generalized).
    Mst(EdgeWeight),
    /// Bounded Kernighan–Lin max-cut (ablation).
    KernighanLin(EdgeWeight),
}

impl DeclusterMethod {
    /// Runs the method on an instance for `m` disks.
    ///
    /// `seed` drives every random choice (index-based tie-breaks, minimax
    /// seeding, SSP/MST start vertices); identical seeds give identical
    /// assignments.
    pub fn assign(&self, input: &DeclusterInput, m: usize, seed: u64) -> Assignment {
        match *self {
            DeclusterMethod::Index(scheme, policy) => {
                index_based_assign(input, m, scheme, policy, seed)
            }
            DeclusterMethod::Minimax(w) => minimax_assign(input, m, w, seed),
            DeclusterMethod::Ssp(w) => ssp_assign(input, m, w, seed),
            DeclusterMethod::Mst(w) => mst_assign(input, m, w, seed),
            DeclusterMethod::KernighanLin(w) => kl_assign(input, m, w, seed),
        }
    }

    /// Runs the method and pairs it with a chained-declustered secondary
    /// placement (see [`crate::replicate::ReplicatedAssignment`]): every
    /// bucket gets a replica on a different disk, keeping the total data
    /// balance within `ceil(2N / M)` for balanced primaries.
    ///
    /// # Panics
    /// Panics if `m < 2` (a replica needs somewhere else to live).
    pub fn assign_replicated(
        &self,
        input: &DeclusterInput,
        m: usize,
        seed: u64,
    ) -> crate::replicate::ReplicatedAssignment {
        crate::replicate::ReplicatedAssignment::chained(input, self.assign(input, m, seed))
    }

    /// The label the paper's tables use (`DM/D`, `HCAM/D`, `MiniMax`, ...).
    pub fn label(&self) -> String {
        match *self {
            DeclusterMethod::Index(s, p) => format!("{}/{}", s.label(), p.label()),
            DeclusterMethod::Minimax(EdgeWeight::Proximity) => "MiniMax".to_string(),
            DeclusterMethod::Minimax(w) => format!("MiniMax[{}]", w.label()),
            DeclusterMethod::Ssp(EdgeWeight::Proximity) => "SSP".to_string(),
            DeclusterMethod::Ssp(w) => format!("SSP[{}]", w.label()),
            DeclusterMethod::Mst(EdgeWeight::Proximity) => "MST".to_string(),
            DeclusterMethod::Mst(w) => format!("MST[{}]", w.label()),
            DeclusterMethod::KernighanLin(EdgeWeight::Proximity) => "KL".to_string(),
            DeclusterMethod::KernighanLin(w) => format!("KL[{}]", w.label()),
        }
    }

    /// The five algorithms compared in the paper's Figure 6 and
    /// Tables 2–3: DM/D, FX/D, HCAM/D, SSP, MiniMax.
    pub fn paper_five() -> Vec<DeclusterMethod> {
        vec![
            DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
            DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::DataBalance),
            DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
            DeclusterMethod::Ssp(EdgeWeight::Proximity),
            DeclusterMethod::Minimax(EdgeWeight::Proximity),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_gridfile::CartesianProductFile;

    #[test]
    fn labels_match_paper_convention() {
        let five = DeclusterMethod::paper_five();
        let labels: Vec<String> = five.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["DM/D", "FX/D", "HCAM/D", "SSP", "MiniMax"]);
    }

    #[test]
    fn every_method_runs_on_a_small_instance() {
        let input = DeclusterInput::from_cartesian(&CartesianProductFile::new(&[6, 6]));
        let methods = [
            DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
            DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::Random),
            DeclusterMethod::Minimax(EdgeWeight::Proximity),
            DeclusterMethod::Ssp(EdgeWeight::Proximity),
            DeclusterMethod::Mst(EdgeWeight::Proximity),
            DeclusterMethod::KernighanLin(EdgeWeight::Proximity),
        ];
        for method in methods {
            let a = method.assign(&input, 4, 42);
            assert_eq!(a.disks().len(), 36, "{}", method.label());
            assert!(a.disks().iter().all(|&d| d < 4));
        }
    }
}
