//! The uniform entry point over all declustering algorithms.

use crate::assignment::Assignment;
use crate::conflict::{index_based_assign, ConflictPolicy};
use crate::index_based::IndexScheme;
use crate::input::DeclusterInput;
use crate::kl::kl_assign;
use crate::minimax::minimax_assign;
use crate::mst::mst_assign;
use crate::ssp::ssp_assign;
use crate::weights::EdgeWeight;

/// Any of the declustering algorithms studied in the paper (plus ablations).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeclusterMethod {
    /// An index-based scheme with a conflict-resolution heuristic.
    Index(IndexScheme, ConflictPolicy),
    /// The paper's minimax spanning-tree algorithm (Algorithm 2).
    Minimax(EdgeWeight),
    /// Short spanning path (Fang et al.).
    Ssp(EdgeWeight),
    /// Maximum-similarity spanning tree coloring (Fang et al., generalized).
    Mst(EdgeWeight),
    /// Bounded Kernighan–Lin max-cut (ablation).
    KernighanLin(EdgeWeight),
}

impl DeclusterMethod {
    /// Runs the method on an instance for `m` disks.
    ///
    /// `seed` drives every random choice (index-based tie-breaks, minimax
    /// seeding, SSP/MST start vertices); identical seeds give identical
    /// assignments.
    pub fn assign(&self, input: &DeclusterInput, m: usize, seed: u64) -> Assignment {
        match *self {
            DeclusterMethod::Index(scheme, policy) => {
                index_based_assign(input, m, scheme, policy, seed)
            }
            DeclusterMethod::Minimax(w) => minimax_assign(input, m, w, seed),
            DeclusterMethod::Ssp(w) => ssp_assign(input, m, w, seed),
            DeclusterMethod::Mst(w) => mst_assign(input, m, w, seed),
            DeclusterMethod::KernighanLin(w) => kl_assign(input, m, w, seed),
        }
    }

    /// Runs the method and pairs it with a chained-declustered secondary
    /// placement (see [`crate::replicate::ReplicatedAssignment`]): every
    /// bucket gets a replica on a different disk, keeping the total data
    /// balance within `ceil(2N / M)` for balanced primaries.
    ///
    /// # Panics
    /// Panics if `m < 2` (a replica needs somewhere else to live).
    pub fn assign_replicated(
        &self,
        input: &DeclusterInput,
        m: usize,
        seed: u64,
    ) -> crate::replicate::ReplicatedAssignment {
        crate::replicate::ReplicatedAssignment::chained(input, self.assign(input, m, seed))
    }

    /// The label the paper's tables use (`DM/D`, `HCAM/D`, `MiniMax`, ...).
    pub fn label(&self) -> String {
        match *self {
            DeclusterMethod::Index(s, p) => format!("{}/{}", s.label(), p.label()),
            DeclusterMethod::Minimax(EdgeWeight::Proximity) => "MiniMax".to_string(),
            DeclusterMethod::Minimax(w) => format!("MiniMax[{}]", w.label()),
            DeclusterMethod::Ssp(EdgeWeight::Proximity) => "SSP".to_string(),
            DeclusterMethod::Ssp(w) => format!("SSP[{}]", w.label()),
            DeclusterMethod::Mst(EdgeWeight::Proximity) => "MST".to_string(),
            DeclusterMethod::Mst(w) => format!("MST[{}]", w.label()),
            DeclusterMethod::KernighanLin(EdgeWeight::Proximity) => "KL".to_string(),
            DeclusterMethod::KernighanLin(w) => format!("KL[{}]", w.label()),
        }
    }

    /// The five algorithms compared in the paper's Figure 6 and
    /// Tables 2–3: DM/D, FX/D, HCAM/D, SSP, MiniMax.
    pub fn paper_five() -> Vec<DeclusterMethod> {
        vec![
            DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
            DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::DataBalance),
            DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
            DeclusterMethod::Ssp(EdgeWeight::Proximity),
            DeclusterMethod::Minimax(EdgeWeight::Proximity),
        ]
    }

    /// Looks a method up by its registry name (the CLI spelling, e.g.
    /// `"hcam"` or `"onion"`).
    pub fn parse(name: &str) -> Option<DeclusterMethod> {
        SCHEME_REGISTRY
            .iter()
            .find(|e| e.name == name)
            .map(|e| (e.build)())
    }

    /// Every registry name, in registry order — the CLI's `--method` menu.
    pub fn names() -> Vec<&'static str> {
        SCHEME_REGISTRY.iter().map(|e| e.name).collect()
    }

    /// The frontier comparison set: the paper's five plus the onion-curve
    /// and latin-hypercube newcomers (HCAM/D is the Hilbert-curve entry).
    pub fn frontier_set() -> Vec<DeclusterMethod> {
        let mut set = DeclusterMethod::paper_five();
        set.push(DeclusterMethod::Index(
            IndexScheme::Onion,
            ConflictPolicy::DataBalance,
        ));
        set.push(DeclusterMethod::Index(
            IndexScheme::LatinHypercube,
            ConflictPolicy::DataBalance,
        ));
        set
    }
}

/// One row of the scheme registry: the canonical parse name, a one-line
/// summary for help text, and a constructor for the default configuration
/// (index schemes pair with the data-balance conflict policy, proximity
/// schemes with the paper's proximity weight).
pub struct SchemeEntry {
    /// The CLI / config spelling (`"dm"`, `"hcam"`, `"onion"`, ...).
    pub name: &'static str,
    /// One-line human description, shown in `--help`-style listings.
    pub summary: &'static str,
    /// Builds the method in its default configuration.
    pub build: fn() -> DeclusterMethod,
}

/// The single source of truth for scheme naming: the CLI, the `repro`
/// harness, and experiment headers all parse and enumerate methods through
/// this table, so adding a scheme means adding one row here.
pub const SCHEME_REGISTRY: &[SchemeEntry] = &[
    SchemeEntry {
        name: "dm",
        summary: "disk modulo (Du & Sobolewski), data-balance conflicts",
        build: || DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
    },
    SchemeEntry {
        name: "fx",
        summary: "fieldwise XOR (Kim & Pramanik), data-balance conflicts",
        build: || DeclusterMethod::Index(IndexScheme::FieldwiseXor, ConflictPolicy::DataBalance),
    },
    SchemeEntry {
        name: "gdm",
        summary: "generalized disk modulo with fixed odd coefficients",
        build: || {
            DeclusterMethod::Index(
                IndexScheme::GeneralizedDiskModulo,
                ConflictPolicy::DataBalance,
            )
        },
    },
    SchemeEntry {
        name: "hcam",
        summary: "Hilbert-curve allocation (Faloutsos & Bhagwat)",
        build: || DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::DataBalance),
    },
    SchemeEntry {
        name: "zcam",
        summary: "Z-order-curve allocation (ablation)",
        build: || DeclusterMethod::Index(IndexScheme::ZOrder, ConflictPolicy::DataBalance),
    },
    SchemeEntry {
        name: "gcam",
        summary: "Gray-code-curve allocation (ablation)",
        build: || DeclusterMethod::Index(IndexScheme::GrayCode, ConflictPolicy::DataBalance),
    },
    SchemeEntry {
        name: "scan",
        summary: "row-major scan allocation (ablation)",
        build: || DeclusterMethod::Index(IndexScheme::Scan, ConflictPolicy::DataBalance),
    },
    SchemeEntry {
        name: "onion",
        summary: "onion-curve allocation (Xu, Nguyen & Tirthapura)",
        build: || DeclusterMethod::Index(IndexScheme::Onion, ConflictPolicy::DataBalance),
    },
    SchemeEntry {
        name: "latin",
        summary: "latin-hypercube low-discrepancy allocation (Doerr et al.)",
        build: || DeclusterMethod::Index(IndexScheme::LatinHypercube, ConflictPolicy::DataBalance),
    },
    SchemeEntry {
        name: "ssp",
        summary: "short spanning path (Fang et al.)",
        build: || DeclusterMethod::Ssp(EdgeWeight::Proximity),
    },
    SchemeEntry {
        name: "mst",
        summary: "maximum-similarity spanning tree coloring",
        build: || DeclusterMethod::Mst(EdgeWeight::Proximity),
    },
    SchemeEntry {
        name: "kl",
        summary: "bounded Kernighan-Lin max-cut (ablation)",
        build: || DeclusterMethod::KernighanLin(EdgeWeight::Proximity),
    },
    SchemeEntry {
        name: "minimax",
        summary: "minimax spanning tree (the paper's Algorithm 2)",
        build: || DeclusterMethod::Minimax(EdgeWeight::Proximity),
    },
    SchemeEntry {
        name: "minimax-euclid",
        summary: "minimax with Euclidean-center edge weights (ablation)",
        build: || DeclusterMethod::Minimax(EdgeWeight::EuclideanCenter),
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_gridfile::CartesianProductFile;

    #[test]
    fn labels_match_paper_convention() {
        let five = DeclusterMethod::paper_five();
        let labels: Vec<String> = five.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["DM/D", "FX/D", "HCAM/D", "SSP", "MiniMax"]);
    }

    #[test]
    fn registry_names_are_unique_and_parse_back() {
        let names = DeclusterMethod::names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry names");
        for entry in SCHEME_REGISTRY {
            let parsed = DeclusterMethod::parse(entry.name).expect("every name parses");
            assert_eq!(parsed, (entry.build)());
            assert!(!entry.summary.is_empty());
        }
        assert!(DeclusterMethod::parse("no-such-scheme").is_none());
    }

    #[test]
    fn frontier_set_extends_paper_five_with_new_schemes() {
        let labels: Vec<String> = DeclusterMethod::frontier_set()
            .iter()
            .map(|m| m.label())
            .collect();
        assert_eq!(
            labels,
            vec!["DM/D", "FX/D", "HCAM/D", "SSP", "MiniMax", "ONION/D", "LATIN/D"]
        );
    }

    #[test]
    fn every_method_runs_on_a_small_instance() {
        let input = DeclusterInput::from_cartesian(&CartesianProductFile::new(&[6, 6]));
        let methods = [
            DeclusterMethod::Index(IndexScheme::DiskModulo, ConflictPolicy::DataBalance),
            DeclusterMethod::Index(IndexScheme::Hilbert, ConflictPolicy::Random),
            DeclusterMethod::Minimax(EdgeWeight::Proximity),
            DeclusterMethod::Ssp(EdgeWeight::Proximity),
            DeclusterMethod::Mst(EdgeWeight::Proximity),
            DeclusterMethod::KernighanLin(EdgeWeight::Proximity),
        ];
        for method in methods {
            let a = method.assign(&input, 4, 42);
            assert_eq!(a.disks().len(), 36, "{}", method.label());
            assert!(a.disks().iter().all(|&d| d < 4));
        }
    }
}
