//! CRC-32 (IEEE 802.3 polynomial) over byte slices.
//!
//! Shared by the persisted grid-file image (footer checksum, see
//! [`crate::persist`]) and the parallel engine's block stores (per-bucket
//! verify-on-read). Table-driven; the table is built at compile time so the
//! per-call cost is one lookup per byte.

/// Reflected CRC-32 polynomial (IEEE 802.3 / zlib / PNG).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE polynomial, standard init/final XOR — matches
/// zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 4096];
        let base = crc32(&data);
        for pos in [0usize, 1, 100, 4095] {
            for bit in 0..8 {
                let mut copy = data.clone();
                copy[pos] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at {pos}:{bit} undetected");
            }
        }
    }
}
