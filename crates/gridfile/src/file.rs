//! The grid file proper: adaptive multikey storage with bucket splitting.
//!
//! Follows Nievergelt & Hinterberger (TODS '84). The two-level organization:
//! linear scales (one per dimension) partition the domain into a grid of
//! *cells*; the grid directory maps every cell to a *bucket*; each bucket
//! stores at most `bucket_capacity` records and covers a box-shaped region of
//! one or more cells. A bucket covering several cells is what the paper calls
//! "merged subspaces" — the reason index-based declustering needs conflict
//! resolution.
//!
//! Split policy on bucket overflow:
//! 1. If the bucket's region spans more than one cell, split the region along
//!    the widest axis at its middle scale boundary (no directory growth).
//! 2. Otherwise refine a linear scale: cut the cell at its spatial midpoint
//!    (falling back to a record-median cut when the midpoint does not
//!    separate the records), grow the directory along that axis, and then
//!    split as in (1).

use crate::directory::{BucketId, Directory};
use crate::record::Record;
use crate::region::CellRegion;
use crate::scale::LinearScale;
use pargrid_geom::{Point, Rect, MAX_DIM};

/// Configuration of a grid file.
#[derive(Clone, Debug)]
pub struct GridConfig {
    /// The spatial domain covered by the file. Records outside the domain
    /// are clamped into the boundary cells.
    pub domain: Rect,
    /// Disk page (bucket) size in bytes. The paper uses 4 KB for the
    /// simulation study and 8 KB on the SP-2.
    pub page_bytes: usize,
    /// Size of the opaque record payload in bytes (coordinates and id are
    /// accounted separately); determines bucket capacity.
    pub payload_bytes: usize,
}

impl GridConfig {
    /// Creates a configuration with the default 4 KB page.
    pub fn new(domain: Rect, payload_bytes: usize) -> Self {
        GridConfig {
            domain,
            page_bytes: 4096,
            payload_bytes,
        }
    }

    /// Sets the page size in bytes.
    pub fn with_page_bytes(mut self, page_bytes: usize) -> Self {
        self.page_bytes = page_bytes;
        self
    }

    /// Chooses the payload size so that a bucket holds exactly `capacity`
    /// records with the default 4 KB page.
    ///
    /// # Panics
    /// Panics if the capacity does not fit a 4 KB page with the given
    /// dimensionality.
    pub fn with_capacity(domain: Rect, capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        let dim = domain.dim();
        let base = Record::encoded_size(dim, 0);
        let budget = 4096 / capacity;
        assert!(
            budget >= base,
            "capacity {capacity} does not fit a 4 KB page for dim {dim}"
        );
        GridConfig {
            domain,
            page_bytes: 4096,
            payload_bytes: budget - base,
        }
    }

    /// Encoded size of one record in bytes.
    #[inline]
    pub fn record_bytes(&self) -> usize {
        Record::encoded_size(self.domain.dim(), self.payload_bytes)
    }

    /// Maximum records per bucket.
    #[inline]
    pub fn bucket_capacity(&self) -> usize {
        let c = self.page_bytes / self.record_bytes();
        assert!(c >= 1, "page too small for even one record");
        c
    }
}

/// A data bucket: a box region of cells plus the records stored in it.
#[derive(Clone, Debug)]
pub(crate) struct Bucket {
    pub(crate) region: CellRegion,
    pub(crate) records: Vec<Record>,
    pub(crate) alive: bool,
}

/// Summary statistics of a grid file, matching the numbers the paper quotes
/// for each dataset (cells, buckets, merged buckets).
#[derive(Clone, Debug, PartialEq)]
pub struct GridFileStats {
    /// Records stored.
    pub n_records: u64,
    /// Grid cells (product of scale cell counts) — the paper's "subspaces".
    pub n_cells: u64,
    /// Live buckets.
    pub n_buckets: usize,
    /// Buckets covering more than one cell ("merged subspaces").
    pub n_merged_buckets: usize,
    /// Cells along each dimension.
    pub cells_per_dim: Vec<u32>,
    /// Mean bucket occupancy relative to capacity.
    pub avg_occupancy: f64,
    /// Number of buckets left over capacity because their records could not
    /// be separated (duplicate keys).
    pub oversize_buckets: usize,
}

/// Which buckets a single mutation touched — the delta a parallel engine
/// (or any external materialization of the buckets) must apply to its own
/// storage: rewrite changed buckets, allocate created ones, drop freed ones.
///
/// Scale refinements that only reshape bucket *regions* without moving any
/// record between buckets are deliberately not reported: the materialized
/// record contents of those buckets are unchanged.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutationEffect {
    /// Pre-existing live buckets whose record set changed.
    pub rewritten: Vec<BucketId>,
    /// Buckets that did not exist before the mutation (split targets).
    /// Ids may reuse previously freed ids.
    pub created: Vec<BucketId>,
    /// Buckets merged away by the mutation; their storage can be dropped.
    pub freed: Vec<BucketId>,
}

impl MutationEffect {
    /// Sorts, dedups, and removes freshly created buckets from the
    /// rewritten list (a created bucket's contents are written once, as a
    /// creation).
    fn normalize(&mut self) {
        self.created.sort_unstable();
        self.created.dedup();
        self.freed.sort_unstable();
        self.freed.dedup();
        self.rewritten.sort_unstable();
        self.rewritten.dedup();
        self.rewritten
            .retain(|b| !self.created.contains(b) && !self.freed.contains(b));
    }

    /// Whether the mutation touched no bucket at all (e.g. deleting a
    /// record that does not exist).
    pub fn is_empty(&self) -> bool {
        self.rewritten.is_empty() && self.created.is_empty() && self.freed.is_empty()
    }
}

/// The grid file.
#[derive(Clone, Debug)]
pub struct GridFile {
    pub(crate) config: GridConfig,
    pub(crate) capacity: usize,
    pub(crate) scales: Vec<LinearScale>,
    pub(crate) dir: Directory,
    pub(crate) buckets: Vec<Bucket>,
    pub(crate) free: Vec<BucketId>,
    pub(crate) n_records: u64,
}

impl GridFile {
    /// Creates an empty grid file.
    pub fn new(config: GridConfig) -> Self {
        let dim = config.domain.dim();
        let capacity = config.bucket_capacity();
        let scales = (0..dim)
            .map(|k| LinearScale::new(config.domain.lo().get(k), config.domain.hi().get(k)))
            .collect();
        GridFile {
            config,
            capacity,
            scales,
            dir: Directory::new(dim),
            buckets: vec![Bucket {
                region: CellRegion::single(&vec![0u32; dim]),
                records: Vec::new(),
                alive: true,
            }],
            free: Vec::new(),
            n_records: 0,
        }
    }

    /// Builds a grid file by inserting every record of an iterator.
    pub fn bulk_load<I: IntoIterator<Item = Record>>(config: GridConfig, records: I) -> Self {
        let mut gf = Self::new(config);
        for r in records {
            gf.insert(r);
        }
        gf
    }

    /// The configuration this file was created with.
    #[inline]
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Maximum records per bucket.
    #[inline]
    pub fn bucket_capacity(&self) -> usize {
        self.capacity
    }

    /// Dimensionality of the file.
    #[inline]
    pub fn dim(&self) -> usize {
        self.scales.len()
    }

    /// The per-dimension linear scales.
    #[inline]
    pub fn scales(&self) -> &[LinearScale] {
        &self.scales
    }

    /// The grid directory.
    #[inline]
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Number of records stored.
    #[inline]
    pub fn len(&self) -> u64 {
        self.n_records
    }

    /// Whether the file stores no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Number of cells along each dimension.
    pub fn cells_per_dim(&self) -> Vec<u32> {
        self.scales.iter().map(|s| s.n_cells() as u32).collect()
    }

    /// The grid cell containing a point (clamped into the domain).
    pub fn cell_of_point(&self, p: &Point, out: &mut [u32]) {
        debug_assert_eq!(p.dim(), self.dim());
        for (k, (slot, scale)) in out.iter_mut().zip(&self.scales).enumerate() {
            *slot = scale.cell_of(p.get(k)) as u32;
        }
    }

    /// The spatial box covered by a bucket's region.
    pub fn bucket_rect(&self, id: BucketId) -> Rect {
        let b = &self.buckets[id as usize];
        assert!(b.alive, "bucket {id} is not alive");
        self.region_rect(&b.region)
    }

    /// The spatial box covered by an arbitrary cell region.
    pub fn region_rect(&self, region: &CellRegion) -> Rect {
        let d = self.dim();
        let mut lo = [0.0; MAX_DIM];
        let mut hi = [0.0; MAX_DIM];
        for k in 0..d {
            lo[k] = self.scales[k].cell_bounds(region.lo()[k] as usize).0;
            hi[k] = self.scales[k].cell_bounds(region.hi()[k] as usize).1;
        }
        Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d]))
    }

    /// Iterates over live buckets as `(id, region, record_count)`.
    pub fn live_buckets(&self) -> impl Iterator<Item = (BucketId, &CellRegion, usize)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.alive)
            .map(|(i, b)| (i as BucketId, &b.region, b.records.len()))
    }

    /// Number of live buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.iter().filter(|b| b.alive).count()
    }

    /// The records of a bucket.
    ///
    /// # Panics
    /// Panics if the bucket id is stale (merged away).
    pub fn bucket_records(&self, id: BucketId) -> &[Record] {
        let b = &self.buckets[id as usize];
        assert!(b.alive, "bucket {id} is not alive");
        &b.records
    }

    /// Inserts a record, splitting buckets as needed.
    pub fn insert(&mut self, rec: Record) {
        let _ = self.insert_tracked(rec);
    }

    /// Inserts a record and reports which buckets the insert rewrote or
    /// created — the delta an external materialization of the buckets (the
    /// parallel engine's block stores) must apply.
    pub fn insert_tracked(&mut self, rec: Record) -> MutationEffect {
        assert_eq!(
            rec.point.dim(),
            self.dim(),
            "record dimensionality mismatch"
        );
        let mut effect = MutationEffect::default();
        let mut cell = [0u32; MAX_DIM];
        self.cell_of_point(&rec.point, &mut cell[..self.dim()]);
        let bid = self.dir.bucket_at(&cell[..self.dim()]);
        self.buckets[bid as usize].records.push(rec);
        self.n_records += 1;
        effect.rewritten.push(bid);
        if self.buckets[bid as usize].records.len() > self.capacity {
            self.enforce_capacity(bid, &mut effect);
        }
        effect.normalize();
        effect
    }

    /// The live bucket whose region contains `p` (clamped into the domain).
    pub fn bucket_of_point(&self, p: &Point) -> BucketId {
        let mut cell = [0u32; MAX_DIM];
        self.cell_of_point(p, &mut cell[..self.dim()]);
        self.dir.bucket_at(&cell[..self.dim()])
    }

    /// Looks up all records whose key equals `p` exactly.
    pub fn lookup(&self, p: &Point) -> Vec<Record> {
        let mut cell = [0u32; MAX_DIM];
        self.cell_of_point(p, &mut cell[..self.dim()]);
        let bid = self.dir.bucket_at(&cell[..self.dim()]);
        self.buckets[bid as usize]
            .records
            .iter()
            .filter(|r| r.point == *p)
            .copied()
            .collect()
    }

    /// Removes the record with the given id whose key is `p`. Returns
    /// whether a record was removed. Underflowing buckets are merged with a
    /// buddy when possible.
    pub fn delete(&mut self, id: u64, p: &Point) -> bool {
        let (removed, _) = self.delete_tracked(id, p);
        removed
    }

    /// Removes a record like [`GridFile::delete`], additionally reporting
    /// which buckets were rewritten or merged away. The effect is empty
    /// when no record matched.
    pub fn delete_tracked(&mut self, id: u64, p: &Point) -> (bool, MutationEffect) {
        let mut effect = MutationEffect::default();
        let mut cell = [0u32; MAX_DIM];
        self.cell_of_point(p, &mut cell[..self.dim()]);
        let bid = self.dir.bucket_at(&cell[..self.dim()]);
        let recs = &mut self.buckets[bid as usize].records;
        let Some(pos) = recs.iter().position(|r| r.id == id && r.point == *p) else {
            return (false, effect);
        };
        recs.swap_remove(pos);
        self.n_records -= 1;
        effect.rewritten.push(bid);
        if self.buckets[bid as usize].records.len() * 3 < self.capacity {
            self.try_merge(bid, &mut effect);
        }
        effect.normalize();
        (true, effect)
    }

    /// The set of buckets a (closed) range query must read, sorted and
    /// deduplicated. This is the quantity the paper's response-time metric
    /// counts.
    pub fn range_query_buckets(&self, query: &Rect) -> Vec<BucketId> {
        assert_eq!(query.dim(), self.dim(), "query dimensionality mismatch");
        let Some(region) = self.query_cell_region(query) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(region.cell_count().min(1024) as usize);
        region.for_each_cell(|cell| {
            out.push(self.dir.bucket_at(cell));
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Runs a (closed) range query, returning the buckets read and the
    /// qualifying records.
    pub fn range_query(&self, query: &Rect) -> (Vec<BucketId>, Vec<Record>) {
        let buckets = self.range_query_buckets(query);
        let mut records = Vec::new();
        for &b in &buckets {
            for r in &self.buckets[b as usize].records {
                if query.contains_closed(&r.point) {
                    records.push(*r);
                }
            }
        }
        (buckets, records)
    }

    /// The buckets a partial-match query must read. `keys[k]` is `Some(v)`
    /// for a specified attribute and `None` for an unspecified one.
    pub fn partial_match_buckets(&self, keys: &[Option<f64>]) -> Vec<BucketId> {
        assert_eq!(keys.len(), self.dim(), "key count mismatch");
        let d = self.dim();
        let mut lo = [0.0; MAX_DIM];
        let mut hi = [0.0; MAX_DIM];
        for k in 0..d {
            match keys[k] {
                Some(v) => {
                    lo[k] = v;
                    hi[k] = v;
                }
                None => {
                    lo[k] = self.config.domain.lo().get(k);
                    hi[k] = self.config.domain.hi().get(k);
                }
            }
        }
        let rect = Rect::new(Point::new(&lo[..d]), Point::new(&hi[..d]));
        self.range_query_buckets(&rect)
    }

    /// Runs a partial-match query, returning buckets and qualifying records.
    pub fn partial_match(&self, keys: &[Option<f64>]) -> (Vec<BucketId>, Vec<Record>) {
        let buckets = self.partial_match_buckets(keys);
        let mut records = Vec::new();
        for &b in &buckets {
            'rec: for r in &self.buckets[b as usize].records {
                for (k, key) in keys.iter().enumerate() {
                    if let Some(v) = key {
                        if r.point.get(k) != *v {
                            continue 'rec;
                        }
                    }
                }
                records.push(*r);
            }
        }
        (buckets, records)
    }

    /// Summary statistics.
    pub fn stats(&self) -> GridFileStats {
        let mut n_buckets = 0;
        let mut n_merged = 0;
        let mut occupancy = 0.0;
        let mut oversize = 0;
        for b in &self.buckets {
            if !b.alive {
                continue;
            }
            n_buckets += 1;
            if !b.region.is_single_cell() {
                n_merged += 1;
            }
            if b.records.len() > self.capacity {
                oversize += 1;
            }
            occupancy += b.records.len() as f64 / self.capacity as f64;
        }
        GridFileStats {
            n_records: self.n_records,
            n_cells: self.scales.iter().map(|s| s.n_cells() as u64).product(),
            n_buckets,
            n_merged_buckets: n_merged,
            cells_per_dim: self.cells_per_dim(),
            avg_occupancy: if n_buckets > 0 {
                occupancy / n_buckets as f64
            } else {
                0.0
            },
            oversize_buckets: oversize,
        }
    }

    /// Checks internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        // Every directory cell points at a live bucket whose region contains
        // the cell.
        self.dir.for_each(|cell, bid| {
            let b = &self.buckets[bid as usize];
            assert!(b.alive, "cell {cell:?} points at dead bucket {bid}");
            assert!(
                b.region.contains_cell(cell),
                "cell {cell:?} not inside region of bucket {bid}"
            );
        });
        // Every live bucket's records lie inside the bucket's spatial box,
        // and every cell of its region points back at it.
        let mut total = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if !b.alive {
                continue;
            }
            total += b.records.len() as u64;
            let rect = self.region_rect(&b.region);
            for r in &b.records {
                let mut cell = [0u32; MAX_DIM];
                self.cell_of_point(&r.point, &mut cell[..self.dim()]);
                assert!(
                    b.region.contains_cell(&cell[..self.dim()]),
                    "record {:?} in bucket {i} maps to cell outside its region {:?} (rect {rect:?})",
                    r,
                    b.region,
                );
            }
            b.region.for_each_cell(|cell| {
                assert_eq!(
                    self.dir.bucket_at(cell),
                    i as BucketId,
                    "cell {cell:?} of bucket {i}'s region points elsewhere"
                );
            });
        }
        assert_eq!(total, self.n_records, "record count mismatch");
    }

    // ----- internals -------------------------------------------------

    /// Cell region touched by a closed-rect query, or `None` if the query
    /// misses the domain entirely.
    fn query_cell_region(&self, query: &Rect) -> Option<CellRegion> {
        let d = self.dim();
        let dom = &self.config.domain;
        let mut lo = [0u32; MAX_DIM];
        let mut hi = [0u32; MAX_DIM];
        for k in 0..d {
            if query.hi().get(k) < dom.lo().get(k) || query.lo().get(k) > dom.hi().get(k) {
                return None;
            }
            lo[k] = self.scales[k].cell_of(query.lo().get(k)) as u32;
            hi[k] = self.scales[k].cell_of(query.hi().get(k)) as u32;
        }
        Some(CellRegion::new(&lo[..d], &hi[..d]))
    }

    fn alloc_bucket(&mut self, region: CellRegion) -> BucketId {
        if let Some(id) = self.free.pop() {
            let b = &mut self.buckets[id as usize];
            debug_assert!(!b.alive);
            b.region = region;
            b.records.clear();
            b.alive = true;
            id
        } else {
            self.buckets.push(Bucket {
                region,
                records: Vec::new(),
                alive: true,
            });
            (self.buckets.len() - 1) as BucketId
        }
    }

    /// Splits buckets until none (reachable from `start`) exceeds capacity.
    fn enforce_capacity(&mut self, start: BucketId, effect: &mut MutationEffect) {
        let mut work = vec![start];
        while let Some(b) = work.pop() {
            while self.buckets[b as usize].records.len() > self.capacity {
                match self.split_once(b) {
                    Some(nb) => {
                        effect.created.push(nb);
                        if self.buckets[nb as usize].records.len() > self.capacity {
                            work.push(nb);
                        }
                    }
                    None => break, // inseparable duplicates: oversize bucket
                }
            }
        }
    }

    /// Performs one split step on bucket `b`. Returns the new bucket id, or
    /// `None` if the records cannot be separated on any dimension.
    fn split_once(&mut self, b: BucketId) -> Option<BucketId> {
        if self.buckets[b as usize].region.is_single_cell() && !self.refine_scale_for(b) {
            return None;
        }
        Some(self.split_region(b))
    }

    /// Splits a multi-cell bucket region along its widest axis.
    fn split_region(&mut self, b: BucketId) -> BucketId {
        let region = self.buckets[b as usize].region;
        debug_assert!(!region.is_single_cell());
        // Widest axis (in cells); ties broken by larger spatial extent so
        // splits stay roughly square.
        let mut best_k = 0;
        let mut best = (0u32, 0.0f64);
        for k in 0..self.dim() {
            let span = region.span(k);
            if span < 2 {
                continue;
            }
            let rect = self.region_rect(&region);
            let extent = rect.side(k) / self.config.domain.side(k);
            if span > best.0 || (span == best.0 && extent > best.1) {
                best = (span, extent);
                best_k = k;
            }
        }
        let k = best_k;
        let mid = region.lo()[k] + (region.span(k) - 1) / 2;
        let (low, high) = region.split_at(k, mid);

        let nb = self.alloc_bucket(high);
        // Move records whose cell on axis k is above the cut.
        let scale = &self.scales[k];
        let cut_value = scale.cell_bounds(mid as usize).1;
        let (keep, moved): (Vec<Record>, Vec<Record>) = self.buckets[b as usize]
            .records
            .drain(..)
            .partition(|r| r.point.get(k) < cut_value);
        self.buckets[b as usize].records = keep;
        self.buckets[b as usize].region = low;
        self.buckets[nb as usize].records = moved;

        // Re-point the directory cells of the upper half.
        let dir = &mut self.dir;
        high.for_each_cell(|cell| dir.set_bucket_at(cell, nb));
        nb
    }

    /// Refines a linear scale so that bucket `b`'s single cell becomes two.
    /// Returns `false` when no dimension admits a separating cut (all record
    /// keys identical).
    fn refine_scale_for(&mut self, b: BucketId) -> bool {
        let region = self.buckets[b as usize].region;
        debug_assert!(region.is_single_cell());
        let d = self.dim();

        // Dimension preference: classical grid files refine dimensions
        // cyclically so the directory stays balanced across attributes; we
        // realize that globally by preferring the scale with the fewest
        // cells (ties: larger relative extent of the overflowing cell).
        let mut order: Vec<usize> = (0..d).collect();
        let extents: Vec<f64> = (0..d)
            .map(|k| {
                let (lo, hi) = self.scales[k].cell_bounds(region.lo()[k] as usize);
                (hi - lo) / self.config.domain.side(k)
            })
            .collect();
        order.sort_by(|&a, &bb| {
            self.scales[a]
                .n_cells()
                .cmp(&self.scales[bb].n_cells())
                .then_with(|| {
                    extents[bb]
                        .partial_cmp(&extents[a])
                        .expect("extent is never NaN")
                })
        });

        for &k in &order {
            let c = region.lo()[k];
            let (cell_lo, cell_hi) = self.scales[k].cell_bounds(c as usize);
            if let Some(cut) = self.find_cut(b, k, cell_lo, cell_hi) {
                let split_cell = self.scales[k].insert_cut(cut);
                debug_assert_eq!(split_cell, c as usize);
                self.dir.grow(k, c);
                for bucket in &mut self.buckets {
                    if bucket.alive {
                        bucket.region.apply_scale_split(k, c);
                    }
                }
                return true;
            }
        }
        false
    }

    /// Finds a cut inside `(cell_lo, cell_hi)` on axis `k` that separates
    /// the records of bucket `b`.
    ///
    /// Prefers the spatial *midpoint* when it splits the records reasonably
    /// evenly (midpoint cuts keep cells aligned, so uniform data produces
    /// almost no merged buckets — the paper's "4 of 252" regime); on skewed
    /// marginals, where midpoint cuts would waste scale refinements on empty
    /// space, it falls back to the *median* record key.
    fn find_cut(&self, b: BucketId, k: usize, cell_lo: f64, cell_hi: f64) -> Option<f64> {
        let recs = &self.buckets[b as usize].records;
        let n = recs.len();
        let separates = |cut: f64| {
            let below = recs.iter().filter(|r| r.point.get(k) < cut).count();
            below > 0 && below < n
        };
        let mid = 0.5 * (cell_lo + cell_hi);
        if mid > cell_lo && mid < cell_hi {
            let below = recs.iter().filter(|r| r.point.get(k) < mid).count();
            // "Reasonably even": both halves get at least a quarter.
            if below * 4 >= n && (n - below) * 4 >= n {
                return Some(mid);
            }
        }
        // Median cut: a middle *distinct* key value. Keys equal to the cut
        // go to the upper half, so any distinct value except the smallest
        // separates.
        let mut keys: Vec<f64> = recs.iter().map(|r| r.point.get(k)).collect();
        keys.sort_by(|a, bb| a.partial_cmp(bb).expect("keys are never NaN"));
        keys.dedup();
        if keys.len() >= 2 {
            let cut = keys[(keys.len() / 2).max(1)];
            if cut > cell_lo && cut < cell_hi && separates(cut) {
                return Some(cut);
            }
        }
        // Last resort: an uneven midpoint still makes progress.
        if mid > cell_lo && mid < cell_hi && separates(mid) {
            return Some(mid);
        }
        None
    }

    /// Attempts to merge an underflowing bucket with a buddy.
    fn try_merge(&mut self, b: BucketId, effect: &mut MutationEffect) {
        if !self.buckets[b as usize].alive {
            return;
        }
        let region = self.buckets[b as usize].region;
        let len = self.buckets[b as usize].records.len();
        // Find a live buddy with combined occupancy at most ~70% so the
        // merged bucket does not split right back (thrashing guard).
        let limit = (self.capacity * 7) / 10;
        let buddy = self.buckets.iter().enumerate().find_map(|(i, other)| {
            (other.alive
                && i as BucketId != b
                && other.region.is_buddy_of(&region)
                && other.records.len() + len <= limit.max(1))
            .then_some(i as BucketId)
        });
        let Some(buddy) = buddy else {
            return;
        };
        let merged_region = region.merge_with(&self.buckets[buddy as usize].region);
        let moved = std::mem::take(&mut self.buckets[buddy as usize].records);
        self.buckets[b as usize].records.extend(moved);
        self.buckets[b as usize].region = merged_region;
        self.buckets[buddy as usize].alive = false;
        self.free.push(buddy);
        effect.freed.push(buddy);
        let dir = &mut self.dir;
        merged_region.for_each_cell(|cell| dir.set_bucket_at(cell, b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg2(capacity: usize) -> GridConfig {
        GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), capacity)
    }

    fn rec2(id: u64, x: f64, y: f64) -> Record {
        Record::new(id, Point::new2(x, y))
    }

    #[test]
    fn empty_file() {
        let gf = GridFile::new(cfg2(4));
        assert!(gf.is_empty());
        assert_eq!(gf.n_buckets(), 1);
        assert_eq!(gf.stats().n_cells, 1);
        gf.check_invariants();
    }

    #[test]
    fn insert_without_split() {
        let mut gf = GridFile::new(cfg2(4));
        for i in 0..4 {
            gf.insert(rec2(i, i as f64 * 10.0, 50.0));
        }
        assert_eq!(gf.len(), 4);
        assert_eq!(gf.n_buckets(), 1);
        gf.check_invariants();
    }

    #[test]
    fn overflow_triggers_scale_split() {
        let mut gf = GridFile::new(cfg2(4));
        for i in 0..5 {
            gf.insert(rec2(i, i as f64 * 10.0 + 5.0, 50.0));
        }
        assert_eq!(gf.len(), 5);
        assert!(gf.n_buckets() >= 2);
        assert!(gf.stats().n_cells >= 2);
        gf.check_invariants();
    }

    #[test]
    fn lookup_finds_inserted_records() {
        let mut gf = GridFile::new(cfg2(4));
        let pts = [
            (3.0, 4.0),
            (80.0, 20.0),
            (50.0, 50.0),
            (10.0, 90.0),
            (99.0, 99.0),
        ];
        for (i, &(x, y)) in pts.iter().enumerate() {
            gf.insert(rec2(i as u64, x, y));
        }
        for (i, &(x, y)) in pts.iter().enumerate() {
            let found = gf.lookup(&Point::new2(x, y));
            assert_eq!(found.len(), 1);
            assert_eq!(found[0].id, i as u64);
        }
        assert!(gf.lookup(&Point::new2(1.0, 1.0)).is_empty());
    }

    #[test]
    fn many_inserts_keep_invariants() {
        let mut gf = GridFile::new(cfg2(8));
        // Deterministic quasi-random points.
        let mut x = 7u64;
        for i in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 16) % 10000) as f64 / 100.0;
            let b = ((x >> 40) % 10000) as f64 / 100.0;
            gf.insert(rec2(i, a, b));
        }
        assert_eq!(gf.len(), 2000);
        gf.check_invariants();
        let st = gf.stats();
        assert!(st.n_buckets >= 2000 / 8, "buckets: {}", st.n_buckets);
        assert_eq!(st.oversize_buckets, 0);
        // All records findable.
        let (_, recs) = gf.range_query(&Rect::new2(0.0, 0.0, 100.0, 100.0));
        assert_eq!(recs.len(), 2000);
    }

    #[test]
    fn range_query_correctness_brute_force() {
        let mut gf = GridFile::new(cfg2(4));
        let mut pts = Vec::new();
        let mut x = 99u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let a = ((x >> 16) % 10000) as f64 / 100.0;
            let b = ((x >> 40) % 10000) as f64 / 100.0;
            pts.push((a, b));
            gf.insert(rec2(i, a, b));
        }
        let queries = [
            Rect::new2(10.0, 10.0, 30.0, 30.0),
            Rect::new2(0.0, 0.0, 100.0, 100.0),
            Rect::new2(50.0, 0.0, 50.0, 100.0), // degenerate line
            Rect::new2(95.0, 95.0, 100.0, 100.0),
        ];
        for q in &queries {
            let (_, recs) = gf.range_query(q);
            let expected = pts
                .iter()
                .filter(|&&(a, b)| q.contains_closed(&Point::new2(a, b)))
                .count();
            assert_eq!(recs.len(), expected, "query {q:?}");
        }
    }

    #[test]
    fn range_query_outside_domain_is_empty() {
        let mut gf = GridFile::new(cfg2(4));
        gf.insert(rec2(0, 50.0, 50.0));
        let q = Rect::new2(200.0, 200.0, 300.0, 300.0);
        assert!(gf.range_query_buckets(&q).is_empty());
    }

    #[test]
    fn partial_match_query() {
        let mut gf = GridFile::new(cfg2(4));
        for i in 0..100u64 {
            let x = (i % 10) as f64 * 10.0 + 5.0;
            let y = (i / 10) as f64 * 10.0 + 5.0;
            gf.insert(rec2(i, x, y));
        }
        // x = 25 specified, y unspecified: the 10 records of column 2.
        let (buckets, recs) = gf.partial_match(&[Some(25.0), None]);
        assert_eq!(recs.len(), 10);
        assert!(recs.iter().all(|r| r.point.get(0) == 25.0));
        assert!(!buckets.is_empty());
        gf.check_invariants();
    }

    #[test]
    fn duplicate_keys_become_oversize_not_infinite_loop() {
        let mut gf = GridFile::new(cfg2(4));
        for i in 0..20 {
            gf.insert(rec2(i, 33.0, 44.0));
        }
        assert_eq!(gf.len(), 20);
        let st = gf.stats();
        assert_eq!(st.oversize_buckets, 1);
        assert_eq!(gf.lookup(&Point::new2(33.0, 44.0)).len(), 20);
        gf.check_invariants();
    }

    #[test]
    fn delete_and_merge() {
        let mut gf = GridFile::new(cfg2(4));
        let mut recs = Vec::new();
        let mut x = 5u64;
        for i in 0..200u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((x >> 16) % 10000) as f64 / 100.0;
            let b = ((x >> 40) % 10000) as f64 / 100.0;
            recs.push(rec2(i, a, b));
            gf.insert(rec2(i, a, b));
        }
        let buckets_full = gf.n_buckets();
        for r in &recs {
            assert!(gf.delete(r.id, &r.point), "failed to delete {r:?}");
        }
        assert!(gf.is_empty());
        assert!(
            gf.n_buckets() < buckets_full,
            "merging should have reduced {buckets_full} buckets"
        );
        gf.check_invariants();
        // Deleting again fails cleanly.
        assert!(!gf.delete(recs[0].id, &recs[0].point));
    }

    #[test]
    fn merged_buckets_appear_under_skew() {
        // Strong skew produces scale cuts that slice through sparse areas,
        // leaving multi-cell buckets — the paper's "merged subspaces".
        let mut gf = GridFile::new(cfg2(4));
        let mut x = 17u64;
        for i in 0..400u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Cluster around (20, 20) with a few outliers.
            let (a, b) = if i % 50 == 0 {
                (
                    ((x >> 16) % 10000) as f64 / 100.0,
                    ((x >> 40) % 10000) as f64 / 100.0,
                )
            } else {
                (
                    15.0 + ((x >> 16) % 1000) as f64 / 100.0,
                    15.0 + ((x >> 40) % 1000) as f64 / 100.0,
                )
            };
            gf.insert(rec2(i, a, b));
        }
        let st = gf.stats();
        assert!(
            st.n_merged_buckets > 0,
            "skewed data should produce merged buckets: {st:?}"
        );
        assert!(st.n_cells > st.n_buckets as u64);
        gf.check_invariants();
    }

    #[test]
    fn bulk_load_equals_inserts() {
        let recs: Vec<Record> = (0..100)
            .map(|i| rec2(i, (i % 10) as f64 * 9.9, (i / 10) as f64 * 9.9))
            .collect();
        let gf = GridFile::bulk_load(cfg2(4), recs.iter().copied());
        assert_eq!(gf.len(), 100);
        gf.check_invariants();
    }

    #[test]
    fn config_capacity_roundtrip() {
        let cfg = cfg2(40);
        assert_eq!(cfg.bucket_capacity(), 40);
        let cfg = GridConfig::new(Rect::new2(0.0, 0.0, 1.0, 1.0), 78);
        assert_eq!(cfg.bucket_capacity(), 40); // the paper's 2-D setup
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn impossible_capacity_rejected() {
        let _ = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 1.0, 1.0), 10_000);
    }

    #[test]
    fn insert_effect_reports_target_and_split_buckets() {
        let mut gf = GridFile::new(cfg2(4));
        for i in 0..4 {
            let e = gf.insert_tracked(rec2(i, i as f64 * 10.0 + 5.0, 50.0));
            assert_eq!(e.rewritten, vec![0]);
            assert!(e.created.is_empty() && e.freed.is_empty());
        }
        let e = gf.insert_tracked(rec2(4, 45.0, 50.0));
        assert!(
            !e.created.is_empty(),
            "overflow must report the split: {e:?}"
        );
        assert!(e.freed.is_empty());
        gf.check_invariants();
    }

    #[test]
    fn delete_effect_reports_merges_and_misses() {
        let mut gf = GridFile::new(cfg2(4));
        let mut recs = Vec::new();
        let mut x = 3u64;
        for i in 0..120u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = ((x >> 16) % 10000) as f64 / 100.0;
            let b = ((x >> 40) % 10000) as f64 / 100.0;
            recs.push(rec2(i, a, b));
            gf.insert(rec2(i, a, b));
        }
        let (removed, e) = gf.delete_tracked(999, &Point::new2(50.0, 50.0));
        assert!(!removed);
        assert!(e.is_empty(), "a miss must not report effects: {e:?}");
        let mut saw_merge = false;
        for r in &recs {
            let (removed, e) = gf.delete_tracked(r.id, &r.point);
            assert!(removed);
            assert!(!e.rewritten.is_empty());
            assert!(e.created.is_empty());
            saw_merge |= !e.freed.is_empty();
        }
        assert!(saw_merge, "draining the file should merge buckets");
        gf.check_invariants();
    }

    #[test]
    fn effects_materialize_an_identical_external_copy() {
        // Maintain an external bucket -> records map purely from mutation
        // effects — exactly what the parallel engine's block stores do. It
        // must track the file's live buckets through splits and merges.
        use std::collections::HashMap;
        let mut gf = GridFile::new(cfg2(4));
        let mut external: HashMap<BucketId, Vec<Record>> = HashMap::new();
        external.insert(0, Vec::new());
        let apply =
            |gf: &GridFile, e: &MutationEffect, ext: &mut HashMap<BucketId, Vec<Record>>| {
                for b in &e.freed {
                    assert!(ext.remove(b).is_some(), "freed unknown bucket {b}");
                }
                for b in &e.created {
                    assert!(!ext.contains_key(b), "created bucket {b} already exists");
                    ext.insert(*b, gf.bucket_records(*b).to_vec());
                }
                for b in &e.rewritten {
                    assert!(ext.contains_key(b), "rewrote unknown bucket {b}");
                    ext.insert(*b, gf.bucket_records(*b).to_vec());
                }
            };
        let mut x = 41u64;
        let mut live = Vec::new();
        for i in 0..600u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 16) % 10000) as f64 / 100.0;
            let b = ((x >> 40) % 10000) as f64 / 100.0;
            let r = rec2(i, a, b);
            if x.is_multiple_of(4) && !live.is_empty() {
                let victim: Record = live.swap_remove((x >> 8) as usize % live.len());
                let (removed, e) = gf.delete_tracked(victim.id, &victim.point);
                assert!(removed);
                apply(&gf, &e, &mut external);
            }
            live.push(r);
            let e = gf.insert_tracked(r);
            apply(&gf, &e, &mut external);
        }
        // The external copy matches the file bucket for bucket.
        let mut n_live = 0;
        for (id, _region, len) in gf.live_buckets() {
            n_live += 1;
            let ext = external
                .get(&id)
                .unwrap_or_else(|| panic!("bucket {id} missing externally"));
            assert_eq!(ext.len(), len, "bucket {id} length");
            assert_eq!(&ext[..], gf.bucket_records(id), "bucket {id} contents");
        }
        assert_eq!(external.len(), n_live, "external copy has stale buckets");
        gf.check_invariants();
    }
}
