//! Grid file and Cartesian product file access methods.
//!
//! This crate implements the storage substrate of the paper:
//!
//! * [`GridFile`] — Nievergelt & Hinterberger's adaptive, symmetric multikey
//!   file structure: per-dimension *linear scales* partition the domain into
//!   a grid of cells ("subspaces" in the paper); a *grid directory* maps each
//!   cell to a data bucket; a bucket may cover a whole **box** of cells (the
//!   "merged subspaces" that make declustering grid files harder than
//!   Cartesian product files).
//! * [`CartesianProductFile`] — the degenerate special case with exactly one
//!   bucket per cell, used by the analytic study (Theorems 1–2).
//! * [`page`] — fixed-width record/page encoding so the parallel engine can
//!   move buckets as raw disk blocks.
//!
//! Buckets are split on overflow. If a bucket covers more than one cell it is
//! split along an existing scale boundary (no directory growth); otherwise
//! the relevant linear scale is refined and the directory grows along that
//! axis — the classical grid-file insertion algorithm.
//!
//! ```
//! use pargrid_geom::{Point, Rect};
//! use pargrid_gridfile::{GridConfig, GridFile, Record};
//!
//! // A 2-D grid file with buckets of 4 records.
//! let config = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4);
//! let mut file = GridFile::new(config);
//! for i in 0..100u64 {
//!     let (x, y) = ((i % 10) as f64 * 9.5, (i / 10) as f64 * 9.5);
//!     file.insert(Record::new(i, Point::new2(x, y)));
//! }
//! assert_eq!(file.len(), 100);
//!
//! // Range query: buckets read (the declustering cost unit) + records.
//! let (buckets, records) = file.range_query(&Rect::new2(0.0, 0.0, 30.0, 30.0));
//! assert!(!buckets.is_empty());
//! assert_eq!(records.len(), 16); // 4x4 block of the lattice
//!
//! // Round-trip through the persistence format.
//! let restored = GridFile::from_bytes(&file.to_bytes()).unwrap();
//! assert_eq!(restored.len(), file.len());
//! ```

#![warn(missing_docs)]

pub mod cartesian;
pub mod checksum;
pub mod directory;
pub mod durable;
pub mod file;
pub mod page;
pub mod persist;
pub mod record;
pub mod region;
pub mod scale;
pub mod wal;

pub use cartesian::CartesianProductFile;
pub use checksum::crc32;
pub use directory::Directory;
pub use durable::DurableGridFile;
pub use file::{GridConfig, GridFile, GridFileStats, MutationEffect};
pub use persist::PersistError;
pub use record::Record;
pub use region::CellRegion;
pub use scale::LinearScale;
pub use wal::{Wal, WalOp};

/// The crate's most commonly used types, flat: file construction, records,
/// and the typed persistence error ([`PersistError`] — `#[non_exhaustive]`
/// per the workspace error convention).
pub mod prelude {
    pub use crate::checksum::crc32;
    pub use crate::durable::DurableGridFile;
    pub use crate::file::{GridConfig, GridFile, GridFileStats, MutationEffect};
    pub use crate::persist::PersistError;
    pub use crate::record::Record;
    pub use crate::wal::{Wal, WalOp};
}
