//! Cartesian product files: the special case the analytic study works on.
//!
//! A Cartesian product file partitions every attribute domain into fixed
//! intervals and stores **every** cell `[i_1, ..., i_d]` in its own disk
//! bucket — no merging. This is the structure for which DM and FX were
//! originally proposed, and the structure over which Theorems 1 and 2 are
//! stated. It supports exactly what the theorems need: enumerate the cells of
//! an axis-aligned window.

use pargrid_geom::MAX_DIM;

/// A Cartesian product file: a dense integer grid of buckets.
#[derive(Clone, Debug)]
pub struct CartesianProductFile {
    sides: Vec<u32>,
}

impl CartesianProductFile {
    /// Creates a file with the given number of intervals per attribute.
    ///
    /// # Panics
    /// Panics if `sides` is empty, longer than [`MAX_DIM`], or contains a
    /// zero.
    pub fn new(sides: &[u32]) -> Self {
        assert!(
            !sides.is_empty() && sides.len() <= MAX_DIM,
            "dimensionality out of range"
        );
        assert!(sides.iter().all(|&s| s > 0), "zero-width dimension");
        CartesianProductFile {
            sides: sides.to_vec(),
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.sides.len()
    }

    /// Cells per dimension.
    #[inline]
    pub fn sides(&self) -> &[u32] {
        &self.sides
    }

    /// Total number of cells (= buckets).
    pub fn n_cells(&self) -> u64 {
        self.sides.iter().map(|&s| s as u64).product()
    }

    /// Invokes `f` for every cell of the window `[lo, lo+len)` (per-dim,
    /// clamped to the grid).
    ///
    /// # Panics
    /// Panics if the slice lengths disagree with the dimensionality.
    pub fn for_each_cell_in_window<F: FnMut(&[u32])>(&self, lo: &[u32], len: &[u32], mut f: F) {
        assert_eq!(lo.len(), self.dim());
        assert_eq!(len.len(), self.dim());
        let d = self.dim();
        let mut hi = [0u32; MAX_DIM];
        for k in 0..d {
            if lo[k] >= self.sides[k] || len[k] == 0 {
                return; // empty window
            }
            hi[k] = (lo[k] + len[k]).min(self.sides[k]); // exclusive
        }
        let mut cur = [0u32; MAX_DIM];
        cur[..d].copy_from_slice(lo);
        loop {
            f(&cur[..d]);
            let mut k = d;
            loop {
                if k == 0 {
                    return;
                }
                k -= 1;
                cur[k] += 1;
                if cur[k] < hi[k] {
                    break;
                }
                cur[k] = lo[k];
            }
        }
    }

    /// Number of cells of the window (after clamping).
    pub fn window_cell_count(&self, lo: &[u32], len: &[u32]) -> u64 {
        let mut n = 1u64;
        for k in 0..self.dim() {
            if lo[k] >= self.sides[k] || len[k] == 0 {
                return 0;
            }
            let hi = (lo[k] + len[k]).min(self.sides[k]);
            n *= (hi - lo[k]) as u64;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_counts() {
        let f = CartesianProductFile::new(&[4, 5, 6]);
        assert_eq!(f.n_cells(), 120);
        assert_eq!(f.dim(), 3);
    }

    #[test]
    fn window_enumeration() {
        let f = CartesianProductFile::new(&[8, 8]);
        let mut cells = Vec::new();
        f.for_each_cell_in_window(&[1, 2], &[2, 3], |c| cells.push((c[0], c[1])));
        assert_eq!(cells, vec![(1, 2), (1, 3), (1, 4), (2, 2), (2, 3), (2, 4)]);
        assert_eq!(f.window_cell_count(&[1, 2], &[2, 3]), 6);
    }

    #[test]
    fn window_clamps_at_edges() {
        let f = CartesianProductFile::new(&[4, 4]);
        assert_eq!(f.window_cell_count(&[3, 3], &[5, 5]), 1);
        let mut n = 0;
        f.for_each_cell_in_window(&[3, 3], &[5, 5], |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn empty_windows() {
        let f = CartesianProductFile::new(&[4, 4]);
        assert_eq!(f.window_cell_count(&[4, 0], &[1, 1]), 0);
        assert_eq!(f.window_cell_count(&[0, 0], &[0, 1]), 0);
        let mut n = 0;
        f.for_each_cell_in_window(&[4, 0], &[1, 1], |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_side_rejected() {
        let _ = CartesianProductFile::new(&[4, 0]);
    }
}
