//! Grid-file persistence: a compact, versioned binary image.
//!
//! The paper's simulator "reads in the dataset and declusters it to separate
//! files corresponding to every disk"; for that (and for any real
//! deployment) the grid file itself must survive a process restart. The
//! format stores the configuration, the linear scales and every live bucket
//! (region + records); the directory is **not** stored — it is a pure
//! function of the bucket regions and is rebuilt on load, which both shrinks
//! the image and double-checks the region invariant.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "PGF1"
//! u16 dim | u16 flags | u32 page_bytes | u32 payload_bytes | u64 n_records
//! domain: dim x (f64 lo, f64 hi)
//! per dim: u32 n_cuts, n_cuts x f64
//! u32 n_buckets (live only)
//! per bucket: dim x u32 region_lo, dim x u32 region_hi,
//!             u32 n_records, n_records x (u64 id, dim x f64)
//! [flags & CRC32: u32 crc32 of every preceding byte]
//! ```
//!
//! Writers set the `FLAG_CRC32` bit and append a CRC-32 footer over the
//! whole payload, so a flipped byte anywhere in the image — not just in the
//! structurally-validated counts — is rejected as
//! [`PersistError::Corrupt`]. Images written before the footer existed
//! (flags 0) still load.

use crate::directory::Directory;
use crate::file::{Bucket, GridConfig, GridFile};
use crate::record::Record;
use crate::region::CellRegion;
use crate::scale::LinearScale;
use pargrid_geom::{Point, Rect, MAX_DIM};
use std::fmt;
use std::path::Path;

const MAGIC: &[u8; 4] = b"PGF1";

/// Header flag bit: the image ends with a CRC-32 footer over the payload.
const FLAG_CRC32: u16 = 0x0001;

/// Errors from loading a persisted grid file.
///
/// `#[non_exhaustive]` (workspace error convention): downstream matches
/// carry a wildcard arm so new failure modes stay a minor change.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The bytes do not form a valid image (with a description).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt grid file image: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.pos + n > self.buf.len() {
            return Err(PersistError::Corrupt(format!(
                "truncated at offset {} (wanted {n} bytes of {})",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Validates an untrusted element count before any allocation: the
    /// remaining bytes must be able to hold `count` elements of
    /// `elem_bytes`. Prevents corrupted counts from triggering huge
    /// `Vec::with_capacity` calls.
    fn check_count(&self, count: usize, elem_bytes: usize, what: &str) -> Result<(), PersistError> {
        let remaining = self.buf.len() - self.pos;
        if count
            .checked_mul(elem_bytes)
            .is_none_or(|need| need > remaining)
        {
            return Err(PersistError::Corrupt(format!(
                "{what} count {count} exceeds remaining {remaining} bytes"
            )));
        }
        Ok(())
    }
}

impl GridFile {
    /// Serializes the file to its binary image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let d = self.dim();
        let mut out = Vec::with_capacity(64 + self.len() as usize * (8 + 8 * d));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(d as u16).to_le_bytes());
        out.extend_from_slice(&FLAG_CRC32.to_le_bytes());
        out.extend_from_slice(&(self.config.page_bytes as u32).to_le_bytes());
        out.extend_from_slice(&(self.config.payload_bytes as u32).to_le_bytes());
        out.extend_from_slice(&self.n_records.to_le_bytes());
        for k in 0..d {
            out.extend_from_slice(&self.config.domain.lo().get(k).to_le_bytes());
            out.extend_from_slice(&self.config.domain.hi().get(k).to_le_bytes());
        }
        for scale in &self.scales {
            out.extend_from_slice(&(scale.cuts().len() as u32).to_le_bytes());
            for &c in scale.cuts() {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        let live: Vec<&Bucket> = self.buckets.iter().filter(|b| b.alive).collect();
        out.extend_from_slice(&(live.len() as u32).to_le_bytes());
        for b in live {
            for k in 0..d {
                out.extend_from_slice(&b.region.lo()[k].to_le_bytes());
            }
            for k in 0..d {
                out.extend_from_slice(&b.region.hi()[k].to_le_bytes());
            }
            out.extend_from_slice(&(b.records.len() as u32).to_le_bytes());
            for r in &b.records {
                out.extend_from_slice(&r.id.to_le_bytes());
                for k in 0..d {
                    out.extend_from_slice(&r.point.get(k).to_le_bytes());
                }
            }
        }
        let crc = crate::checksum::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Reconstructs a grid file from its binary image, rebuilding the
    /// directory from the bucket regions.
    pub fn from_bytes(bytes: &[u8]) -> Result<GridFile, PersistError> {
        // The CRC footer is verified (and stripped) before any structural
        // parsing, so a flipped byte anywhere — header, scales, records or
        // the footer itself — is caught first.
        let mut body = bytes;
        if bytes.len() >= 8 && &bytes[..4] == MAGIC {
            let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
            if flags & FLAG_CRC32 != 0 {
                if bytes.len() < 12 {
                    return Err(PersistError::Corrupt("truncated before CRC footer".into()));
                }
                let split = bytes.len() - 4;
                let stored = u32::from_le_bytes(bytes[split..].try_into().expect("4 footer bytes"));
                let computed = crate::checksum::crc32(&bytes[..split]);
                if stored != computed {
                    return Err(PersistError::Corrupt(format!(
                        "payload checksum mismatch: stored {stored:08x}, computed {computed:08x}"
                    )));
                }
                body = &bytes[..split];
            }
        }
        let bytes = body;
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(PersistError::Corrupt("bad magic".into()));
        }
        let dim = r.u16()? as usize;
        if !(1..=MAX_DIM).contains(&dim) {
            return Err(PersistError::Corrupt(format!("bad dimension {dim}")));
        }
        let _flags = r.u16()?;
        let page_bytes = r.u32()? as usize;
        let payload_bytes = r.u32()? as usize;
        let n_records = r.u64()?;

        let mut lo = [0.0; MAX_DIM];
        let mut hi = [0.0; MAX_DIM];
        for k in 0..dim {
            lo[k] = r.f64()?;
            hi[k] = r.f64()?;
            if lo[k] >= hi[k] || lo[k].is_nan() || hi[k].is_nan() {
                return Err(PersistError::Corrupt(format!("bad domain on dim {k}")));
            }
        }
        let domain = Rect::new(Point::new(&lo[..dim]), Point::new(&hi[..dim]));
        let config = GridConfig::new(domain, payload_bytes).with_page_bytes(page_bytes);
        let capacity = config.bucket_capacity();

        let mut scales = Vec::with_capacity(dim);
        for k in 0..dim {
            let n_cuts = r.u32()? as usize;
            r.check_count(n_cuts, 8, "cut")?;
            let mut cuts = Vec::with_capacity(n_cuts);
            let mut prev = f64::NEG_INFINITY;
            for _ in 0..n_cuts {
                let c = r.f64()?;
                if !(c > prev && c > lo[k] && c < hi[k]) {
                    return Err(PersistError::Corrupt(format!(
                        "scale {k}: cut {c} out of order or range"
                    )));
                }
                prev = c;
                cuts.push(c);
            }
            scales.push(LinearScale::with_cuts(lo[k], hi[k], cuts));
        }
        let sizes: Vec<u32> = scales.iter().map(|s| s.n_cells() as u32).collect();

        let n_buckets = r.u32()? as usize;
        if n_buckets == 0 {
            return Err(PersistError::Corrupt("no buckets".into()));
        }
        // Each bucket needs at least its region corners + record count.
        r.check_count(n_buckets, 8 * dim + 4, "bucket")?;
        let mut buckets = Vec::with_capacity(n_buckets);
        let mut total_records = 0u64;
        for bi in 0..n_buckets {
            let mut rlo = [0u32; MAX_DIM];
            let mut rhi = [0u32; MAX_DIM];
            for slot in rlo.iter_mut().take(dim) {
                *slot = r.u32()?;
            }
            for slot in rhi.iter_mut().take(dim) {
                *slot = r.u32()?;
            }
            for k in 0..dim {
                if rlo[k] > rhi[k] || rhi[k] >= sizes[k] {
                    return Err(PersistError::Corrupt(format!(
                        "bucket {bi}: region out of grid on dim {k}"
                    )));
                }
            }
            let region = CellRegion::new(&rlo[..dim], &rhi[..dim]);
            let n = r.u32()? as usize;
            r.check_count(n, 8 + 8 * dim, "record")?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                let id = r.u64()?;
                let mut coords = [0.0; MAX_DIM];
                for slot in coords.iter_mut().take(dim) {
                    *slot = r.f64()?;
                }
                records.push(Record::new(id, Point::new(&coords[..dim])));
            }
            total_records += n as u64;
            buckets.push(Bucket {
                region,
                records,
                alive: true,
            });
        }
        if r.pos != bytes.len() {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes",
                bytes.len() - r.pos
            )));
        }
        if total_records != n_records {
            return Err(PersistError::Corrupt(format!(
                "header claims {n_records} records, buckets hold {total_records}"
            )));
        }

        // Rebuild the directory from the regions, verifying they tile the
        // grid exactly.
        let mut dir = Directory::new(dim);
        for (k, scale) in scales.iter().enumerate() {
            for c in 0..scale.cuts().len() as u32 {
                dir.grow(k, c);
            }
        }
        debug_assert_eq!(dir.sizes(), &sizes[..]);
        let mut claimed = vec![false; dir.n_cells()];
        for (bi, b) in buckets.iter().enumerate() {
            let mut clash = None;
            b.region.for_each_cell(|cell| {
                let idx = dir.linear_index(cell);
                if claimed[idx] {
                    clash = Some(cell.to_vec());
                }
                claimed[idx] = true;
                dir.set_bucket_at(cell, bi as u32);
            });
            if let Some(cell) = clash {
                return Err(PersistError::Corrupt(format!(
                    "bucket {bi} overlaps another at cell {cell:?}"
                )));
            }
        }
        if !claimed.iter().all(|&c| c) {
            return Err(PersistError::Corrupt(
                "bucket regions do not cover the grid".into(),
            ));
        }

        let gf = GridFile {
            config,
            capacity,
            scales,
            dir,
            buckets,
            free: Vec::new(),
            n_records,
        };
        Ok(gf)
    }

    /// Saves the binary image to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), PersistError> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads a grid file previously written by [`GridFile::save`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<GridFile, PersistError> {
        let bytes = std::fs::read(path)?;
        GridFile::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> GridFile {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4);
        let mut x = 9u64;
        GridFile::bulk_load(
            cfg,
            (0..500u64).map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Record::new(
                    i,
                    Point::new2(
                        ((x >> 16) % 10000) as f64 / 100.0,
                        ((x >> 40) % 10000) as f64 / 100.0,
                    ),
                )
            }),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let gf = sample_file();
        let back = GridFile::from_bytes(&gf.to_bytes()).expect("roundtrip");
        back.check_invariants();
        assert_eq!(back.len(), gf.len());
        assert_eq!(back.cells_per_dim(), gf.cells_per_dim());
        assert_eq!(back.n_buckets(), gf.n_buckets());
        // Queries agree.
        let q = Rect::new2(20.0, 20.0, 70.0, 70.0);
        let (_, mut a) = gf.range_query(&q);
        let (_, mut b) = back.range_query(&q);
        a.sort_unstable_by_key(|r| r.id);
        b.sort_unstable_by_key(|r| r.id);
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_via_filesystem() {
        let dir = std::env::temp_dir().join("pargrid_persist_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sample.pgf");
        let gf = sample_file();
        gf.save(&path).expect("save");
        let back = GridFile::load(&path).expect("load");
        assert_eq!(back.len(), gf.len());
        back.check_invariants();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_file().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            GridFile::from_bytes(&bytes),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_file().to_bytes();
        for cut in [3usize, 10, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                GridFile::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_file().to_bytes();
        bytes.push(0);
        assert!(matches!(
            GridFile::from_bytes(&bytes),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupted_record_count_rejected() {
        let mut bytes = sample_file().to_bytes();
        // Header record count at offset 4 + 2 + 2 + 4 + 4 = 16.
        bytes[16] ^= 0xFF;
        let err = GridFile::from_bytes(&bytes).expect_err("must fail");
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
    }

    #[test]
    fn flipped_payload_byte_rejected() {
        // Before the CRC footer, a flipped coordinate byte deep inside a
        // record's payload round-tripped silently (only counts and regions
        // were validated). Now any single-byte flip is Corrupt.
        let gf = sample_file();
        let bytes = gf.to_bytes();
        // A record coordinate somewhere in the middle of the bucket area.
        let pos = bytes.len() / 2;
        let mut copy = bytes.clone();
        copy[pos] ^= 0x10;
        let err = GridFile::from_bytes(&copy).expect_err("flip must be caught");
        assert!(
            matches!(&err, PersistError::Corrupt(msg) if msg.contains("checksum")),
            "{err}"
        );
        // And the footer itself is covered too.
        let mut tail = bytes.clone();
        let last = tail.len() - 1;
        tail[last] ^= 0x01;
        assert!(matches!(
            GridFile::from_bytes(&tail),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn legacy_image_without_footer_still_loads() {
        // An image written before the footer existed: flags 0, no trailing
        // CRC. Simulate one by clearing the flag and stripping the footer.
        let gf = sample_file();
        let mut bytes = gf.to_bytes();
        bytes.truncate(bytes.len() - 4);
        bytes[6] = 0;
        bytes[7] = 0;
        let back = GridFile::from_bytes(&bytes).expect("legacy image loads");
        assert_eq!(back.len(), gf.len());
        back.check_invariants();
    }

    #[test]
    fn empty_grid_file_roundtrips() {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 1.0, 1.0), 4);
        let gf = GridFile::new(cfg);
        let back = GridFile::from_bytes(&gf.to_bytes()).expect("roundtrip");
        assert!(back.is_empty());
        back.check_invariants();
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let cfg = GridConfig::with_capacity(
            Rect::new(Point::new3(0.0, 0.0, 0.0), Point::new3(8.0, 8.0, 8.0)),
            4,
        );
        let mut x = 5u64;
        let gf = GridFile::bulk_load(
            cfg,
            (0..300u64).map(|i| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                Record::new(
                    i,
                    Point::new3(
                        ((x >> 8) % 800) as f64 / 100.0,
                        ((x >> 24) % 800) as f64 / 100.0,
                        ((x >> 40) % 800) as f64 / 100.0,
                    ),
                )
            }),
        );
        let back = GridFile::from_bytes(&gf.to_bytes()).expect("roundtrip");
        back.check_invariants();
        assert_eq!(back.len(), 300);
    }
}
