//! Integer cell regions: the box of grid cells a bucket covers.

use pargrid_geom::MAX_DIM;

/// An inclusive box `[lo, hi]` of integer cell coordinates.
///
/// The grid-file invariant is that every bucket's region is a *box* (a
/// Cartesian product of index intervals) — merging is only ever box-shaped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CellRegion {
    lo: [u32; MAX_DIM],
    hi: [u32; MAX_DIM],
    dim: u8,
}

impl CellRegion {
    /// Creates a region from inclusive corner cells.
    ///
    /// # Panics
    /// Panics if the slices disagree in length, exceed [`MAX_DIM`], or are
    /// inverted on any axis.
    pub fn new(lo: &[u32], hi: &[u32]) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(
            !lo.is_empty() && lo.len() <= MAX_DIM,
            "region dimensionality out of range"
        );
        for i in 0..lo.len() {
            assert!(lo[i] <= hi[i], "inverted region on dim {i}");
        }
        let mut l = [0u32; MAX_DIM];
        let mut h = [0u32; MAX_DIM];
        l[..lo.len()].copy_from_slice(lo);
        h[..hi.len()].copy_from_slice(hi);
        CellRegion {
            lo: l,
            hi: h,
            dim: lo.len() as u8,
        }
    }

    /// A region covering the single cell `cell`.
    pub fn single(cell: &[u32]) -> Self {
        Self::new(cell, cell)
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Inclusive low corner.
    #[inline]
    pub fn lo(&self) -> &[u32] {
        &self.lo[..self.dim as usize]
    }

    /// Inclusive high corner.
    #[inline]
    pub fn hi(&self) -> &[u32] {
        &self.hi[..self.dim as usize]
    }

    /// Number of cells covered along dimension `k`.
    #[inline]
    pub fn span(&self, k: usize) -> u32 {
        self.hi[k] - self.lo[k] + 1
    }

    /// Total number of cells covered.
    pub fn cell_count(&self) -> u64 {
        let mut n = 1u64;
        for k in 0..self.dim as usize {
            n *= self.span(k) as u64;
        }
        n
    }

    /// Whether the region covers exactly one cell.
    #[inline]
    pub fn is_single_cell(&self) -> bool {
        (0..self.dim as usize).all(|k| self.lo[k] == self.hi[k])
    }

    /// Whether the region contains the given cell.
    pub fn contains_cell(&self, cell: &[u32]) -> bool {
        debug_assert_eq!(cell.len(), self.dim as usize);
        (0..self.dim as usize).all(|k| self.lo[k] <= cell[k] && cell[k] <= self.hi[k])
    }

    /// Splits the region into two along dimension `k` after cell offset
    /// `mid` (absolute cell index): the lower part keeps `[lo_k, mid]`,
    /// the upper part gets `[mid+1, hi_k]`.
    ///
    /// # Panics
    /// Panics unless `lo_k <= mid < hi_k`.
    pub fn split_at(&self, k: usize, mid: u32) -> (CellRegion, CellRegion) {
        assert!(
            self.lo[k] <= mid && mid < self.hi[k],
            "split position {mid} not interior to [{}, {}] on dim {k}",
            self.lo[k],
            self.hi[k]
        );
        let mut low = *self;
        let mut high = *self;
        low.hi[k] = mid;
        high.lo[k] = mid + 1;
        (low, high)
    }

    /// Records that the linear scale of dimension `k` split its cell `c`
    /// into cells `c` and `c + 1`: cell indices above `c` shift up, and a
    /// region covering `c` now also covers `c + 1`.
    pub fn apply_scale_split(&mut self, k: usize, c: u32) {
        if self.lo[k] > c {
            self.lo[k] += 1;
        }
        if self.hi[k] >= c {
            self.hi[k] += 1;
        }
    }

    /// Whether `self` and `other` are *buddies*: disjoint boxes whose union
    /// is again a box (adjacent along exactly one axis, identical on all
    /// others). Buddy pairs are the only merge candidates.
    pub fn is_buddy_of(&self, other: &CellRegion) -> bool {
        debug_assert_eq!(self.dim, other.dim);
        let mut adjacent_axis = None;
        for k in 0..self.dim as usize {
            if self.lo[k] == other.lo[k] && self.hi[k] == other.hi[k] {
                continue;
            }
            // Must be adjacent on this axis, and only one such axis allowed.
            let touching = self.hi[k] + 1 == other.lo[k] || other.hi[k] + 1 == self.lo[k];
            if !touching || adjacent_axis.is_some() {
                return false;
            }
            adjacent_axis = Some(k);
        }
        adjacent_axis.is_some()
    }

    /// The union box of two buddy regions.
    ///
    /// # Panics
    /// Panics if the regions are not buddies.
    pub fn merge_with(&self, other: &CellRegion) -> CellRegion {
        assert!(self.is_buddy_of(other), "regions are not buddies");
        let mut out = *self;
        for k in 0..self.dim as usize {
            out.lo[k] = self.lo[k].min(other.lo[k]);
            out.hi[k] = self.hi[k].max(other.hi[k]);
        }
        out
    }

    /// Iterates over all cells in the region in row-major order, invoking
    /// `f` with each cell coordinate.
    pub fn for_each_cell<F: FnMut(&[u32])>(&self, mut f: F) {
        let d = self.dim as usize;
        let mut cur = [0u32; MAX_DIM];
        cur[..d].copy_from_slice(self.lo());
        loop {
            f(&cur[..d]);
            // Odometer increment, last dimension fastest.
            let mut k = d;
            loop {
                if k == 0 {
                    return;
                }
                k -= 1;
                if cur[k] < self.hi[k] {
                    cur[k] += 1;
                    break;
                }
                cur[k] = self.lo[k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = CellRegion::new(&[1, 2], &[3, 2]);
        assert_eq!(r.dim(), 2);
        assert_eq!(r.span(0), 3);
        assert_eq!(r.span(1), 1);
        assert_eq!(r.cell_count(), 3);
        assert!(!r.is_single_cell());
        assert!(CellRegion::single(&[5, 5]).is_single_cell());
    }

    #[test]
    fn contains_cell_works() {
        let r = CellRegion::new(&[1, 1], &[2, 3]);
        assert!(r.contains_cell(&[1, 1]));
        assert!(r.contains_cell(&[2, 3]));
        assert!(!r.contains_cell(&[0, 1]));
        assert!(!r.contains_cell(&[2, 4]));
    }

    #[test]
    fn split_region() {
        let r = CellRegion::new(&[0, 0], &[3, 1]);
        let (lo, hi) = r.split_at(0, 1);
        assert_eq!(lo, CellRegion::new(&[0, 0], &[1, 1]));
        assert_eq!(hi, CellRegion::new(&[2, 0], &[3, 1]));
    }

    #[test]
    #[should_panic(expected = "not interior")]
    fn split_at_boundary_rejected() {
        let r = CellRegion::new(&[0, 0], &[3, 1]);
        let _ = r.split_at(0, 3);
    }

    #[test]
    fn scale_split_shifts() {
        // Scale splits cell 2 on dim 0.
        let mut below = CellRegion::new(&[0, 0], &[1, 0]);
        let mut covering = CellRegion::new(&[1, 1], &[3, 1]);
        let mut above = CellRegion::new(&[3, 2], &[4, 2]);
        below.apply_scale_split(0, 2);
        covering.apply_scale_split(0, 2);
        above.apply_scale_split(0, 2);
        assert_eq!(below, CellRegion::new(&[0, 0], &[1, 0]));
        assert_eq!(covering, CellRegion::new(&[1, 1], &[4, 1]));
        assert_eq!(above, CellRegion::new(&[4, 2], &[5, 2]));
    }

    #[test]
    fn buddy_detection() {
        let a = CellRegion::new(&[0, 0], &[1, 1]);
        let b = CellRegion::new(&[2, 0], &[2, 1]);
        assert!(a.is_buddy_of(&b));
        assert!(b.is_buddy_of(&a));
        let merged = a.merge_with(&b);
        assert_eq!(merged, CellRegion::new(&[0, 0], &[2, 1]));

        // Diagonal: not buddies.
        let c = CellRegion::new(&[2, 2], &[2, 2]);
        assert!(!a.is_buddy_of(&c));
        // Gap: not buddies.
        let d = CellRegion::new(&[3, 0], &[3, 1]);
        assert!(!a.is_buddy_of(&d));
        // Mismatched cross-section: not buddies.
        let e = CellRegion::new(&[2, 0], &[2, 2]);
        assert!(!a.is_buddy_of(&e));
        // Identical: not buddies (overlap, not adjacency).
        assert!(!a.is_buddy_of(&a));
    }

    #[test]
    fn cell_iteration_row_major() {
        let r = CellRegion::new(&[1, 2], &[2, 3]);
        let mut cells = Vec::new();
        r.for_each_cell(|c| cells.push(c.to_vec()));
        assert_eq!(cells, vec![vec![1, 2], vec![1, 3], vec![2, 2], vec![2, 3]]);
    }

    #[test]
    fn cell_iteration_single() {
        let r = CellRegion::single(&[7, 8, 9]);
        let mut cells = Vec::new();
        r.for_each_cell(|c| cells.push(c.to_vec()));
        assert_eq!(cells, vec![vec![7, 8, 9]]);
    }
}
