//! Linear scales: the per-dimension partitions of a grid file.
//!
//! A linear scale divides one axis of the domain `[lo, hi)` into cells by a
//! sorted sequence of interior cut points. Cell `i` covers
//! `[boundary(i), boundary(i+1))` where `boundary(0) = lo` and
//! `boundary(n) = hi`.

/// A one-dimensional partition of `[lo, hi)`.
#[derive(Clone, Debug)]
pub struct LinearScale {
    lo: f64,
    hi: f64,
    /// Sorted interior cut points, all strictly inside `(lo, hi)`.
    cuts: Vec<f64>,
}

impl LinearScale {
    /// Creates a scale with no interior cuts (a single cell).
    ///
    /// # Panics
    /// Panics unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "scale interval is empty: [{lo}, {hi})");
        LinearScale {
            lo,
            hi,
            cuts: Vec::new(),
        }
    }

    /// Creates a scale with the given interior cuts (will be sorted,
    /// deduplicated and validated).
    pub fn with_cuts(lo: f64, hi: f64, mut cuts: Vec<f64>) -> Self {
        let mut s = Self::new(lo, hi);
        cuts.retain(|&c| c > lo && c < hi);
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("cuts must not be NaN"));
        cuts.dedup();
        s.cuts = cuts;
        s
    }

    /// Lower bound of the scale's domain.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the scale's domain.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of cells (always `cuts + 1`).
    #[inline]
    pub fn n_cells(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The sorted interior cut points.
    #[inline]
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// The cell containing coordinate `x`.
    ///
    /// Values below the domain clamp to the first cell, values at or above
    /// `hi` clamp to the last cell — boundary records always land somewhere,
    /// the closed-query convention of the simulator.
    #[inline]
    pub fn cell_of(&self, x: f64) -> usize {
        // partition_point returns the number of cuts <= x, which is exactly
        // the index of the cell whose half-open interval contains x.
        self.cuts.partition_point(|&c| c <= x)
    }

    /// The `[lo, hi)` interval of cell `i`.
    ///
    /// # Panics
    /// Panics if `i >= n_cells()`.
    #[inline]
    pub fn cell_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.n_cells(), "cell index {i} out of range");
        let lo = if i == 0 { self.lo } else { self.cuts[i - 1] };
        let hi = if i == self.cuts.len() {
            self.hi
        } else {
            self.cuts[i]
        };
        (lo, hi)
    }

    /// Inserts a new cut at `x`, splitting the cell that contains it.
    /// Returns the index of the cell that was split (the lower of the two
    /// resulting cells keeps that index; every higher cell shifts up by one).
    ///
    /// # Panics
    /// Panics if `x` is outside `(lo, hi)` or coincides with an existing cut
    /// (which would create an empty cell).
    pub fn insert_cut(&mut self, x: f64) -> usize {
        assert!(
            x > self.lo && x < self.hi,
            "cut {x} outside open interval ({}, {})",
            self.lo,
            self.hi
        );
        let idx = self.cuts.partition_point(|&c| c < x);
        assert!(
            idx == self.cuts.len() || self.cuts[idx] != x,
            "duplicate cut at {x}"
        );
        self.cuts.insert(idx, x);
        idx
    }

    /// Removes the cut between cells `i` and `i + 1`, merging them.
    ///
    /// # Panics
    /// Panics if there is no such cut.
    pub fn remove_cut_after(&mut self, i: usize) {
        assert!(i < self.cuts.len(), "no cut after cell {i}");
        self.cuts.remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_scale() {
        let s = LinearScale::new(0.0, 10.0);
        assert_eq!(s.n_cells(), 1);
        assert_eq!(s.cell_of(0.0), 0);
        assert_eq!(s.cell_of(9.99), 0);
        assert_eq!(s.cell_of(10.0), 0); // clamps
        assert_eq!(s.cell_bounds(0), (0.0, 10.0));
    }

    #[test]
    fn cell_lookup_with_cuts() {
        let s = LinearScale::with_cuts(0.0, 10.0, vec![2.0, 5.0]);
        assert_eq!(s.n_cells(), 3);
        assert_eq!(s.cell_of(0.0), 0);
        assert_eq!(s.cell_of(1.999), 0);
        assert_eq!(s.cell_of(2.0), 1); // boundary belongs to upper cell
        assert_eq!(s.cell_of(4.999), 1);
        assert_eq!(s.cell_of(5.0), 2);
        assert_eq!(s.cell_of(100.0), 2); // clamps
        assert_eq!(s.cell_bounds(1), (2.0, 5.0));
    }

    #[test]
    fn insert_cut_splits_correct_cell() {
        let mut s = LinearScale::with_cuts(0.0, 10.0, vec![5.0]);
        let split = s.insert_cut(2.5);
        assert_eq!(split, 0);
        assert_eq!(s.n_cells(), 3);
        assert_eq!(s.cell_bounds(0), (0.0, 2.5));
        assert_eq!(s.cell_bounds(1), (2.5, 5.0));
        let split = s.insert_cut(7.5);
        assert_eq!(split, 2);
        assert_eq!(s.cell_bounds(3), (7.5, 10.0));
    }

    #[test]
    #[should_panic(expected = "duplicate cut")]
    fn duplicate_cut_rejected() {
        let mut s = LinearScale::with_cuts(0.0, 10.0, vec![5.0]);
        s.insert_cut(5.0);
    }

    #[test]
    #[should_panic(expected = "outside open interval")]
    fn out_of_range_cut_rejected() {
        let mut s = LinearScale::new(0.0, 10.0);
        s.insert_cut(10.0);
    }

    #[test]
    fn remove_cut() {
        let mut s = LinearScale::with_cuts(0.0, 10.0, vec![2.0, 5.0]);
        s.remove_cut_after(0);
        assert_eq!(s.n_cells(), 2);
        assert_eq!(s.cell_bounds(0), (0.0, 5.0));
    }

    #[test]
    fn with_cuts_sanitizes() {
        let s = LinearScale::with_cuts(0.0, 10.0, vec![5.0, 2.0, 5.0, -1.0, 11.0]);
        assert_eq!(s.cuts(), &[2.0, 5.0]);
    }

    #[test]
    fn cell_bounds_tile_domain() {
        let s = LinearScale::with_cuts(0.0, 1.0, vec![0.25, 0.5, 0.75]);
        let mut expected_lo = 0.0;
        for i in 0..s.n_cells() {
            let (lo, hi) = s.cell_bounds(i);
            assert_eq!(lo, expected_lo);
            assert!(hi > lo);
            expected_lo = hi;
        }
        assert_eq!(expected_lo, 1.0);
    }
}
