//! Fixed-width page encoding of bucket contents.
//!
//! The parallel engine ships buckets around as raw disk blocks; this module
//! defines that block format. A page is exactly `page_bytes` long:
//!
//! ```text
//! [u16 record_count] [u16 dim] [records...] [zero padding]
//! record = [u64 id][f64 coord; dim][payload zeros]
//! ```
//!
//! All integers and floats are little-endian. The payload is all zeros — the
//! experiments only measure block counts and sizes, never payload contents —
//! but it is physically present so block sizes match the configured page.

use crate::record::Record;
use pargrid_geom::Point;

/// Page header size in bytes.
pub const HEADER_BYTES: usize = 4;

/// Encodes records into a page with a `page_bytes` data area (the physical
/// block is `HEADER_BYTES` longer — the header rides on top of the data
/// area, so a bucket at capacity fills the data area exactly).
///
/// # Panics
/// Panics if the records do not fit the data area or disagree in
/// dimensionality.
pub fn encode_page(
    records: &[Record],
    dim: usize,
    payload_bytes: usize,
    page_bytes: usize,
) -> Vec<u8> {
    let rec_size = Record::encoded_size(dim, payload_bytes);
    assert!(
        records.len() * rec_size <= page_bytes,
        "{} records of {rec_size} bytes exceed page of {page_bytes}",
        records.len()
    );
    assert!(
        records.len() <= u16::MAX as usize,
        "too many records for header"
    );
    let mut page = vec![0u8; HEADER_BYTES + page_bytes];
    page[0..2].copy_from_slice(&(records.len() as u16).to_le_bytes());
    page[2..4].copy_from_slice(&(dim as u16).to_le_bytes());
    let mut off = HEADER_BYTES;
    for r in records {
        assert_eq!(r.point.dim(), dim, "record dimensionality mismatch");
        page[off..off + 8].copy_from_slice(&r.id.to_le_bytes());
        off += 8;
        for k in 0..dim {
            page[off..off + 8].copy_from_slice(&r.point.get(k).to_le_bytes());
            off += 8;
        }
        off += payload_bytes; // payload left zeroed
    }
    page
}

/// Decodes a page produced by [`encode_page`].
///
/// # Panics
/// Panics if the page is malformed (short page, impossible header).
pub fn decode_page(page: &[u8], payload_bytes: usize) -> Vec<Record> {
    assert!(page.len() >= HEADER_BYTES, "page shorter than header");
    let n = u16::from_le_bytes([page[0], page[1]]) as usize;
    let dim = u16::from_le_bytes([page[2], page[3]]) as usize;
    let rec_size = Record::encoded_size(dim, payload_bytes);
    assert!(
        HEADER_BYTES + n * rec_size <= page.len(),
        "header claims {n} records of {rec_size} bytes in a {} byte page",
        page.len()
    );
    let mut out = Vec::with_capacity(n);
    let mut off = HEADER_BYTES;
    for _ in 0..n {
        let id = u64::from_le_bytes(page[off..off + 8].try_into().expect("slice is 8 bytes"));
        off += 8;
        let mut coords = [0.0f64; pargrid_geom::MAX_DIM];
        for c in coords.iter_mut().take(dim) {
            *c = f64::from_le_bytes(page[off..off + 8].try_into().expect("slice is 8 bytes"));
            off += 8;
        }
        off += payload_bytes;
        out.push(Record::new(id, Point::new(&coords[..dim])));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(i, Point::new3(i as f64, i as f64 * 0.5, -(i as f64))))
            .collect()
    }

    #[test]
    fn roundtrip() {
        let recs = sample_records(10);
        let page = encode_page(&recs, 3, 16, 4096);
        assert_eq!(page.len(), HEADER_BYTES + 4096);
        let back = decode_page(&page, 16);
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_page() {
        let page = encode_page(&[], 2, 0, 512);
        let back = decode_page(&page, 0);
        assert!(back.is_empty());
    }

    #[test]
    fn full_page_exact_fit() {
        // Data area of exactly 4 records of dim 2, no payload.
        let recs: Vec<Record> = (0..4)
            .map(|i| Record::new(i, Point::new2(i as f64, 0.0)))
            .collect();
        let page = encode_page(&recs, 2, 0, 4 * 24);
        assert_eq!(decode_page(&page, 0), recs);
        assert_eq!(page.len(), HEADER_BYTES + 4 * 24);
    }

    #[test]
    #[should_panic(expected = "exceed page")]
    fn overflow_rejected() {
        let recs = sample_records(100);
        let _ = encode_page(&recs, 3, 16, 512);
    }

    #[test]
    #[should_panic(expected = "header claims")]
    fn truncated_page_rejected() {
        let recs = sample_records(10);
        let page = encode_page(&recs, 3, 0, 4096);
        let _ = decode_page(&page[..64], 0);
    }

    #[test]
    fn payload_bytes_are_zero() {
        let recs = sample_records(2);
        let page = encode_page(&recs, 3, 8, 4096);
        // Payload of first record sits right after its coords.
        let start = HEADER_BYTES + 8 + 24;
        assert!(page[start..start + 8].iter().all(|&b| b == 0));
    }

    #[test]
    fn negative_and_special_coords_roundtrip() {
        let recs = vec![
            Record::new(1, Point::new2(-1234.5678, 0.0)),
            Record::new(2, Point::new2(f64::MIN_POSITIVE, 1e300)),
        ];
        let page = encode_page(&recs, 2, 0, 1024);
        assert_eq!(decode_page(&page, 0), recs);
    }
}
