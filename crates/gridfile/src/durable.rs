//! Durable grid file: checkpoint image + write-ahead log.
//!
//! [`DurableGridFile`] wraps a [`GridFile`] with crash recovery. Every
//! mutation is appended to a [`Wal`] (and fsynced) *before* it is applied to
//! the in-memory file — the classical write-ahead discipline — so that after
//! a crash the state can be reconstructed as
//!
//! ```text
//! state = checkpoint image  ⊕  surviving WAL prefix
//! ```
//!
//! [`DurableGridFile::checkpoint`] persists the current file via the PR 4
//! CRC-trailered [`persist`](crate::persist) format (write to a temporary
//! file, then atomically rename over `checkpoint.pgf`) and only then resets
//! the log, so a crash at any point leaves either the old
//! checkpoint + full WAL or the new checkpoint + (possibly stale but
//! harmless) WAL. Replaying an already-checkpointed insert is prevented by
//! the reset; a torn WAL tail is dropped by [`Wal::recover`].

use std::fs;
use std::path::{Path, PathBuf};

use pargrid_geom::Point;

use crate::file::{GridConfig, GridFile, MutationEffect};
use crate::persist::PersistError;
use crate::record::Record;
use crate::wal::{Replay, Wal, WalOp};

/// File name of the checkpoint image inside the durable directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.pgf";
/// File name of the write-ahead log inside the durable directory.
pub const WAL_FILE: &str = "wal.log";

/// A [`GridFile`] with write-ahead logging, checkpointing, and recovery.
#[derive(Debug)]
pub struct DurableGridFile {
    gf: GridFile,
    wal: Wal,
    dir: PathBuf,
    recovered_ops: usize,
    ops_since_checkpoint: usize,
}

impl DurableGridFile {
    /// Opens (or creates) a durable grid file rooted at `dir`.
    ///
    /// Loads `checkpoint.pgf` if present (falling back to an empty file with
    /// `config` otherwise), then replays the surviving prefix of `wal.log`
    /// over it, truncating any torn tail. `config` must match the
    /// checkpointed configuration when one exists; it is only consulted for
    /// a fresh directory.
    pub fn open<P: AsRef<Path>>(dir: P, config: GridConfig) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let ckpt = dir.join(CHECKPOINT_FILE);
        let mut gf = if ckpt.exists() {
            GridFile::load(&ckpt)?
        } else {
            GridFile::new(config)
        };
        let (wal, replay) = Wal::recover(dir.join(WAL_FILE))?;
        let Replay { ops, .. } = replay;
        let recovered_ops = ops.len();
        for op in ops {
            apply(&mut gf, &op);
        }
        Ok(DurableGridFile {
            gf,
            wal,
            dir,
            recovered_ops,
            ops_since_checkpoint: recovered_ops,
        })
    }

    /// Inserts a record: logs it, fsyncs the WAL, then applies it.
    ///
    /// Returns the buckets the insert touched (see [`MutationEffect`]).
    pub fn insert(&mut self, rec: Record) -> Result<MutationEffect, PersistError> {
        self.wal.append(&WalOp::Insert(rec))?;
        self.wal.sync()?;
        self.ops_since_checkpoint += 1;
        Ok(self.gf.insert_tracked(rec))
    }

    /// Deletes the record with `id` at `point`: logs, fsyncs, applies.
    ///
    /// The delete is logged even when the record is absent — replaying a
    /// no-op delete is itself a no-op, and logging first keeps the
    /// write-ahead invariant unconditional.
    pub fn delete(
        &mut self,
        id: u64,
        point: &Point,
    ) -> Result<(bool, MutationEffect), PersistError> {
        self.wal.append(&WalOp::Delete { id, point: *point })?;
        self.wal.sync()?;
        self.ops_since_checkpoint += 1;
        Ok(self.gf.delete_tracked(id, point))
    }

    /// Persists the current state as the new checkpoint and resets the WAL.
    ///
    /// The image is written to a temporary sibling and atomically renamed
    /// over [`CHECKPOINT_FILE`]; only after the rename succeeds is the log
    /// truncated, so a crash anywhere in between recovers correctly (at
    /// worst it replays ops already contained in the new image onto the
    /// *new* image — prevented because reset happens before returning; a
    /// crash between rename and reset replays onto the new image, which is
    /// why recovery applies WAL ops with plain `insert`/`delete`:
    /// re-inserting an existing `(id, point)` pair is filtered below).
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        let tmp = self.dir.join("checkpoint.pgf.tmp");
        self.gf.save(&tmp)?;
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        self.wal.reset()?;
        self.ops_since_checkpoint = 0;
        Ok(())
    }

    /// Read access to the underlying grid file.
    pub fn grid(&self) -> &GridFile {
        &self.gf
    }

    /// Number of WAL operations replayed by [`open`](Self::open).
    pub fn recovered_ops(&self) -> usize {
        self.recovered_ops
    }

    /// Number of operations logged since the last checkpoint (or open).
    pub fn ops_since_checkpoint(&self) -> usize {
        self.ops_since_checkpoint
    }

    /// Directory holding the checkpoint and WAL.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Consumes the wrapper, returning the in-memory grid file.
    pub fn into_grid(self) -> GridFile {
        self.gf
    }

    /// Consumes the wrapper, returning the recovered grid file and the
    /// open WAL (positioned after the surviving prefix). This is the
    /// hand-off point to the parallel engine: the engine takes ownership
    /// of the log and continues the write-ahead discipline itself.
    pub fn into_parts(self) -> (GridFile, Wal) {
        (self.gf, self.wal)
    }
}

/// Applies a recovered WAL operation to `gf`.
///
/// Inserts are idempotence-filtered on `(id, point)`: if a crash lands
/// between the checkpoint rename and the WAL reset, the surviving log still
/// describes ops already folded into the image, and blindly re-inserting
/// them would duplicate records. Deletes are naturally idempotent.
fn apply(gf: &mut GridFile, op: &WalOp) {
    match op {
        WalOp::Insert(rec) => {
            let already = gf
                .bucket_records(gf.bucket_of_point(&rec.point))
                .iter()
                .any(|r| r.id == rec.id && r.point == rec.point);
            if !already {
                gf.insert(*rec);
            }
        }
        WalOp::Delete { id, point } => {
            gf.delete(*id, point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pargrid_geom::Rect;
    use std::fs::OpenOptions;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pargrid-durable-{name}"));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn cfg() -> GridConfig {
        GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4)
    }

    fn rec(i: u64) -> Record {
        let x = 41u64
            .wrapping_mul(6364136223846793005u64.wrapping_mul(i + 1))
            .wrapping_add(1442695040888963407);
        Record::new(
            i,
            Point::new2(
                ((x >> 16) % 10000) as f64 / 100.0,
                ((x >> 40) % 10000) as f64 / 100.0,
            ),
        )
    }

    #[test]
    fn reopen_recovers_unflushed_ops() {
        let dir = tmp_dir("reopen");
        {
            let mut d = DurableGridFile::open(&dir, cfg()).unwrap();
            for i in 0..50 {
                d.insert(rec(i)).unwrap();
            }
            d.delete(7, &rec(7).point).unwrap();
            // No checkpoint: everything lives in the WAL only.
        }
        let d = DurableGridFile::open(&dir, cfg()).unwrap();
        assert_eq!(d.recovered_ops(), 51);
        assert_eq!(d.grid().len(), 49);
        let (_, recs) = d.grid().range_query(&Rect::new2(0.0, 0.0, 100.0, 100.0));
        assert!(recs.iter().all(|r| r.id != 7));
        d.grid().check_invariants();
    }

    #[test]
    fn checkpoint_resets_wal_and_survives_reopen() {
        let dir = tmp_dir("ckpt");
        {
            let mut d = DurableGridFile::open(&dir, cfg()).unwrap();
            for i in 0..30 {
                d.insert(rec(i)).unwrap();
            }
            d.checkpoint().unwrap();
            assert_eq!(d.ops_since_checkpoint(), 0);
            for i in 30..40 {
                d.insert(rec(i)).unwrap();
            }
        }
        let d = DurableGridFile::open(&dir, cfg()).unwrap();
        assert_eq!(d.recovered_ops(), 10, "only post-checkpoint ops replay");
        assert_eq!(d.grid().len(), 40);
        d.grid().check_invariants();
    }

    #[test]
    fn torn_tail_loses_only_the_torn_op() {
        let dir = tmp_dir("torn");
        {
            let mut d = DurableGridFile::open(&dir, cfg()).unwrap();
            for i in 0..20 {
                d.insert(rec(i)).unwrap();
            }
        }
        // Chop 3 bytes off the log: the final record becomes a torn tail.
        let wal_path = dir.join(WAL_FILE);
        let len = fs::metadata(&wal_path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let d = DurableGridFile::open(&dir, cfg()).unwrap();
        assert_eq!(d.recovered_ops(), 19);
        assert_eq!(d.grid().len(), 19);
        let (_, recs) = d.grid().range_query(&Rect::new2(0.0, 0.0, 100.0, 100.0));
        assert!(
            recs.iter().all(|r| r.id != 19),
            "torn insert must not apply"
        );
    }

    #[test]
    fn stale_wal_after_checkpoint_rename_does_not_duplicate() {
        // Simulate a crash BETWEEN the checkpoint rename and the WAL reset:
        // the image already contains the logged ops.
        let dir = tmp_dir("stale-wal");
        {
            let mut d = DurableGridFile::open(&dir, cfg()).unwrap();
            for i in 0..25 {
                d.insert(rec(i)).unwrap();
            }
            // Write the image by hand; leave the WAL untouched.
            d.grid().save(dir.join(CHECKPOINT_FILE)).unwrap();
        }
        let d = DurableGridFile::open(&dir, cfg()).unwrap();
        assert_eq!(
            d.grid().len(),
            25,
            "replaying a folded-in WAL must not duplicate"
        );
        d.grid().check_invariants();
    }

    #[test]
    fn fresh_directory_starts_empty() {
        let dir = tmp_dir("fresh");
        let d = DurableGridFile::open(&dir, cfg()).unwrap();
        assert_eq!(d.grid().len(), 0);
        assert_eq!(d.recovered_ops(), 0);
    }
}
