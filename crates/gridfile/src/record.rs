//! Data records stored in grid-file buckets.

use pargrid_geom::Point;

/// A record: an application-assigned identifier plus its multidimensional
/// key. The (configurable) payload is not materialized — only its size
/// matters for bucket capacity and page layout, which is all the paper's
/// experiments measure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Record {
    /// Application identifier (unique within a file by convention).
    pub id: u64,
    /// The multidimensional key.
    pub point: Point,
}

impl Record {
    /// Creates a record.
    #[inline]
    pub fn new(id: u64, point: Point) -> Self {
        Record { id, point }
    }

    /// Number of bytes this record occupies on a page:
    /// 8 (id) + 8 per coordinate + payload.
    #[inline]
    pub fn encoded_size(dim: usize, payload_bytes: usize) -> usize {
        8 + 8 * dim + payload_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_size_formula() {
        assert_eq!(Record::encoded_size(2, 0), 24);
        assert_eq!(Record::encoded_size(3, 10), 42);
        // The paper's 2-D datasets: ~40 records per 4 KB bucket
        // => ~102-byte records => 78-byte payload.
        assert_eq!(Record::encoded_size(2, 78), 102);
        assert_eq!(4096 / Record::encoded_size(2, 78), 40);
    }
}
