//! The grid directory: a dense d-dimensional array mapping each grid cell to
//! the bucket that stores its records.
//!
//! The directory is stored row-major (dimension 0 most significant). When a
//! linear scale splits, the directory grows along that axis: the slab of the
//! split cell is duplicated, which is exactly the classical grid-file
//! directory-doubling step (localized to one slab).

use pargrid_geom::MAX_DIM;

/// Identifier of a bucket within a grid file.
pub type BucketId = u32;

/// Dense cell-to-bucket map.
#[derive(Clone, Debug)]
pub struct Directory {
    dim: usize,
    sizes: [u32; MAX_DIM],
    entries: Vec<BucketId>,
}

impl Directory {
    /// Creates a 1-cell-per-axis directory whose single cell maps to
    /// bucket 0.
    pub fn new(dim: usize) -> Self {
        assert!(
            (1..=MAX_DIM).contains(&dim),
            "directory dimensionality out of range"
        );
        let mut sizes = [1u32; MAX_DIM];
        sizes[dim..].fill(0);
        Directory {
            dim,
            sizes,
            entries: vec![0],
        }
    }

    /// Dimensionality of the directory.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of cells along each axis.
    #[inline]
    pub fn sizes(&self) -> &[u32] {
        &self.sizes[..self.dim]
    }

    /// Total number of cells.
    #[inline]
    pub fn n_cells(&self) -> usize {
        self.entries.len()
    }

    /// Row-major linear index of a cell.
    #[inline]
    pub fn linear_index(&self, cell: &[u32]) -> usize {
        debug_assert_eq!(cell.len(), self.dim);
        let mut idx = 0usize;
        for k in 0..self.dim {
            debug_assert!(
                cell[k] < self.sizes[k],
                "cell {cell:?} out of directory bounds {:?}",
                self.sizes()
            );
            idx = idx * self.sizes[k] as usize + cell[k] as usize;
        }
        idx
    }

    /// The bucket owning the given cell.
    #[inline]
    pub fn bucket_at(&self, cell: &[u32]) -> BucketId {
        self.entries[self.linear_index(cell)]
    }

    /// Points the given cell at a bucket.
    #[inline]
    pub fn set_bucket_at(&mut self, cell: &[u32], bucket: BucketId) {
        let idx = self.linear_index(cell);
        self.entries[idx] = bucket;
    }

    /// Grows the directory after the scale of dimension `k` split its cell
    /// `c` into `c` and `c + 1`. The new slab `c + 1` starts as a copy of
    /// slab `c` (both halves of a split cell initially share the bucket).
    pub fn grow(&mut self, k: usize, c: u32) {
        assert!(k < self.dim, "dimension {k} out of range");
        assert!(c < self.sizes[k], "cell {c} out of range on dim {k}");
        let old_sizes = self.sizes;
        let mut new_sizes = old_sizes;
        new_sizes[k] += 1;

        let total_new: usize = new_sizes[..self.dim].iter().map(|&s| s as usize).product();
        let mut new_entries = vec![0; total_new];

        // Walk the new array, mapping each new cell back to its source cell
        // in the old array: index > c+1 shifts down by one; index c+1 maps
        // to old c.
        let mut cell = [0u32; MAX_DIM];
        for (new_idx, slot) in new_entries.iter_mut().enumerate() {
            // Decode new_idx into cell coordinates under new_sizes.
            let mut rem = new_idx;
            for kk in (0..self.dim).rev() {
                cell[kk] = (rem % new_sizes[kk] as usize) as u32;
                rem /= new_sizes[kk] as usize;
            }
            let mut old_cell = cell;
            if old_cell[k] > c {
                old_cell[k] -= 1;
            }
            // Encode old_cell under old_sizes.
            let mut old_idx = 0usize;
            for kk in 0..self.dim {
                old_idx = old_idx * old_sizes[kk] as usize + old_cell[kk] as usize;
            }
            *slot = self.entries[old_idx];
        }

        self.sizes = new_sizes;
        self.entries = new_entries;
    }

    /// Iterates over every `(cell, bucket)` pair.
    pub fn for_each<F: FnMut(&[u32], BucketId)>(&self, mut f: F) {
        let mut cell = [0u32; MAX_DIM];
        for (idx, &b) in self.entries.iter().enumerate() {
            let mut rem = idx;
            for kk in (0..self.dim).rev() {
                cell[kk] = (rem % self.sizes[kk] as usize) as u32;
                rem /= self.sizes[kk] as usize;
            }
            f(&cell[..self.dim], b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_directory() {
        let d = Directory::new(2);
        assert_eq!(d.sizes(), &[1, 1]);
        assert_eq!(d.n_cells(), 1);
        assert_eq!(d.bucket_at(&[0, 0]), 0);
    }

    #[test]
    fn grow_duplicates_slab() {
        let mut d = Directory::new(2);
        // Split dim 0 cell 0: grid is now 2x1.
        d.grow(0, 0);
        assert_eq!(d.sizes(), &[2, 1]);
        assert_eq!(d.bucket_at(&[0, 0]), 0);
        assert_eq!(d.bucket_at(&[1, 0]), 0);

        d.set_bucket_at(&[1, 0], 7);
        // Split dim 1 cell 0: 2x2, column duplicated.
        d.grow(1, 0);
        assert_eq!(d.sizes(), &[2, 2]);
        assert_eq!(d.bucket_at(&[0, 0]), 0);
        assert_eq!(d.bucket_at(&[0, 1]), 0);
        assert_eq!(d.bucket_at(&[1, 0]), 7);
        assert_eq!(d.bucket_at(&[1, 1]), 7);
    }

    #[test]
    fn grow_shifts_upper_slabs() {
        let mut d = Directory::new(1);
        d.grow(0, 0); // cells: [a, a]
        d.set_bucket_at(&[0], 1);
        d.set_bucket_at(&[1], 2);
        d.grow(0, 0); // split cell 0 -> [1, 1, 2]
        assert_eq!(d.sizes(), &[3]);
        assert_eq!(d.bucket_at(&[0]), 1);
        assert_eq!(d.bucket_at(&[1]), 1);
        assert_eq!(d.bucket_at(&[2]), 2);
    }

    #[test]
    fn linear_index_row_major() {
        let mut d = Directory::new(3);
        d.grow(0, 0);
        d.grow(1, 0);
        d.grow(2, 0);
        // sizes 2x2x2; last dim fastest.
        assert_eq!(d.linear_index(&[0, 0, 0]), 0);
        assert_eq!(d.linear_index(&[0, 0, 1]), 1);
        assert_eq!(d.linear_index(&[0, 1, 0]), 2);
        assert_eq!(d.linear_index(&[1, 0, 0]), 4);
        assert_eq!(d.linear_index(&[1, 1, 1]), 7);
    }

    #[test]
    fn for_each_visits_all_cells() {
        let mut d = Directory::new(2);
        d.grow(0, 0);
        d.grow(1, 0);
        let mut count = 0;
        let mut cells = Vec::new();
        d.for_each(|cell, _| {
            count += 1;
            cells.push(cell.to_vec());
        });
        assert_eq!(count, 4);
        cells.sort();
        cells.dedup();
        assert_eq!(cells.len(), 4);
    }
}
