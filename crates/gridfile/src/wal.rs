//! Write-ahead log for grid-file mutations.
//!
//! Every [`crate::GridFile::insert`]/[`crate::GridFile::delete`] routed
//! through a [`Wal`] is first appended as one framed record, so a crash at
//! any point leaves the on-disk state recoverable: replay the log over the
//! last checkpoint image and the file is exactly where the surviving
//! operations left it.
//!
//! ## Record framing
//!
//! Each record reuses the CRC-32 footer discipline of the persist format
//! (PR 4): the checksum covers everything before it, so a flipped byte
//! anywhere in the record is caught before the operation is applied.
//!
//! ```text
//! +---------+--------+------------------+-----------+
//! | len u32 | op u8  | payload          | crc32 u32 |
//! +---------+--------+------------------+-----------+
//!   little-   1=insert  id u64, dim u16,   over len +
//!   endian,   2=delete  dim x f64 coords   op + payload
//!   len = 1 + payload
//! ```
//!
//! ## Torn tails
//!
//! A crash mid-append leaves a partial record at the end of the log.
//! [`Wal::replay`] applies records strictly in order and stops at the first
//! one that is incomplete, oversized, corrupt, or malformed — the torn tail
//! is *tolerated*, never applied. [`Wal::open_append`] then truncates the
//! file back to the last valid boundary so new appends never interleave
//! with garbage.
//!
//! Appends reach the OS on return (`write_all` on an unbuffered file);
//! [`Wal::sync`] additionally forces them to stable storage — checkpoints
//! call it before truncating, deployments that must survive power loss call
//! it per batch.

use crate::checksum::crc32;
use crate::record::Record;
use pargrid_geom::{Point, MAX_DIM};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Op tag of an insert record.
const OP_INSERT: u8 = 1;
/// Op tag of a delete record.
const OP_DELETE: u8 = 2;

/// Largest legal `len` field: op byte + id + dim + `MAX_DIM` coordinates.
/// Anything larger is treated as a torn/corrupt tail, bounding what replay
/// will ever try to read.
const MAX_RECORD_LEN: u32 = (1 + 8 + 2 + 8 * MAX_DIM) as u32;

/// One logged mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// Insert this record.
    Insert(Record),
    /// Delete the record with this id at this key.
    Delete {
        /// Application id of the record to remove.
        id: u64,
        /// Its multidimensional key.
        point: Point,
    },
}

impl WalOp {
    /// Encodes the op as one framed WAL record (length header, op tag,
    /// payload, CRC-32 footer).
    pub fn encode(&self) -> Vec<u8> {
        let (op, id, point) = match self {
            WalOp::Insert(r) => (OP_INSERT, r.id, &r.point),
            WalOp::Delete { id, point } => (OP_DELETE, *id, point),
        };
        let dim = point.dim();
        let len = (1 + 8 + 2 + 8 * dim) as u32;
        let mut out = Vec::with_capacity(4 + len as usize + 4);
        out.extend_from_slice(&len.to_le_bytes());
        out.push(op);
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&(dim as u16).to_le_bytes());
        for k in 0..dim {
            out.extend_from_slice(&point.get(k).to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes the body (op tag + payload, no length header or CRC) of one
    /// record. `None` on any structural problem — unknown op, bad dim,
    /// non-finite coordinate, trailing bytes.
    fn decode_body(body: &[u8]) -> Option<WalOp> {
        let (&op, rest) = body.split_first()?;
        if rest.len() < 10 {
            return None;
        }
        let id = u64::from_le_bytes(rest[0..8].try_into().ok()?);
        let dim = u16::from_le_bytes(rest[8..10].try_into().ok()?) as usize;
        if dim == 0 || dim > MAX_DIM || rest.len() != 10 + 8 * dim {
            return None;
        }
        let mut coords = [0.0f64; MAX_DIM];
        for (k, slot) in coords[..dim].iter_mut().enumerate() {
            let at = 10 + 8 * k;
            *slot = f64::from_le_bytes(rest[at..at + 8].try_into().ok()?);
            if !slot.is_finite() {
                return None;
            }
        }
        let point = Point::new(&coords[..dim]);
        match op {
            OP_INSERT => Some(WalOp::Insert(Record::new(id, point))),
            OP_DELETE => Some(WalOp::Delete { id, point }),
            _ => None,
        }
    }
}

/// Outcome of replaying a log file: the decodable prefix of operations and
/// where it ends.
#[derive(Debug, Default)]
pub struct Replay {
    /// Operations of the surviving prefix, in append order.
    pub ops: Vec<WalOp>,
    /// Byte offset of the end of the last valid record — everything past it
    /// is a torn or corrupt tail.
    pub valid_bytes: u64,
    /// Whether bytes past `valid_bytes` existed (a torn tail was dropped).
    pub torn: bool,
}

/// An append-only write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes of valid log currently on disk.
    len: u64,
}

impl Wal {
    /// Decodes the surviving prefix of the log at `path`. A missing file
    /// replays as empty. Stops at the first incomplete, oversized, corrupt,
    /// or structurally invalid record — the torn-tail guarantee: a crash
    /// mid-append can only cost the operations that had not finished
    /// appending.
    pub fn replay<P: AsRef<Path>>(path: P) -> io::Result<Replay> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut replay = Replay::default();
        let mut at = 0usize;
        while bytes.len() - at >= 4 {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            if len == 0 || len > MAX_RECORD_LEN {
                break;
            }
            let total = 4 + len as usize + 4;
            if bytes.len() - at < total {
                break;
            }
            let frame = &bytes[at..at + total];
            let stored = u32::from_le_bytes(frame[total - 4..].try_into().expect("4 bytes"));
            if crc32(&frame[..total - 4]) != stored {
                break;
            }
            let Some(op) = WalOp::decode_body(&frame[4..total - 4]) else {
                break;
            };
            replay.ops.push(op);
            at += total;
        }
        replay.valid_bytes = at as u64;
        replay.torn = at < bytes.len();
        Ok(replay)
    }

    /// Opens the log for appending, truncating anything past `valid_bytes`
    /// (the torn tail found by [`Wal::replay`]) so new records never follow
    /// garbage. Creates the file when missing.
    pub fn open_append<P: Into<PathBuf>>(path: P, valid_bytes: u64) -> io::Result<Wal> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        if file.metadata()?.len() > valid_bytes {
            file.set_len(valid_bytes)?;
        }
        Ok(Wal {
            file,
            path,
            len: valid_bytes,
        })
    }

    /// Replays the log and opens it for appending in one step, returning
    /// the surviving operations alongside the positioned log.
    pub fn recover<P: Into<PathBuf>>(path: P) -> io::Result<(Wal, Replay)> {
        let path = path.into();
        let replay = Self::replay(&path)?;
        let wal = Self::open_append(path, replay.valid_bytes)?;
        Ok((wal, replay))
    }

    /// Appends one operation. The record is fully written (or the error
    /// surfaces) before the caller applies the mutation in memory —
    /// write-ahead order.
    pub fn append(&mut self, op: &WalOp) -> io::Result<()> {
        let frame = op.encode();
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Forces appended records to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Truncates the log to empty — called after a checkpoint image has
    /// durably captured every logged operation.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.file.set_len(0)?;
        self.len = 0;
        Ok(())
    }

    /// Bytes of valid log on disk.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert(Record::new(1, Point::new2(10.0, 20.0))),
            WalOp::Insert(Record::new(2, Point::new2(30.0, 40.0))),
            WalOp::Delete {
                id: 1,
                point: Point::new2(10.0, 20.0),
            },
        ]
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("pargrid-wal-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 0).unwrap();
        for op in ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.ops, ops());
        assert!(!replay.torn);
        assert_eq!(replay.valid_bytes, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = std::env::temp_dir().join("pargrid-wal-torn");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 0).unwrap();
        for op in ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let one = ops()[0].encode().len();
        // Cut mid-way through the second record.
        std::fs::write(&path, &full[..one + 7]).unwrap();
        let (wal, replay) = Wal::recover(&path).unwrap();
        assert_eq!(replay.ops, ops()[..1]);
        assert!(replay.torn);
        assert_eq!(wal.len_bytes(), one as u64);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), one as u64);
    }

    #[test]
    fn bit_flip_stops_replay_before_the_flipped_record() {
        let all = ops();
        let mut bytes = Vec::new();
        let mut starts = Vec::new();
        for op in &all {
            starts.push(bytes.len());
            bytes.extend_from_slice(&op.encode());
        }
        let dir = std::env::temp_dir().join("pargrid-wal-flip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        // Flip one byte in the middle record: replay must keep record 0
        // and never apply record 1 (or anything after it).
        let mut mangled = bytes.clone();
        mangled[starts[1] + 9] ^= 0x40;
        std::fs::write(&path, &mangled).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.ops, all[..1]);
        assert!(replay.torn);
    }

    #[test]
    fn oversized_length_field_is_a_torn_tail_not_a_huge_read() {
        let dir = std::env::temp_dir().join("pargrid-wal-oversize");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut bytes = ops()[0].encode();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0xab; 16]);
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.ops.len(), 1);
        assert!(replay.torn);
    }

    #[test]
    fn missing_file_replays_empty() {
        let replay = Wal::replay("/nonexistent/definitely/not/here.log").unwrap();
        assert!(replay.ops.is_empty());
        assert_eq!(replay.valid_bytes, 0);
        assert!(!replay.torn);
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = std::env::temp_dir().join("pargrid-wal-reset");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 0).unwrap();
        wal.append(&ops()[0]).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        wal.append(&ops()[1]).unwrap();
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.ops, ops()[1..2]);
    }
}
