//! Property-based tests of the WAL/recovery invariants.
//!
//! The crash model: a crash truncates the log at an arbitrary *byte*
//! (fsync guarantees nothing about alignment to record boundaries), and
//! storage may flip bits at rest. Recovery must equal replaying exactly
//! the surviving prefix of whole records — established here against an
//! oracle of independently tracked per-record encoded lengths, never by
//! trusting the replay code to know its own boundaries.

use pargrid_geom::{Point, Rect};
use pargrid_gridfile::durable::DurableGridFile;
use pargrid_gridfile::{GridConfig, GridFile, Record, Wal, WalOp};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One generated mutation, pre-encoding: `(kind, id, x, y, pick)`.
/// `kind < 3` inserts `(id, x, y)` — insert-heavy logs exercise more
/// splits; `kind == 3` deletes the `pick`-th earlier insert (mod count),
/// falling back to a guaranteed miss when nothing was inserted yet. (The
/// compat proptest has no `prop_map`, so generation stays raw tuples.)
type RawOp = (u8, u64, f64, f64, usize);

fn raw_op() -> impl Strategy<Value = RawOp> {
    (0u8..4, 0u64..64, 0.0f64..100.0, 0.0f64..100.0, 0usize..16)
}

fn to_wal_ops(raw: &[RawOp]) -> Vec<WalOp> {
    let mut inserts: Vec<(u64, Point)> = Vec::new();
    let mut out = Vec::with_capacity(raw.len());
    for &(kind, id, x, y, pick) in raw {
        if kind < 3 {
            let p = Point::new2(x, y);
            inserts.push((id, p));
            out.push(WalOp::Insert(Record::new(id, p)));
        } else {
            let (id, point) = if inserts.is_empty() {
                (u64::MAX, Point::new2(0.5, 0.5))
            } else {
                inserts[pick % inserts.len()]
            };
            out.push(WalOp::Delete { id, point });
        }
    }
    out
}

fn apply_to(gf: &mut GridFile, ops: &[WalOp]) {
    for op in ops {
        match op {
            WalOp::Insert(rec) => {
                gf.insert(*rec);
            }
            WalOp::Delete { id, point } => {
                gf.delete(*id, point);
            }
        }
    }
}

/// Full-domain record snapshot, sorted for multiset comparison.
fn snapshot(gf: &GridFile) -> Vec<(u64, u64, u64)> {
    let (_, recs) = gf.range_query(&Rect::new2(0.0, 0.0, 100.0, 100.0));
    let mut out: Vec<(u64, u64, u64)> = recs
        .iter()
        .map(|r| (r.id, r.point.get(0).to_bits(), r.point.get(1).to_bits()))
        .collect();
    out.sort_unstable();
    out
}

fn scratch(label: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "pargrid-walprop-{label}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

fn cfg() -> GridConfig {
    GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crashing at EVERY byte offset of the log replays exactly the ops
    /// whose records fit wholly below the cut — verified against the
    /// cumulative encoded-length oracle, for both the op list and the
    /// reported `valid_bytes` boundary.
    #[test]
    fn crash_at_every_byte_boundary_replays_the_surviving_prefix(
        gen in prop::collection::vec(raw_op(), 1..8),
    ) {
        let ops = to_wal_ops(&gen);
        // Oracle: end offset of each record, tracked independently of the
        // replay loop by encoding each op on its own.
        let mut bytes = Vec::new();
        let mut ends = Vec::with_capacity(ops.len());
        for op in &ops {
            bytes.extend_from_slice(&op.encode());
            ends.push(bytes.len());
        }
        let dir = scratch("boundary");
        let path = dir.join("wal.log");
        for cut in 0..=bytes.len() {
            let survivors = ends.iter().take_while(|&&e| e <= cut).count();
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let replay = Wal::replay(&path).unwrap();
            prop_assert_eq!(
                &replay.ops[..], &ops[..survivors],
                "cut at byte {} must replay exactly {} ops", cut, survivors
            );
            let boundary = if survivors == 0 { 0 } else { ends[survivors - 1] as u64 };
            prop_assert_eq!(replay.valid_bytes, boundary);
            prop_assert_eq!(replay.torn, cut as u64 > boundary);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Interleaved insert/delete/checkpoint, then a crash at every byte
    /// of the post-checkpoint log: reopening recovers to checkpointed
    /// state ⊕ surviving prefix, with zero lost or duplicated records.
    #[test]
    fn recovery_equals_checkpoint_plus_surviving_prefix(
        gen in prop::collection::vec(raw_op(), 1..7),
        ckpt_at_raw in 0usize..8,
    ) {
        let ops = to_wal_ops(&gen);
        let ckpt_at = ckpt_at_raw % (ops.len() + 1);
        let dir = scratch("durable");
        {
            let mut d = DurableGridFile::open(&dir, cfg()).unwrap();
            for op in &ops[..ckpt_at] {
                match op {
                    WalOp::Insert(rec) => { d.insert(*rec).unwrap(); }
                    WalOp::Delete { id, point } => { d.delete(*id, point).unwrap(); }
                }
            }
            d.checkpoint().unwrap();
            for op in &ops[ckpt_at..] {
                match op {
                    WalOp::Insert(rec) => { d.insert(*rec).unwrap(); }
                    WalOp::Delete { id, point } => { d.delete(*id, point).unwrap(); }
                }
            }
        }
        let wal_path = dir.join("wal.log");
        let wal_bytes = std::fs::read(&wal_path).unwrap();
        // Independent length oracle over the post-checkpoint suffix.
        let post = &ops[ckpt_at..];
        let mut ends = Vec::with_capacity(post.len());
        let mut total = 0usize;
        for op in post {
            total += op.encode().len();
            ends.push(total);
        }
        prop_assert_eq!(total, wal_bytes.len(), "WAL holds exactly the post-checkpoint ops");

        for cut in 0..=wal_bytes.len() {
            std::fs::write(&wal_path, &wal_bytes[..cut]).unwrap();
            let d = DurableGridFile::open(&dir, cfg()).unwrap();
            let survivors = ends.iter().take_while(|&&e| e <= cut).count();
            prop_assert_eq!(d.recovered_ops(), survivors);
            let mut expect = GridFile::new(cfg());
            apply_to(&mut expect, &ops[..ckpt_at]);
            apply_to(&mut expect, &post[..survivors]);
            prop_assert_eq!(
                snapshot(d.grid()), snapshot(&expect),
                "cut at byte {} of {}: recovered state must equal checkpoint + {} surviving ops",
                cut, wal_bytes.len(), survivors
            );
            d.grid().check_invariants();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A flipped bit anywhere in the log is caught by the CRC (or the
    /// structural checks behind it): replay still returns a clean prefix
    /// of the original ops — a corrupted record is never applied, and
    /// never decodes into a *different* op.
    #[test]
    fn bit_flips_are_detected_never_silently_applied(
        gen in prop::collection::vec(raw_op(), 1..8),
        flip_at_raw in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let ops = to_wal_ops(&gen);
        let mut bytes = Vec::new();
        let mut ends = Vec::with_capacity(ops.len());
        for op in &ops {
            bytes.extend_from_slice(&op.encode());
            ends.push(bytes.len());
        }
        let flip_at = flip_at_raw % bytes.len();
        bytes[flip_at] ^= 1 << flip_bit;
        // First record whose bytes include the flip: nothing from it on
        // may replay.
        let first_hit = ends.iter().take_while(|&&e| e <= flip_at).count();

        let dir = scratch("flip");
        let path = dir.join("wal.log");
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        prop_assert!(
            replay.ops.len() <= first_hit,
            "record {} contains the flipped byte {} but {} ops replayed",
            first_hit, flip_at, replay.ops.len()
        );
        prop_assert_eq!(
            &replay.ops[..], &ops[..replay.ops.len()],
            "replay after a flip must still be an exact prefix of the original ops"
        );
        prop_assert!(replay.torn, "the dropped tail must be reported");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `recover` truncates the torn tail and positions appends at the
    /// boundary: logging fresh ops after a crash replays as surviving
    /// prefix + new ops, never interleaved with garbage.
    #[test]
    fn appends_after_recovery_follow_the_surviving_prefix(
        gen in prop::collection::vec(raw_op(), 1..8),
        cut_back in 1usize..40,
        extra_id in 0u64..64,
    ) {
        let ops = to_wal_ops(&gen);
        let dir = scratch("reappend");
        let path = dir.join("wal.log");
        let mut wal = Wal::open_append(&path, 0).unwrap();
        let mut ends = Vec::with_capacity(ops.len());
        for op in &ops {
            wal.append(op).unwrap();
            ends.push(wal.len_bytes());
        }
        drop(wal);
        let full = std::fs::metadata(&path).unwrap().len();
        let cut = full.saturating_sub(cut_back as u64);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let (mut wal, replay) = Wal::recover(&path).unwrap();
        let survivors = ends.iter().take_while(|&&e| e <= cut).count();
        prop_assert_eq!(&replay.ops[..], &ops[..survivors]);
        let fresh = WalOp::Insert(Record::new(extra_id, Point::new2(1.5, 2.5)));
        wal.append(&fresh).unwrap();
        drop(wal);

        let after = Wal::replay(&path).unwrap();
        let mut expect = ops[..survivors].to_vec();
        expect.push(fresh);
        prop_assert_eq!(after.ops, expect);
        prop_assert!(!after.torn);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
