//! Property-based tests on grid-file invariants.

use pargrid_geom::{Point, Rect};
use pargrid_gridfile::{GridConfig, GridFile, Record};
use proptest::prelude::*;

fn build_file(points: &[(f64, f64)], capacity: usize) -> GridFile {
    let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 1000.0, 1000.0), capacity);
    GridFile::bulk_load(
        cfg,
        points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Record::new(i as u64, Point::new2(x, y))),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_after_random_inserts(
        points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 0..400),
        capacity in 2usize..20,
    ) {
        let gf = build_file(&points, capacity);
        gf.check_invariants();
        prop_assert_eq!(gf.len(), points.len() as u64);
    }

    #[test]
    fn every_point_remains_findable(
        points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..200),
        capacity in 2usize..10,
    ) {
        let gf = build_file(&points, capacity);
        for (i, &(x, y)) in points.iter().enumerate() {
            let found = gf.lookup(&Point::new2(x, y));
            prop_assert!(
                found.iter().any(|r| r.id == i as u64),
                "record {i} at ({x}, {y}) lost"
            );
        }
    }

    #[test]
    fn range_query_matches_brute_force(
        points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 0..200),
        capacity in 2usize..10,
        qx in 0.0f64..900.0,
        qy in 0.0f64..900.0,
        qw in 0.0f64..500.0,
        qh in 0.0f64..500.0,
    ) {
        let gf = build_file(&points, capacity);
        let q = Rect::new2(qx, qy, qx + qw, qy + qh);
        let (buckets, recs) = gf.range_query(&q);
        let expected: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|&(_, &(x, y))| q.contains_closed(&Point::new2(x, y)))
            .map(|(i, _)| i)
            .collect();
        let mut got: Vec<usize> = recs.iter().map(|r| r.id as usize).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        // Bucket list is sorted and unique.
        let mut sorted = buckets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(buckets, sorted);
    }

    #[test]
    fn bucket_regions_partition_the_grid(
        points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 0..300),
        capacity in 2usize..8,
    ) {
        // Sum of region cell counts over live buckets == total cells.
        let gf = build_file(&points, capacity);
        let total: u64 = gf.live_buckets().map(|(_, r, _)| r.cell_count()).sum();
        prop_assert_eq!(total, gf.stats().n_cells);
    }

    #[test]
    fn deletions_restore_emptiness(
        points in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 1..150),
        capacity in 2usize..8,
    ) {
        let mut gf = build_file(&points, capacity);
        for (i, &(x, y)) in points.iter().enumerate() {
            prop_assert!(gf.delete(i as u64, &Point::new2(x, y)));
        }
        prop_assert!(gf.is_empty());
        gf.check_invariants();
    }

    #[test]
    fn partial_match_matches_brute_force(
        points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..200),
        capacity in 2usize..8,
        pick in 0usize..200,
    ) {
        let gf = build_file(&points, capacity);
        // Query one existing x value with y unspecified.
        let x = points[pick % points.len()].0;
        let (_, recs) = gf.partial_match(&[Some(x), None]);
        let expected = points.iter().filter(|&&(px, _)| px == x).count();
        prop_assert_eq!(recs.len(), expected);
    }
}

/// Grid files over 3-D data keep invariants too (regression guard for the
/// odometer loops that are easy to get wrong beyond 2-D).
#[test]
fn three_dimensional_file() {
    let cfg = GridConfig::with_capacity(
        Rect::new(Point::new3(0.0, 0.0, 0.0), Point::new3(10.0, 10.0, 10.0)),
        4,
    );
    let mut x = 42u64;
    let recs: Vec<Record> = (0..800u64)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 8) % 1000) as f64 / 100.0;
            let b = ((x >> 24) % 1000) as f64 / 100.0;
            let c = ((x >> 40) % 1000) as f64 / 100.0;
            Record::new(i, Point::new3(a, b, c))
        })
        .collect();
    let gf = GridFile::bulk_load(cfg, recs.iter().copied());
    gf.check_invariants();
    assert_eq!(gf.len(), 800);
    let q = Rect::new(Point::new3(2.0, 2.0, 2.0), Point::new3(8.0, 8.0, 8.0));
    let (_, got) = gf.range_query(&q);
    let expected = recs.iter().filter(|r| q.contains_closed(&r.point)).count();
    assert_eq!(got.len(), expected);
}
