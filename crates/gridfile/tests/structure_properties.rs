//! Property tests for the lower-level grid-file structures: directory
//! growth, page codec, scales and persistence.

use pargrid_geom::{Point, Rect};
use pargrid_gridfile::page::{decode_page, encode_page};
use pargrid_gridfile::{Directory, GridConfig, GridFile, LinearScale, Record};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random sequences of directory growths keep every cell mapped and
    /// agree with a naive model.
    #[test]
    fn directory_growth_matches_naive_model(
        splits in prop::collection::vec((0usize..2, 0u32..6), 0..10),
    ) {
        let mut dir = Directory::new(2);
        // Naive model: 2-D vector of bucket ids.
        let mut model: Vec<Vec<u32>> = vec![vec![0]];
        for (step, (k, c)) in splits.into_iter().enumerate() {
            let stamp = step as u32 + 1;
            let sizes = [model.len() as u32, model[0].len() as u32];
            let c = c % sizes[k];
            dir.grow(k, c);
            match k {
                0 => model.insert(c as usize + 1, model[c as usize].clone()),
                _ => {
                    for row in &mut model {
                        let v = row[c as usize];
                        row.insert(c as usize + 1, v);
                    }
                }
            }
            // Mutate one random-ish cell through both representations so
            // later splits propagate non-trivial content.
            let x = (stamp as usize * 7) % model.len();
            let y = (stamp as usize * 13) % model[0].len();
            dir.set_bucket_at(&[x as u32, y as u32], stamp);
            model[x][y] = stamp;
        }
        prop_assert_eq!(dir.sizes(), &[model.len() as u32, model[0].len() as u32]);
        for (x, row) in model.iter().enumerate() {
            for (y, &b) in row.iter().enumerate() {
                prop_assert_eq!(dir.bucket_at(&[x as u32, y as u32]), b);
            }
        }
    }

    /// Page encode/decode round-trips arbitrary records.
    #[test]
    fn page_roundtrip(
        coords in prop::collection::vec((any::<u64>(), -1e9f64..1e9, -1e9f64..1e9), 0..40),
        payload in 0usize..32,
    ) {
        let records: Vec<Record> = coords
            .iter()
            .map(|&(id, x, y)| Record::new(id, Point::new2(x, y)))
            .collect();
        let rec_size = Record::encoded_size(2, payload);
        let page = encode_page(&records, 2, payload, 40 * rec_size);
        prop_assert_eq!(decode_page(&page, payload), records);
    }

    /// Scales: cell_of is the inverse of cell_bounds on interior points.
    #[test]
    fn scale_cell_of_inverts_bounds(
        cuts in prop::collection::vec(0.01f64..0.99, 0..12),
        probe in 0.0f64..1.0,
    ) {
        let s = LinearScale::with_cuts(0.0, 1.0, cuts);
        let cell = s.cell_of(probe);
        let (lo, hi) = s.cell_bounds(cell);
        prop_assert!(lo <= probe && (probe < hi || probe >= s.hi() - f64::EPSILON));
        // Bounds tile the domain.
        let mut edge = 0.0;
        for i in 0..s.n_cells() {
            let (lo, hi) = s.cell_bounds(i);
            prop_assert_eq!(lo, edge);
            prop_assert!(hi > lo);
            edge = hi;
        }
        prop_assert_eq!(edge, 1.0);
    }

    /// Persistence round-trips arbitrary files built from random points.
    #[test]
    fn persist_roundtrip(
        points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..200),
        capacity in 2usize..10,
    ) {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), capacity);
        let gf = GridFile::bulk_load(
            cfg,
            points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| Record::new(i as u64, Point::new2(x, y))),
        );
        let back = GridFile::from_bytes(&gf.to_bytes()).expect("roundtrip");
        back.check_invariants();
        prop_assert_eq!(back.len(), gf.len());
        prop_assert_eq!(back.cells_per_dim(), gf.cells_per_dim());
        // A probe query agrees.
        let q = Rect::new2(10.0, 10.0, 60.0, 60.0);
        let (b1, r1) = gf.range_query(&q);
        let (_b2, r2) = back.range_query(&q);
        let mut ids1: Vec<u64> = r1.iter().map(|r| r.id).collect();
        let mut ids2: Vec<u64> = r2.iter().map(|r| r.id).collect();
        ids1.sort_unstable();
        ids2.sort_unstable();
        prop_assert_eq!(ids1, ids2);
        let any_inside = points
            .iter()
            .any(|&(x, y)| (10.0..=60.0).contains(&x) && (10.0..=60.0).contains(&y));
        prop_assert!(!b1.is_empty() || !any_inside);
    }

    /// Random corruption of a persisted image never panics: it either fails
    /// cleanly or yields a file that still satisfies its own invariants.
    #[test]
    fn persist_rejects_or_survives_corruption(
        flip_at in 0usize..4096,
        flip_bits in 1u8..=255,
    ) {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 100.0, 100.0), 4);
        let gf = GridFile::bulk_load(
            cfg,
            (0..100u64).map(|i| {
                Record::new(i, Point::new2((i % 10) as f64 * 9.9, (i / 10) as f64 * 9.9))
            }),
        );
        let mut bytes = gf.to_bytes();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= flip_bits;
        // Must not panic; Ok is acceptable when the flipped byte is benign
        // (e.g. inside a record coordinate).
        if let Ok(loaded) = GridFile::from_bytes(&bytes) {
            prop_assert_eq!(loaded.cells_per_dim().len(), 2);
        }
    }
}
