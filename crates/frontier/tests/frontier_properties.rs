//! Property-based coverage for the frontier subsystem: onion-curve
//! bijectivity and locality, latin-square structure and balance, and
//! soundness of the gap oracle.

use pargrid_core::{latin, DeclusterInput, DeclusterMethod};
use pargrid_frontier::{Adversary, LowerBound};
use pargrid_geom::{OnionCurve, Point, Rect, SpaceFillingCurve};
use pargrid_gridfile::{CartesianProductFile, GridConfig, GridFile, Record};
use pargrid_sim::metrics::evaluate;
use pargrid_sim::workload::QueryWorkload;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A small shared grid file (one point per cell of a 16x16 lattice) so the
/// oracle proptests do not rebuild datasets per case.
fn lattice_file() -> &'static (GridFile, DeclusterInput) {
    static FILE: OnceLock<(GridFile, DeclusterInput)> = OnceLock::new();
    FILE.get_or_init(|| {
        let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 16.0, 16.0), 1);
        let gf = GridFile::bulk_load(
            cfg,
            (0..256u64)
                .map(|i| Record::new(i, Point::new2((i % 16) as f64 + 0.5, (i / 16) as f64 + 0.5))),
        );
        let input = DeclusterInput::from_grid_file(&gf);
        (gf, input)
    })
}

proptest! {
    #[test]
    fn onion_roundtrip_in_all_dims((dim, bits) in (2usize..=6, 1u32..=8), seed in any::<u64>()) {
        // bits*dim stays within u128 for every pair in these ranges.
        let curve = OnionCurve::new(dim, bits);
        let mask = (1u64 << bits) - 1;
        let coords: Vec<u32> =
            (0..dim).map(|i| ((seed >> (i * 9)) & mask) as u32).collect();
        let idx = curve.index_of(&coords);
        prop_assert!(idx < curve.len());
        let mut back = vec![0u32; dim];
        curve.coords_of(idx, &mut back);
        prop_assert_eq!(back, coords);
    }

    #[test]
    fn onion_index_side_roundtrip((dim, bits) in (2usize..=6, 1u32..=4), seed in any::<u64>()) {
        let curve = OnionCurve::new(dim, bits);
        let idx = seed as u128 % curve.len();
        let mut coords = vec![0u32; dim];
        curve.coords_of(idx, &mut coords);
        prop_assert_eq!(curve.index_of(&coords), idx);
    }

    #[test]
    fn onion_two_dim_adjacent_indices_are_adjacent_cells(start in 0u64..4094) {
        // The 2-D onion walk is fully continuous: consecutive indices are
        // Chebyshev-adjacent everywhere, shell transitions included.
        let curve = OnionCurve::new(2, 6);
        let mut a = [0u32; 2];
        let mut b = [0u32; 2];
        curve.coords_of(start as u128, &mut a);
        curve.coords_of(start as u128 + 1, &mut b);
        let cheb = a[0].abs_diff(b[0]).max(a[1].abs_diff(b[1]));
        prop_assert_eq!(cheb, 1);
    }

    #[test]
    fn latin_square_structure_holds_for_every_disk_count(m in 2u32..=48) {
        let sq = latin::latin_square(m);
        let want: Vec<u32> = (0..m).collect();
        for (i, sq_row) in sq.iter().enumerate() {
            let mut row = sq_row.clone();
            let mut col: Vec<u32> = (0..m as usize).map(|j| sq[j][i]).collect();
            row.sort_unstable();
            col.sort_unstable();
            prop_assert_eq!(&row, &want);
            prop_assert_eq!(&col, &want);
        }
    }

    #[test]
    fn latin_assignment_keeps_ceil_balance(m in 2usize..=12, reps in 1usize..=3) {
        // On a Cartesian grid whose sides are multiples of m, the Korobov
        // mapping deals disks perfectly: every disk gets exactly N/M
        // buckets, which is ceil(N/M).
        let file = CartesianProductFile::new(&[(m * reps) as u32, m as u32]);
        let input = DeclusterInput::from_cartesian(&file);
        let n = input.n_buckets();
        let a = DeclusterMethod::parse("latin").unwrap().assign(&input, m, 5);
        let counts = a.bucket_counts();
        prop_assert_eq!(counts.len(), m);
        for &c in &counts {
            prop_assert_eq!(c, n / m);
        }
        prop_assert!(a.is_perfectly_balanced());
    }

    #[test]
    fn oracle_gap_is_nonnegative_for_any_scheme_and_farm(
        scheme_idx in 0usize..5,
        m in 2usize..=8,
        wl_seed in any::<u64>(),
    ) {
        let (gf, input) = lattice_file();
        let name = ["dm", "fx", "hcam", "onion", "latin"][scheme_idx];
        let assign = DeclusterMethod::parse(name).unwrap().assign(input, m, 3);
        let w = QueryWorkload::square(&gf.config().domain, 0.05, 10, wl_seed);
        // LowerBound::profile hard-asserts response >= bound per query.
        let profile = LowerBound::new(m, 2).profile(gf, &assign, &w);
        prop_assert!(profile.mean_gap() >= 0.0);
        prop_assert!(profile.p95_gap() <= profile.max_gap());
        // And the sim-side metric agrees.
        let stats = evaluate(gf, &assign, &w);
        prop_assert!(stats.mean_gap >= 0.0);
        prop_assert!((stats.mean_gap - profile.mean_gap()).abs() < 1e-9);
    }
}

#[test]
fn gap_reaches_zero_on_a_known_optimal_case() {
    // One record per cell of an 8x8 grid; DM answers every aligned row
    // query with all 4 disks equally busy: response == bound, gap == 0.
    let cfg = GridConfig::with_capacity(Rect::new2(0.0, 0.0, 8.0, 8.0), 1);
    let gf = GridFile::bulk_load(
        cfg,
        (0..64u64).map(|i| Record::new(i, Point::new2((i % 8) as f64 + 0.5, (i / 8) as f64 + 0.5))),
    );
    let input = DeclusterInput::from_grid_file(&gf);
    let assign = DeclusterMethod::parse("dm").unwrap().assign(&input, 4, 1);
    let queries: Vec<Rect> = (0..8)
        .map(|row| Rect::new2(0.1, row as f64 + 0.1, 7.9, row as f64 + 0.9))
        .collect();
    let w = QueryWorkload { queries };
    let profile = LowerBound::new(4, 2).profile(&gf, &assign, &w);
    assert_eq!(profile.mean_gap(), 0.0);
    assert_eq!(profile.max_gap(), 0);
    assert_eq!(profile.optimal_fraction(), 1.0);
}

#[test]
fn every_frontier_scheme_survives_every_adversary() {
    // End-to-end smoke over the full scheme x scenario matrix at tiny
    // scale: the oracle's internal soundness assert is the real check.
    for adv in Adversary::ALL {
        let s = adv.scenario(8, 11);
        for method in DeclusterMethod::frontier_set() {
            let assign = method.assign(&s.input, 8, 2);
            let profile = s.oracle(8).profile(&s.gf, &assign, &s.workload);
            assert_eq!(profile.len(), 8, "{} x {}", method.label(), adv.label());
        }
    }
}
