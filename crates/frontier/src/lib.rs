//! The scheme frontier: how far is a declustering from *provably* optimal?
//!
//! The paper ranks schemes by raw response time; this crate sharpens the
//! yardstick to the **additive gap** from a lower-bound oracle and supplies
//! the hostile workloads that make the gap visible:
//!
//! * [`oracle`] — the [`oracle::LowerBound`] for a disk farm: the per-query
//!   bound `ceil(|Q| / M)` (no scheme can answer a query touching `|Q|`
//!   buckets faster on `M` disks), the Doerr–Hebbinghaus–Werth existential
//!   discrepancy floor, and [`oracle::GapProfile`] aggregating per-query
//!   gaps over a workload.
//! * [`discrepancy`] — an exhaustive small-grid verifier that measures a
//!   scheme's worst additive deviation over *all* axis-aligned ranges,
//!   the quantity the declustering lower-bound literature bounds.
//! * [`adversarial`] — self-contained scenarios (dataset + grid file +
//!   query stream) for the five frontier workloads: uniform, Zipfian
//!   hot-key, drifting hotspot, diagonal thin slabs, and 5-dimensional
//!   data.
//!
//! The `repro frontier` experiment in `pargrid-bench` drives all scenarios
//! against every scheme in `pargrid_core::SCHEME_REGISTRY`'s frontier set
//! and ranks them by mean and p95 gap.

#![warn(missing_docs)]

pub mod adversarial;
pub mod discrepancy;
pub mod oracle;

pub use adversarial::{Adversary, Scenario};
pub use discrepancy::worst_additive_gap;
pub use oracle::{GapProfile, LowerBound};
