//! Adversarial workload scenarios for the frontier comparison.
//!
//! Each scenario bundles a dataset, its loaded grid file, the declustering
//! input, and a query stream — everything a harness needs to score one
//! (scheme, workload) cell. The five scenarios target distinct failure
//! modes the paper's uniform-square methodology never probes:
//!
//! * **Uniform** — the paper's baseline, for context.
//! * **Zipfian hot keys** — a handful of keys absorb most queries; a
//!   scheme that happens to co-locate a hot neighborhood pays for it on
//!   every repeat.
//! * **Drifting hotspot** — the load marches across the domain, so a
//!   layout balanced in aggregate can still serve every instant poorly.
//! * **Diagonal thin slabs** — long thin ranges riding the main diagonal:
//!   the discrepancy adversary, lethal to curve fragmentations and to
//!   coordinate-sum symmetry alike.
//! * **Five-dimensional** — square ranges on 5-d data, where the
//!   `(log M)^((d-1)/2)` lower-bound floor grows and curve quality
//!   degrades.

use crate::oracle::LowerBound;
use pargrid_core::DeclusterInput;
use pargrid_datagen::{uniform2d, uniform5d};
use pargrid_gridfile::GridFile;
use pargrid_sim::workload::QueryWorkload;

/// One of the frontier workload families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adversary {
    /// The paper's uniform square queries on uniform 2-D data.
    Uniform,
    /// Zipf(1.1)-popular hot keys drawn from the data points.
    ZipfHotKey,
    /// A hotspot drifting along the main diagonal over the run.
    DriftingHotspot,
    /// Thin slabs centered on the main diagonal, alternating thin axis.
    DiagonalSlabs,
    /// Uniform square queries on 5-dimensional data.
    FiveDim,
}

impl Adversary {
    /// All five scenarios, in reporting order.
    pub const ALL: [Adversary; 5] = [
        Adversary::Uniform,
        Adversary::ZipfHotKey,
        Adversary::DriftingHotspot,
        Adversary::DiagonalSlabs,
        Adversary::FiveDim,
    ];

    /// The CSV / chart label.
    pub fn label(&self) -> &'static str {
        match self {
            Adversary::Uniform => "uniform",
            Adversary::ZipfHotKey => "zipf-hot",
            Adversary::DriftingHotspot => "drift-hotspot",
            Adversary::DiagonalSlabs => "diag-slabs",
            Adversary::FiveDim => "uniform-5d",
        }
    }

    /// Whether this scenario is one of the hostile ones (everything but
    /// the uniform baseline).
    pub fn is_adversarial(&self) -> bool {
        !matches!(self, Adversary::Uniform)
    }

    /// Builds the scenario: dataset, grid file, declustering input and
    /// `n_queries` queries, all deterministic in `seed`.
    pub fn scenario(&self, n_queries: usize, seed: u64) -> Scenario {
        let qseed = seed ^ 0x9e37_79b9_7f4a_7c15;
        let dataset = match self {
            Adversary::FiveDim => uniform5d(seed),
            _ => uniform2d(seed),
        };
        let gf = dataset.build_grid_file();
        let domain = gf.config().domain;
        let workload = match self {
            Adversary::Uniform => QueryWorkload::square(&domain, 0.02, n_queries, qseed),
            Adversary::ZipfHotKey => {
                // Every 16th data point is a nameable key; Zipf decides
                // which of the ~625 are hot.
                let centers: Vec<_> = dataset.points.iter().step_by(16).copied().collect();
                QueryWorkload::zipfian_hot_key(&domain, &centers, 0.01, n_queries, 1.1, qseed)
            }
            Adversary::DriftingHotspot => {
                QueryWorkload::drifting_hotspot(&domain, 0.01, n_queries, 0.03, qseed)
            }
            Adversary::DiagonalSlabs => {
                QueryWorkload::diagonal_slabs(&domain, 0.04, 0.7, n_queries, qseed)
            }
            Adversary::FiveDim => QueryWorkload::square(&domain, 0.02, n_queries, qseed),
        };
        let input = DeclusterInput::from_grid_file(&gf);
        Scenario {
            adversary: *self,
            gf,
            input,
            workload,
        }
    }
}

/// A fully built (dataset, grid file, queries) scenario, reusable across
/// schemes and disk counts.
pub struct Scenario {
    /// Which family this is.
    pub adversary: Adversary,
    /// The loaded grid file.
    pub gf: GridFile,
    /// The declustering input derived from it.
    pub input: DeclusterInput,
    /// The query stream.
    pub workload: QueryWorkload,
}

impl Scenario {
    /// Data dimensionality.
    pub fn dim(&self) -> usize {
        self.gf.config().domain.dim()
    }

    /// The oracle matching this scenario on an `m`-disk farm.
    pub fn oracle(&self, m: usize) -> LowerBound {
        LowerBound::new(m, self.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_and_are_deterministic() {
        for adv in Adversary::ALL {
            let s = adv.scenario(20, 7);
            assert_eq!(s.workload.len(), 20, "{}", adv.label());
            assert!(s.input.n_buckets() > 50, "{}", adv.label());
            assert_eq!(s.dim(), if adv == Adversary::FiveDim { 5 } else { 2 });
            let again = adv.scenario(20, 7);
            assert_eq!(s.workload.queries, again.workload.queries);
            for q in &s.workload.queries {
                assert!(s.gf.config().domain.contains_rect(q), "{}", adv.label());
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = Adversary::ALL.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Adversary::ALL.len());
    }

    #[test]
    fn only_uniform_is_benign() {
        assert!(!Adversary::Uniform.is_adversarial());
        assert!(Adversary::DiagonalSlabs.is_adversarial());
        assert!(Adversary::FiveDim.is_adversarial());
    }

    #[test]
    fn oracle_profile_runs_end_to_end_on_a_scenario() {
        let s = Adversary::DiagonalSlabs.scenario(15, 3);
        let method = pargrid_core::DeclusterMethod::parse("latin").unwrap();
        let assign = method.assign(&s.input, 8, 1);
        let profile = s.oracle(8).profile(&s.gf, &assign, &s.workload);
        assert_eq!(profile.len(), 15);
        assert!(profile.mean_response() >= profile.mean_bound());
    }
}
