//! The per-query optimality oracle.
//!
//! For a query that touches `|Q|` buckets on an `M`-disk farm, the busiest
//! disk must fetch at least `ceil(|Q| / M)` buckets — the integral
//! pigeonhole bound, achievable query-by-query by a round-robin deal of
//! exactly that query's buckets. It is therefore a *universally valid*
//! per-query lower bound, and `response - bound` is a sound additive gap:
//! zero means provably optimal parallelism for that query.
//!
//! Doerr, Hebbinghaus & Werth prove a complementary *existential* bound:
//! for every declustering of the `d`-dimensional grid over `M` disks,
//! **some** range query has gap `Omega((log M)^((d-1)/2))`. Because it
//! quantifies over queries it cannot be asserted against any single
//! measured response; [`LowerBound::discrepancy_floor`] reports it as the
//! workload-level reference magnitude a scheme's *worst* gap must
//! eventually meet.

use pargrid_core::Assignment;
use pargrid_gridfile::GridFile;
use pargrid_sim::metrics::query_response;
use pargrid_sim::workload::QueryWorkload;

/// The lower-bound oracle for an `M`-disk farm over `dim`-dimensional data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LowerBound {
    /// Number of disks.
    pub m: usize,
    /// Data dimensionality (drives the discrepancy floor).
    pub dim: usize,
}

impl LowerBound {
    /// Creates an oracle for `m` disks and `dim` dimensions.
    ///
    /// # Panics
    /// Panics if `m == 0` or `dim == 0`.
    pub fn new(m: usize, dim: usize) -> Self {
        assert!(m >= 1, "need at least one disk");
        assert!(dim >= 1, "need at least one dimension");
        LowerBound { m, dim }
    }

    /// The per-query bound: `max(ceil(n_buckets / M), [n_buckets > 0])`.
    /// The discrepancy term is existential over queries (see the module
    /// docs), so the ceiling is the only term that may soundly join this
    /// per-query `max`.
    pub fn per_query(&self, n_buckets: u64) -> u64 {
        n_buckets.div_ceil(self.m as u64)
    }

    /// The Doerr–Hebbinghaus–Werth existential floor
    /// `(log2 M)^((d-1)/2)`, up to the unspecified constant of their
    /// `Omega(.)`: every declustering of `d`-dimensional data over `M`
    /// disks has *some* range query whose additive gap reaches this
    /// magnitude. Workload-level reference, not a per-query bound.
    pub fn discrepancy_floor(&self) -> f64 {
        if self.m < 2 {
            return 0.0;
        }
        (self.m as f64).log2().powf((self.dim as f64 - 1.0) / 2.0)
    }

    /// Runs a workload and collects the per-query responses, bounds and
    /// gaps.
    ///
    /// # Panics
    /// Panics if the assignment's disk count differs from the oracle's or
    /// the workload is empty, and (the soundness guarantee) if any measured
    /// response falls below its bound — impossible for real executions.
    pub fn profile(
        &self,
        gf: &GridFile,
        assign: &Assignment,
        workload: &QueryWorkload,
    ) -> GapProfile {
        assert_eq!(assign.n_disks(), self.m, "oracle/assignment disk mismatch");
        assert!(!workload.is_empty(), "empty workload");
        let mut responses = Vec::with_capacity(workload.len());
        let mut bounds = Vec::with_capacity(workload.len());
        for q in &workload.queries {
            let (resp, n) = query_response(gf, assign, q);
            let bound = self.per_query(n);
            assert!(
                resp >= bound,
                "measured response {resp} below the oracle bound {bound} — \
                 the pigeonhole argument is violated, something is broken"
            );
            responses.push(resp);
            bounds.push(bound);
        }
        GapProfile { responses, bounds }
    }
}

/// Per-query responses and oracle bounds for one (scheme, workload) pair.
#[derive(Clone, Debug, Default)]
pub struct GapProfile {
    /// Measured per-query response times (buckets on the busiest disk).
    pub responses: Vec<u64>,
    /// Per-query oracle bounds, same order.
    pub bounds: Vec<u64>,
}

impl GapProfile {
    /// Per-query additive gaps (`response - bound`, always `>= 0`).
    pub fn gaps(&self) -> Vec<u64> {
        self.responses
            .iter()
            .zip(&self.bounds)
            .map(|(&r, &b)| r - b)
            .collect()
    }

    /// Number of queries profiled.
    pub fn len(&self) -> usize {
        self.responses.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.responses.is_empty()
    }

    /// Mean additive gap.
    pub fn mean_gap(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.gaps().iter().sum::<u64>() as f64 / self.len() as f64
    }

    /// 95th-percentile additive gap (nearest rank).
    pub fn p95_gap(&self) -> u64 {
        self.percentile_gap(0.95)
    }

    /// Worst additive gap.
    pub fn max_gap(&self) -> u64 {
        self.gaps().into_iter().max().unwrap_or(0)
    }

    /// Mean measured response.
    pub fn mean_response(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.responses.iter().sum::<u64>() as f64 / self.len() as f64
    }

    /// Mean oracle bound — what an always-optimal scheme would score.
    pub fn mean_bound(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.bounds.iter().sum::<u64>() as f64 / self.len() as f64
    }

    /// Fraction of queries answered exactly at the bound.
    pub fn optimal_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let hits = self
            .responses
            .iter()
            .zip(&self.bounds)
            .filter(|&(&r, &b)| r == b)
            .count();
        hits as f64 / self.len() as f64
    }

    /// Nearest-rank percentile of the gap distribution.
    pub fn percentile_gap(&self, p: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let mut gaps = self.gaps();
        gaps.sort_unstable();
        let rank = ((p * gaps.len() as f64).ceil() as usize).clamp(1, gaps.len());
        gaps[rank - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_query_bound_is_the_integral_pigeonhole() {
        let lb = LowerBound::new(4, 2);
        assert_eq!(lb.per_query(0), 0);
        assert_eq!(lb.per_query(1), 1);
        assert_eq!(lb.per_query(4), 1);
        assert_eq!(lb.per_query(5), 2);
        assert_eq!(lb.per_query(17), 5);
        assert_eq!(LowerBound::new(1, 2).per_query(9), 9);
    }

    #[test]
    fn discrepancy_floor_grows_with_disks_and_dimension() {
        let f = |m, d| LowerBound::new(m, d).discrepancy_floor();
        assert_eq!(f(1, 3), 0.0);
        assert!((f(4, 2) - 2.0f64.sqrt()).abs() < 1e-12); // (log2 4)^(1/2)
        assert!(f(16, 2) > f(4, 2));
        assert!(f(16, 5) > f(16, 2));
        assert_eq!(f(16, 1), 1.0); // exponent 0: constant-gap regime
    }

    #[test]
    fn profile_statistics_are_consistent() {
        let p = GapProfile {
            responses: vec![3, 2, 5, 2],
            bounds: vec![2, 2, 2, 2],
        };
        assert_eq!(p.gaps(), vec![1, 0, 3, 0]);
        assert!((p.mean_gap() - 1.0).abs() < 1e-12);
        assert_eq!(p.max_gap(), 3);
        assert_eq!(p.p95_gap(), 3);
        assert_eq!(p.percentile_gap(0.5), 0);
        assert!((p.optimal_fraction() - 0.5).abs() < 1e-12);
        assert!((p.mean_response() - 3.0).abs() < 1e-12);
        assert!((p.mean_bound() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_all_zeros() {
        let p = GapProfile::default();
        assert!(p.is_empty());
        assert_eq!(p.mean_gap(), 0.0);
        assert_eq!(p.p95_gap(), 0);
        assert_eq!(p.max_gap(), 0);
    }
}
