//! Exhaustive discrepancy verification on small grids.
//!
//! The declustering literature measures a scheme by its worst additive
//! deviation over **all** axis-aligned range queries of the cell grid:
//! `max_Q (max_disk |Q ∩ disk| - ceil(|Q| / M))`. On small grids this can
//! be computed exactly by enumeration, which is how the latin-hypercube
//! construction's low-discrepancy claim — and the known badness of scan
//! allocation — are verified in the test suite without trusting the
//! theory.

use pargrid_core::index_based::IndexScheme;

/// The worst additive gap of `scheme` over every axis-aligned cell range
/// of the `sides` grid on `m` disks, by exhaustive enumeration.
///
/// Intended for small grids: the rectangle count is
/// `prod_k sides_k * (sides_k + 1) / 2`, and each rectangle is scanned
/// cell by cell.
///
/// # Panics
/// Panics if `sides` is empty, any side is zero, or `m == 0`.
pub fn worst_additive_gap(scheme: IndexScheme, sides: &[u32], m: u32) -> u64 {
    assert!(!sides.is_empty(), "need at least one dimension");
    assert!(sides.iter().all(|&s| s > 0), "zero-sized grid dimension");
    assert!(m >= 1, "need at least one disk");
    let d = sides.len();
    let mapper = scheme.cell_mapper(sides);

    // All (lo, hi) half-open ranges per dimension.
    let ranges: Vec<Vec<(u32, u32)>> = sides
        .iter()
        .map(|&s| {
            (0..s)
                .flat_map(|lo| (lo + 1..=s).map(move |hi| (lo, hi)))
                .collect()
        })
        .collect();

    let mut counts = vec![0u64; m as usize];
    let mut worst = 0u64;
    // Odometer over one range choice per dimension.
    let mut pick = vec![0usize; d];
    loop {
        counts.fill(0);
        let mut total = 0u64;
        // Odometer over the cells of the selected rectangle.
        let mut cell: Vec<u32> = (0..d).map(|k| ranges[k][pick[k]].0).collect();
        loop {
            counts[mapper.disk_of_cell(&cell, m) as usize] += 1;
            total += 1;
            let mut k = 0;
            loop {
                cell[k] += 1;
                if cell[k] < ranges[k][pick[k]].1 {
                    break;
                }
                cell[k] = ranges[k][pick[k]].0;
                k += 1;
                if k == d {
                    break;
                }
            }
            if k == d {
                break;
            }
        }
        let gap = counts.iter().max().copied().unwrap_or(0) - total.div_ceil(m as u64);
        worst = worst.max(gap);

        let mut k = 0;
        loop {
            pick[k] += 1;
            if pick[k] < ranges[k].len() {
                break;
            }
            pick[k] = 0;
            k += 1;
            if k == d {
                break;
            }
        }
        if k == d {
            break;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_allocation_has_terrible_column_discrepancy() {
        // Row-major scan maps a full column x = const of an 8x8 grid to the
        // single disk x mod 4: response 8 against a bound of 2.
        let gap = worst_additive_gap(IndexScheme::Scan, &[8, 8], 4);
        assert!(gap >= 6, "scan gap only {gap}");
    }

    #[test]
    fn latin_hypercube_has_low_discrepancy() {
        // The golden-section latin square answers every row and column
        // perfectly and keeps general rectangles within a small constant —
        // the Doerr et al. claim, verified exhaustively.
        for m in [3u32, 4, 5, 8] {
            let gap = worst_additive_gap(IndexScheme::LatinHypercube, &[8, 8], m);
            assert!(gap <= 2, "latin gap {gap} on m={m}");
            let scan = worst_additive_gap(IndexScheme::Scan, &[8, 8], m);
            assert!(
                gap < scan || scan == 0,
                "latin {gap} not better than scan {scan} (m={m})"
            );
        }
    }

    #[test]
    fn disk_modulo_is_near_optimal_on_two_dim_rectangles() {
        // Theorem 1 regime: DM's additive error on 2-D ranges is bounded by
        // a small constant (its weakness is diagonal *bands*, which are not
        // axis-aligned rectangles).
        let gap = worst_additive_gap(IndexScheme::DiskModulo, &[8, 8], 4);
        assert!(gap <= 1, "DM gap {gap}");
    }

    #[test]
    fn one_disk_farms_have_zero_gap_by_definition() {
        for scheme in [
            IndexScheme::DiskModulo,
            IndexScheme::Hilbert,
            IndexScheme::Onion,
        ] {
            assert_eq!(worst_additive_gap(scheme, &[4, 4], 1), 0);
        }
    }

    #[test]
    fn three_dim_enumeration_works() {
        let gap = worst_additive_gap(IndexScheme::LatinHypercube, &[4, 4, 4], 5);
        let scan = worst_additive_gap(IndexScheme::Scan, &[4, 4, 4], 5);
        assert!(gap <= scan, "latin {gap} vs scan {scan}");
    }
}
